//! Cross-crate integration: MANETKit deployments and the monolithic
//! comparators speak the same PacketBB wire format, so they interoperate
//! in one network — the strongest check that the framework composition is
//! functionally equivalent to the monoliths.

use manetkit_repro::manetkit_baseline::{Dymoum, Olsrd, OlsrdConfig};
use manetkit_repro::prelude::*;

#[test]
fn mixed_olsr_network_interoperates() {
    // Alternate MANETKit-OLSR and monolithic olsrd along a 5-node line.
    let mut world = World::builder()
        .topology(Topology::line(5))
        .seed(50)
        .build();
    for i in 0..5 {
        if i % 2 == 0 {
            let (node, _h) = manetkit_repro::manetkit_olsr::node(Default::default());
            world.install_agent(NodeId(i), Box::new(node));
        } else {
            world.install_agent(NodeId(i), Box::new(Olsrd::new(OlsrdConfig::default())));
        }
    }
    world.run_for(SimDuration::from_secs(40));
    // Every pair can route across the mixed network.
    for a in 0..5 {
        for b in 0..5 {
            if a != b {
                let dst = world.addr(NodeId(b));
                assert!(
                    world.os(NodeId(a)).route_table().lookup(dst).is_some(),
                    "mixed network: route {a} -> {b} missing"
                );
            }
        }
    }
    // Data flows end to end through both implementations.
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"mixed".to_vec());
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(world.stats().data_delivered, 1);
}

#[test]
fn mixed_dymo_network_interoperates() {
    let mut world = World::builder()
        .topology(Topology::line(5))
        .seed(51)
        .build();
    for i in 0..5 {
        if i % 2 == 0 {
            let (node, _h) = manetkit_repro::manetkit_dymo::node(Default::default());
            world.install_agent(NodeId(i), Box::new(node));
        } else {
            world.install_agent(NodeId(i), Box::new(Dymoum::new()));
        }
    }
    world.run_for(SimDuration::from_secs(3));
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"mixed".to_vec());
    world.run_for(SimDuration::from_secs(3));
    let s = world.stats();
    assert_eq!(
        s.data_delivered, 1,
        "discovery must traverse both implementations: {s:?}"
    );
}

#[test]
fn baseline_and_framework_wire_formats_agree() {
    // A DYMO RouteElement built by the framework crate parses as the same
    // structure after a wire round trip initiated from raw packetbb types —
    // guarding against silent format drift between the implementations.
    use manetkit_repro::manetkit_dymo::{PathHop, RouteElement};
    use manetkit_repro::packetbb::{Address, Packet};

    let re = RouteElement::rreq(
        PathHop {
            addr: Address::v4([10, 0, 0, 1]),
            seq: 3,
        },
        Address::v4([10, 0, 0, 5]),
        Some(9),
        10,
    );
    let wire = Packet::single(re.to_message()).encode_to_vec();
    let decoded = Packet::decode(&wire).unwrap();
    let msg = &decoded.messages()[0];
    assert_eq!(
        msg.msg_type(),
        manetkit_repro::packetbb::registry::msg_type::RREQ
    );
    let back = RouteElement::from_message(msg).unwrap();
    assert_eq!(back, re);
}
