//! End-to-end health-gated transactional reconfiguration: a fleet-wide
//! OLSR → DYMO switch commits two-phase, runs provisionally while a
//! partition wrecks the delivery ratio, auto-reverts to the checkpointed
//! OLSR compositions, and the fleet's delivery ratio recovers to within
//! 5% of the pre-switch baseline. With the flight recorder on, the full
//! prepare → commit → revert timeline is asserted from the trace JSONL.

use manetkit_repro::manetkit::{
    FleetCoordinator, HealthGate, ReconfigOp, ReconfigRequest, Strategy, TxnOptions, TxnVerdict,
};
use manetkit_repro::netsim::fault::FaultPlan;
use manetkit_repro::prelude::*;

fn secs(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(n)
}

/// The live OLSR → DYMO switch recipe (same composition change as the
/// best-effort switch in `end_to_end.rs`, here as one atomic batch).
fn olsr_to_dymo() -> Vec<ReconfigOp> {
    vec![
        ReconfigOp::RemoveProtocol {
            name: "olsr".into(),
        },
        ReconfigOp::RemoveProtocol { name: "mpr".into() },
        ReconfigOp::MutateSystem {
            op: Box::new(|sys| {
                manetkit_repro::manetkit_dymo::register_messages(sys);
                sys.register_message(manetkit_repro::manetkit::neighbour::hello_registration());
            }),
        },
        ReconfigOp::AddProtocol(manetkit_repro::manetkit::neighbour::neighbour_detection_cf(
            Default::default(),
        )),
        ReconfigOp::AddProtocol(manetkit_repro::manetkit_dymo::dymo_cf(Default::default())),
    ]
}

#[test]
fn health_gated_switch_auto_reverts_and_recovers() {
    // 5-node line; a partition cuts {0,1,2} | {3,4} over the provisional
    // window (virtual 51 s → 100 s), so the freshly committed DYMO
    // composition cannot deliver the 0 → 4 flow and the gate must trip.
    let plan = FaultPlan::builder(0)
        .partition(
            secs(51),
            secs(100),
            "cut",
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4)],
            ],
        )
        .build();
    let builder = World::builder()
        .topology(Topology::line(5))
        .seed(77)
        .fault_plan(plan);
    #[cfg(feature = "trace")]
    let builder = builder.trace(1 << 16);
    let mut world = builder.build();
    let mut fleet = FleetCoordinator::default();
    for i in 0..5 {
        let (node, handle) = manetkit_repro::manetkit_olsr::node(Default::default());
        fleet.add(handle);
        world.install_agent(NodeId(i), Box::new(node));
    }
    // Let OLSR converge end to end before traffic starts.
    world.run_until(secs(40));
    let stacks_before = fleet.stacks();

    // CBR 0 → 4 at 4 packets/s for the whole experiment.
    let far = world.addr(NodeId(4));
    let mut t = secs(40);
    while t < secs(150) {
        world.send_datagram_at(t, NodeId(0), far, vec![0u8; 64]);
        t += SimDuration::from_millis(250);
    }

    // Health-gated 2PC: 10 s measured baseline, 10 s provisional window,
    // revert on a delivery-ratio drop of more than 0.25.
    let report = fleet.execute(
        &mut world,
        ReconfigRequest::new()
            .recipe(olsr_to_dymo)
            .strategy(Strategy::TwoPhase(TxnOptions::default()))
            .health_gate(HealthGate::over_window(SimDuration::from_secs(10)).max_drop(0.25)),
    );
    assert_eq!(report.verdict, TxnVerdict::Reverted, "{report}");
    assert!(report.unresolved.is_empty(), "{report}");
    let pre = report.pre_ratio.expect("gate measured a baseline");
    let window = report.window_ratio.expect("gate measured the window");
    assert!(pre >= 0.8, "healthy OLSR baseline, got {pre:.3}");
    assert!(
        pre - window > 0.25,
        "partition wrecked the provisional window: pre {pre:.3} window {window:.3}"
    );

    // Every node is back on its checkpointed OLSR composition.
    assert_eq!(fleet.stacks(), stacks_before, "revert restored the stacks");
    let stats = world.stats();
    assert_eq!(stats.agent_counter("txn.prepared"), 5);
    assert_eq!(stats.agent_counter("txn.committed"), 5);
    assert_eq!(stats.agent_counter("txn.reverted"), 5);
    assert_eq!(stats.agent_counter("txn.aborted"), 0);
    // The same conservation law `mcheck` audits at every explored state:
    // everything prepared was accounted for, nothing is still open.
    manetkit_repro::manetkit::assert_fleet_conservation(&stats, 0);

    // The partition heals at 100 s; give the restored OLSR fleet time to
    // re-converge, then demand the delivery ratio recover to within 5% of
    // the pre-switch baseline.
    world.run_until(secs(135));
    let mut post_window = world.stats_window();
    post_window.skip(&world);
    world.run_until(secs(150));
    let post = post_window.advance(&world).delivery_ratio();
    assert!(
        pre - post <= 0.05,
        "delivery ratio recovered after revert: pre {pre:.3} post {post:.3}"
    );

    // Flight-recorder timeline: every node logged prepare → commit →
    // revert for this transaction, in that order.
    #[cfg(feature = "trace")]
    {
        let jsonl = world.trace_jsonl();
        let id = format!("\"a\":{}", report.txn);
        let phase_lines = |kind: &str| -> Vec<usize> {
            let key = format!("\"kind\":\"{kind}\"");
            jsonl
                .lines()
                .enumerate()
                .filter(|(_, l)| l.contains(&key) && l.contains(&id))
                .map(|(i, _)| i)
                .collect()
        };
        let prepares = phase_lines("txn_prepare");
        let commits = phase_lines("txn_commit");
        let reverts = phase_lines("txn_revert");
        assert_eq!(prepares.len(), 5, "one prepare record per node");
        assert_eq!(commits.len(), 5, "one commit record per node");
        assert_eq!(reverts.len(), 5, "one revert record per node");
        // The merged trace is time-ordered, so phase boundaries must nest:
        // all prepares before all commits before all reverts.
        assert!(prepares.iter().max() < commits.iter().min());
        assert!(commits.iter().max() < reverts.iter().min());
        assert!(
            jsonl.lines().any(|l| l.contains("\"kind\":\"fault\"")),
            "the partition fault is on the same timeline"
        );
    }
}
