//! Mobility (random-waypoint churn, the MobiEmu analogue) under live
//! protocols, and the ZRP-style hybrid composition.

use manetkit_repro::manetkit::prelude::*;
use manetkit_repro::manetkit_olsr::{OlsrConfig, OlsrDeployment};
use manetkit_repro::netsim::mobility::{random_waypoint, RandomWaypoint};
use manetkit_repro::prelude::*;

#[test]
fn dymo_survives_random_waypoint_mobility() {
    let trace = random_waypoint(RandomWaypoint {
        nodes: 12,
        radius: 0.45,
        speed: 0.01,
        step: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(90),
        pause: SimDuration::ZERO,
        seed: 33,
    });
    assert!(trace.initial.is_connected(), "pick a connected start");
    let mut world = World::builder()
        .topology(trace.initial.clone())
        .seed(33)
        .build();
    trace.schedule_into(&mut world);
    for i in 0..12 {
        let (node, _h) = manetkit_repro::manetkit_dymo::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
    }
    world.run_for(SimDuration::from_secs(3));
    // Steady cross-network traffic while nodes move.
    let dst = world.addr(NodeId(11));
    for k in 0..30u8 {
        world.send_datagram(NodeId(0), dst, vec![k]);
        world.run_for(SimDuration::from_secs(3));
    }
    let s = world.stats();
    assert!(
        s.delivery_ratio() > 0.5,
        "DYMO must keep delivering under slow mobility: {s:?}"
    );
    assert!(
        s.agent_counter("route_discovery") >= 1,
        "churn should force at least one rediscovery"
    );
}

#[test]
fn hybrid_zone_routing_composes_from_existing_components() {
    const NODES: usize = 9;
    let mut world = World::builder()
        .topology(Topology::line(NODES))
        .seed(12)
        .build();
    let mut handles = Vec::new();
    for i in 0..NODES {
        let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
        let dep = node.deployment_mut();
        let olsr = OlsrDeployment {
            olsr: OlsrConfig {
                tc_hop_limit: 2, // the zone radius
                ..OlsrConfig::default()
            },
            ..OlsrDeployment::default()
        };
        manetkit_repro::manetkit_olsr::deploy(dep, olsr).unwrap();
        manetkit_repro::manetkit_dymo::deploy_core(dep, Default::default()).unwrap();
        let handle = node.handle();
        for op in manetkit_repro::manetkit_dymo::variants::flooding::enable_ops(None) {
            handle.apply(op);
        }
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    world.run_for(SimDuration::from_secs(40));

    let in_zone = world.addr(NodeId(2));
    let out_of_zone = world.addr(NodeId(NODES - 1));
    assert!(world.os(NodeId(0)).route_table().lookup(in_zone).is_some());
    assert!(world
        .os(NodeId(0))
        .route_table()
        .lookup(out_of_zone)
        .is_none());

    world.send_datagram(NodeId(0), in_zone, b"intra".to_vec());
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(world.stats().data_delivered, 1);
    assert_eq!(world.stats().agent_counter("route_discovery"), 0);

    world.send_datagram(NodeId(0), out_of_zone, b"inter".to_vec());
    world.run_for(SimDuration::from_secs(5));
    assert_eq!(world.stats().data_delivered, 2);
    assert_eq!(world.stats().agent_counter("route_discovery"), 1);
}
