//! Coordinated fleet reconfiguration (§7 roadmap) and the gossip flooding
//! variant, exercised end to end.

use manetkit_repro::manetkit::{FleetCoordinator, ReconfigOp, ReconfigRequest};
use manetkit_repro::manetkit_dymo::variants::gossip;
use manetkit_repro::prelude::*;

fn dymo_fleet(topology: Topology, seed: u64) -> (World, FleetCoordinator) {
    let n = topology.len();
    let mut world = World::builder().topology(topology).seed(seed).build();
    let mut coordinator = FleetCoordinator::default();
    for i in 0..n {
        let (node, handle) = manetkit_repro::manetkit_dymo::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
        coordinator.add(handle);
    }
    (world, coordinator)
}

#[test]
fn fleet_coordinator_converges_a_network_wide_change() {
    let (mut world, fleet) = dymo_fleet(Topology::line(5), 70);
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(fleet.len(), 5);
    assert!(fleet.all_run(&["neighbour-detection", "dymo"]));

    // Network-wide: switch everyone to multipath DYMO.
    let _ = fleet.execute(
        &mut world,
        ReconfigRequest::new()
            .recipe(manetkit_repro::manetkit_dymo::variants::multipath::enable_ops),
    );
    let before = fleet.status();
    assert!(before.pending > 0, "ops await quiescent points");
    world.run_for(SimDuration::from_secs(2));
    let after = fleet.status();
    assert!(after.converged(), "{after:?}");

    // And back again, node-by-node recipes (e.g. staged rollout).
    let _ = fleet.execute(
        &mut world,
        ReconfigRequest::new().recipe_per_node(|_i| {
            manetkit_repro::manetkit_dymo::variants::multipath::disable_ops()
        }),
    );
    world.run_for(SimDuration::from_secs(2));
    assert!(fleet.status().converged());

    // Traffic still flows after two fleet-wide swaps.
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"post-fleet".to_vec());
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(world.stats().data_delivered, 1);
}

#[test]
fn fleet_status_reports_failures_per_node() {
    let (mut world, fleet) = dymo_fleet(Topology::line(3), 71);
    world.run_for(SimDuration::from_secs(1));
    // A bad recipe: remove a protocol that does not exist.
    let _ = fleet.execute(
        &mut world,
        ReconfigRequest::new().recipe(|| {
            vec![ReconfigOp::RemoveProtocol {
                name: "ghost".into(),
            }]
        }),
    );
    world.run_for(SimDuration::from_secs(1));
    let status = fleet.status();
    assert!(!status.converged());
    assert_eq!(status.failures.len(), 3, "{status:?}");
    assert!(status.failures[0].1.contains("ghost"));
}

#[test]
fn gossip_flooding_cuts_relays_and_keeps_delivering_in_dense_networks() {
    let topo = Topology::random_geometric(25, 0.5, 23);
    assert!(topo.is_connected());
    let run = |p: Option<f64>| {
        let (mut world, fleet) = dymo_fleet(topo.clone(), 23);
        if let Some(p) = p {
            let _ = fleet.execute(
                &mut world,
                ReconfigRequest::new().recipe(|| gossip::enable_ops(p)),
            );
        }
        world.run_for(SimDuration::from_secs(5));
        assert!(fleet.status().converged(), "{:?}", fleet.status());
        world.reset_stats();
        for (src, dst) in [(0usize, 24usize), (5, 20), (10, 3)] {
            let dst_addr = world.addr(NodeId(dst));
            world.send_datagram(NodeId(src), dst_addr, b"g".to_vec());
            world.run_for(SimDuration::from_secs(5));
        }
        let s = world.stats();
        (s.agent_counter("rreq_relayed"), s.data_delivered)
    };
    let (blind_relays, blind_delivered) = run(None);
    let (gossip_relays, gossip_delivered) = run(Some(0.6));
    assert_eq!(blind_delivered, 3);
    assert_eq!(
        gossip_delivered, 3,
        "gossip at p=0.6 must still deliver in a dense graph"
    );
    assert!(
        gossip_relays < blind_relays,
        "gossip must suppress some relays: {gossip_relays} vs {blind_relays}"
    );
}
