//! Workspace-level end-to-end scenarios: runtime protocol switching under
//! traffic, reconfiguration robustness, and large-network behaviour.

use manetkit_repro::manetkit::ReconfigOp;
use manetkit_repro::prelude::*;

#[test]
fn switch_olsr_to_dymo_under_traffic() {
    let mut world = World::builder()
        .topology(Topology::line(4))
        .seed(60)
        .build();
    let mut handles = Vec::new();
    for i in 0..4 {
        let (node, h) = manetkit_repro::manetkit_olsr::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(h);
    }
    world.run_for(SimDuration::from_secs(30));
    let far = world.addr(NodeId(3));
    world.send_datagram(NodeId(0), far, b"before".to_vec());
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(world.stats().data_delivered, 1);

    // Live switch on every node.
    for h in &handles {
        h.apply(ReconfigOp::RemoveProtocol {
            name: "olsr".into(),
        });
        h.apply(ReconfigOp::RemoveProtocol { name: "mpr".into() });
        h.apply(ReconfigOp::MutateSystem {
            op: Box::new(|sys| {
                manetkit_repro::manetkit_dymo::register_messages(sys);
                sys.register_message(manetkit_repro::manetkit::neighbour::hello_registration());
            }),
        });
        h.apply(ReconfigOp::AddProtocol(
            manetkit_repro::manetkit::neighbour::neighbour_detection_cf(Default::default()),
        ));
        h.apply(ReconfigOp::AddProtocol(
            manetkit_repro::manetkit_dymo::dymo_cf(Default::default()),
        ));
    }
    world.run_for(SimDuration::from_secs(5));
    for h in &handles {
        let st = h.status();
        assert!(st.last_error.is_none(), "{:?}", st.last_error);
        assert_eq!(
            st.protocols,
            vec!["neighbour-detection".to_string(), "dymo".to_string()]
        );
    }
    world.send_datagram(NodeId(0), far, b"after".to_vec());
    world.run_for(SimDuration::from_secs(5));
    let s = world.stats();
    assert_eq!(s.data_delivered, 2, "{s:?}");
    assert!(
        s.agent_counter("route_discovery") >= 1,
        "reactive path used"
    );
}

#[test]
fn twenty_five_node_grid_converges_under_olsr() {
    let mut world = World::builder()
        .topology(Topology::grid(5, 5))
        .seed(61)
        .build();
    for i in 0..25 {
        let (node, _h) = manetkit_repro::manetkit_olsr::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
    }
    world.run_for(SimDuration::from_secs(60));
    // Corner to corner: 8 hops across the grid.
    let far = world.addr(NodeId(24));
    let entry = world
        .os(NodeId(0))
        .route_table()
        .lookup(far)
        .expect("corner-to-corner route");
    assert_eq!(entry.metric, 8);
    world.send_datagram(NodeId(0), far, vec![1; 128]);
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(world.stats().data_delivered, 1);
}

#[test]
fn dymo_scales_to_a_sparse_random_network() {
    let topo = Topology::random_geometric(30, 0.3, 19);
    if !topo.is_connected() {
        // Deterministic for the fixed seed; guard anyway.
        return;
    }
    let n = topo.len();
    let mut world = World::builder().topology(topo).seed(19).build();
    for i in 0..n {
        let (node, _h) = manetkit_repro::manetkit_dymo::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
    }
    world.run_for(SimDuration::from_secs(3));
    let mut delivered_targets = 0;
    for (src, dst) in [(0usize, 29usize), (7, 23), (15, 2)] {
        let dst_addr = world.addr(NodeId(dst));
        world.send_datagram(NodeId(src), dst_addr, b"far".to_vec());
        world.run_for(SimDuration::from_secs(8));
        delivered_targets += 1;
        assert_eq!(
            world.stats().data_delivered,
            delivered_targets,
            "pair {src}->{dst} failed"
        );
    }
}

#[test]
fn concurrency_model_is_selectable_per_deployment() {
    use manetkit_repro::manetkit::prelude::*;
    // Same DYMO scenario under each queue discipline; behaviour identical.
    let run = |model: ConcurrencyModel| {
        let mut world = World::builder()
            .topology(Topology::line(3))
            .seed(62)
            .build();
        for i in 0..3 {
            let mut node = ManetNode::new(model);
            manetkit_repro::manetkit_dymo::deploy(node.deployment_mut(), Default::default())
                .unwrap();
            world.install_agent(NodeId(i), Box::new(node));
        }
        world.run_for(SimDuration::from_secs(2));
        let far = world.addr(NodeId(2));
        world.send_datagram(NodeId(0), far, b"m".to_vec());
        world.run_for(SimDuration::from_secs(3));
        let s = world.stats();
        (s.data_delivered, s.agent_counter("route_discovery"))
    };
    let single = run(ConcurrencyModel::SingleThreaded);
    let per_msg = run(ConcurrencyModel::ThreadPerMessage { pool: 4 });
    let per_proto = run(ConcurrencyModel::ThreadPerProtocol);
    assert_eq!(single, (1, 1));
    assert_eq!(per_msg, single, "models must not change protocol behaviour");
    assert_eq!(
        per_proto, single,
        "models must not change protocol behaviour"
    );
}
