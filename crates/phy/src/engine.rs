//! The shared-rate transmission engine.
//!
//! A [`Phy`] tracks, per node, one in-flight transmission plus a bounded FIFO
//! of waiting frames, and across nodes the set of active transmissions grouped
//! into contention domains. It is a pure state machine over
//! [`SimTime`]/[`SimDuration`]: the caller owns the event loop and feeds
//! `enqueue`/`complete` calls in timestamp order; the engine answers with
//! completion deadlines ([`Enqueue::Started`] + [`Resched`]) for the caller to
//! schedule.
//!
//! Rate allocation is max-min fair via progressive filling: repeatedly find
//! the bottleneck domain (smallest per-transmitter headroom), freeze its
//! transmitters at that share, and continue until every transmission has a
//! rate. A transmission that spans two domains (sender and receiver cell)
//! counts against both, so the invariant *sum of allocated rates within any
//! domain never exceeds the domain capacity* holds at every reallocation
//! point — the airtime-conservation property the proptests pin down.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simkern::{SimDuration, SimTime};

use crate::{Channel, PhyModel};

/// Identifier of an in-flight transmission, unique per [`Phy`] lifetime.
pub type TxId = u64;

/// A deadline (re)issued for an in-flight transmission.
///
/// The caller schedules a completion event at `at` carrying `(tx, seq)`; an
/// event whose `seq` no longer matches the engine's is stale and must be
/// ignored (the rate changed and a newer deadline exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resched {
    /// Transmission the deadline belongs to.
    pub tx: TxId,
    /// Sequence number that must match at completion time.
    pub seq: u64,
    /// When the transmission now finishes.
    pub at: SimTime,
}

/// Outcome of offering a frame to a node's transmitter.
#[derive(Debug)]
pub enum Enqueue<T> {
    /// The transmit queue was full; the frame never reached the air. The
    /// payload is handed back so the caller can account for the drop.
    Dropped(T),
    /// The transmitter was busy; the frame waits in FIFO order.
    Queued {
        /// Queue depth after insertion (frames waiting, in-flight excluded).
        depth: usize,
    },
    /// The transmitter was idle; the frame is on the air. Its completion
    /// deadline is in the accompanying [`Resched`] batch.
    Started(TxId),
}

/// A finished transmission, handed back to the caller for delivery.
#[derive(Debug)]
pub struct Completion<T> {
    /// The transmitting node.
    pub node: usize,
    /// The frame that just left the air.
    pub payload: T,
    /// On-air size in bytes.
    pub wire_bytes: usize,
    /// Time the frame spent waiting in the transmit queue.
    pub queued: SimDuration,
    /// Time the frame spent being serialized on the air.
    pub airtime: SimDuration,
    /// The next queued frame, now on the air (its deadline is in the
    /// accompanying [`Resched`] batch). Inspect it with [`Phy::payload`].
    pub started: Option<TxId>,
}

struct Waiting<T> {
    payload: T,
    wire_bytes: usize,
    domains: (u32, u32),
    enqueued_at: SimTime,
}

struct Active<T> {
    node: usize,
    payload: T,
    wire_bytes: usize,
    domains: (u32, u32),
    enqueued_at: SimTime,
    started_at: SimTime,
    updated_at: SimTime,
    remaining_bits: f64,
    rate_bps: f64,
    seq: u64,
    deadline: SimTime,
}

/// Deterministic shared-rate transmission engine. See the crate docs.
pub struct Phy<T> {
    shared: bool,
    capacity_bps: f64,
    queue_cap: usize,
    queues: Vec<VecDeque<Waiting<T>>>,
    head: Vec<Option<TxId>>,
    active: BTreeMap<TxId, Active<T>>,
    next_tx: TxId,
}

impl<T> Phy<T> {
    /// Builds an engine for `model`, or `None` for [`PhyModel::Ideal`].
    #[must_use]
    pub fn new(model: &PhyModel, nodes: usize) -> Option<Self> {
        match model {
            PhyModel::Ideal => None,
            PhyModel::ConstantBandwidth(c) => Some(Self::with_channel(false, *c, nodes)),
            PhyModel::SharedAirtime(c) => Some(Self::with_channel(true, *c, nodes)),
        }
    }

    fn with_channel(shared: bool, channel: Channel, nodes: usize) -> Self {
        Phy {
            shared,
            capacity_bps: (channel.bits_per_sec.max(1)) as f64,
            queue_cap: channel.queue_frames,
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            head: vec![None; nodes],
            active: BTreeMap::new(),
            next_tx: 0,
        }
    }

    fn ensure_node(&mut self, node: usize) {
        if node >= self.queues.len() {
            self.queues.resize_with(node + 1, VecDeque::new);
            self.head.resize(node + 1, None);
        }
    }

    /// Channel capacity in bits per second.
    #[must_use]
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Frames waiting in `node`'s transmit queue (in-flight excluded).
    #[must_use]
    pub fn queue_depth(&self, node: usize) -> usize {
        self.queues.get(node).map_or(0, VecDeque::len)
    }

    /// Number of transmissions currently on the air.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The payload of an in-flight transmission, if it is still active.
    #[must_use]
    pub fn payload(&self, tx: TxId) -> Option<&T> {
        self.active.get(&tx).map(|a| &a.payload)
    }

    /// Per-domain sums of currently allocated rates, ascending by domain id.
    ///
    /// Exposed for the airtime-conservation property tests: for every domain
    /// the sum must never exceed [`Phy::capacity_bps`].
    #[must_use]
    pub fn domain_allocations(&self) -> Vec<(u32, f64)> {
        let mut sums: BTreeMap<u32, f64> = BTreeMap::new();
        for a in self.active.values() {
            for d in domain_list(a.domains) {
                *sums.entry(d).or_insert(0.0) += a.rate_bps;
            }
        }
        sums.into_iter().collect()
    }

    /// Offers a frame to `node`'s transmitter at time `now`.
    ///
    /// `domains` are the contention cells the transmission occupies (sender
    /// and receiver neighbourhood; pass the same value twice for broadcasts
    /// or single-domain channels). Returns the enqueue outcome plus any
    /// deadlines that moved because rates were reallocated.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        node: usize,
        domains: (u32, u32),
        wire_bytes: usize,
        payload: T,
    ) -> (Enqueue<T>, Vec<Resched>) {
        self.ensure_node(node);
        if self.head[node].is_some() {
            if self.queues[node].len() >= self.queue_cap {
                return (Enqueue::Dropped(payload), Vec::new());
            }
            self.queues[node].push_back(Waiting {
                payload,
                wire_bytes,
                domains,
                enqueued_at: now,
            });
            return (
                Enqueue::Queued {
                    depth: self.queues[node].len(),
                },
                Vec::new(),
            );
        }
        self.settle(now);
        let tx = self.start(now, node, domains, wire_bytes, payload, now);
        let rescheds = self.reallocate(now);
        (Enqueue::Started(tx), rescheds)
    }

    /// Handles a completion event for `(tx, seq)` at time `now`.
    ///
    /// Returns `None` when the event is stale (the deadline moved after it
    /// was scheduled, or the transmission was flushed by a crash).
    pub fn complete(
        &mut self,
        now: SimTime,
        tx: TxId,
        seq: u64,
    ) -> Option<(Completion<T>, Vec<Resched>)> {
        match self.active.get(&tx) {
            Some(a) if a.seq == seq => {}
            _ => return None,
        }
        self.settle(now);
        let done = self.active.remove(&tx).expect("checked above");
        self.head[done.node] = None;
        let started = self.queues[done.node].pop_front().map(|w| {
            self.start(
                now,
                done.node,
                w.domains,
                w.wire_bytes,
                w.payload,
                w.enqueued_at,
            )
        });
        let rescheds = self.reallocate(now);
        Some((
            Completion {
                node: done.node,
                payload: done.payload,
                wire_bytes: done.wire_bytes,
                queued: done.started_at.since(done.enqueued_at),
                airtime: now.since(done.started_at),
                started,
            },
            rescheds,
        ))
    }

    /// Drops everything a crashed node had queued or on the air.
    ///
    /// Returns the waiting payloads, the aborted in-flight payload (if any),
    /// and deadlines that moved because the abort freed airtime.
    pub fn flush_node(&mut self, now: SimTime, node: usize) -> (Vec<T>, Option<T>, Vec<Resched>) {
        self.ensure_node(node);
        let waiting: Vec<T> = self.queues[node].drain(..).map(|w| w.payload).collect();
        let aborted = match self.head[node].take() {
            Some(tx) => {
                self.settle(now);
                self.active.remove(&tx).map(|a| a.payload)
            }
            None => None,
        };
        let rescheds = if aborted.is_some() {
            self.reallocate(now)
        } else {
            Vec::new()
        };
        (waiting, aborted, rescheds)
    }

    fn start(
        &mut self,
        now: SimTime,
        node: usize,
        domains: (u32, u32),
        wire_bytes: usize,
        payload: T,
        enqueued_at: SimTime,
    ) -> TxId {
        let tx = self.next_tx;
        self.next_tx += 1;
        self.head[node] = Some(tx);
        self.active.insert(
            tx,
            Active {
                node,
                payload,
                wire_bytes,
                domains,
                enqueued_at,
                started_at: now,
                updated_at: now,
                remaining_bits: (wire_bytes.max(1) * 8) as f64,
                rate_bps: 0.0,
                seq: 0,
                // reallocate() issues the real deadline.
                deadline: SimTime::MAX,
            },
        );
        tx
    }

    /// Advances every in-flight transmission's residual work to `now`.
    fn settle(&mut self, now: SimTime) {
        for a in self.active.values_mut() {
            let dt = now.since(a.updated_at).as_secs_f64();
            if dt > 0.0 {
                a.remaining_bits = (a.remaining_bits - a.rate_bps * dt).max(0.0);
            }
            a.updated_at = now;
        }
    }

    /// Recomputes fair-share rates and reissues moved deadlines.
    fn reallocate(&mut self, now: SimTime) -> Vec<Resched> {
        let rates = if self.shared {
            self.maxmin_rates()
        } else {
            self.active
                .keys()
                .map(|&tx| (tx, self.capacity_bps))
                .collect()
        };
        let mut out = Vec::new();
        for (tx, a) in &mut self.active {
            let rate = rates.get(tx).copied().unwrap_or(self.capacity_bps).max(1.0);
            a.rate_bps = rate;
            let finish_us = (a.remaining_bits / rate * 1e6).ceil() as u64;
            let at = now + SimDuration::from_micros(finish_us);
            if at != a.deadline {
                a.seq += 1;
                a.deadline = at;
                out.push(Resched {
                    tx: *tx,
                    seq: a.seq,
                    at,
                });
            }
        }
        out
    }

    /// Max-min fair shares by progressive filling over contention domains.
    fn maxmin_rates(&self) -> BTreeMap<TxId, f64> {
        let mut members: BTreeMap<u32, Vec<TxId>> = BTreeMap::new();
        for (&tx, a) in &self.active {
            for d in domain_list(a.domains) {
                members.entry(d).or_default().push(tx);
            }
        }
        let mut rates: BTreeMap<TxId, f64> = BTreeMap::new();
        let mut frozen_sum: BTreeMap<u32, f64> = members.keys().map(|&d| (d, 0.0)).collect();
        let mut unfrozen: BTreeSet<TxId> = self.active.keys().copied().collect();
        while !unfrozen.is_empty() {
            // Bottleneck domain: smallest headroom per unfrozen transmitter,
            // ties broken towards the lowest domain id (ascending iteration).
            let mut best: Option<(f64, u32)> = None;
            for (&d, m) in &members {
                let k = m.iter().filter(|t| unfrozen.contains(t)).count();
                if k == 0 {
                    continue;
                }
                let head = (self.capacity_bps - frozen_sum[&d]).max(0.0) / k as f64;
                if best.is_none_or(|(h, _)| head < h) {
                    best = Some((head, d));
                }
            }
            let Some((share, d)) = best else { break };
            let frozen: Vec<TxId> = members[&d]
                .iter()
                .copied()
                .filter(|t| unfrozen.remove(t))
                .collect();
            for tx in frozen {
                rates.insert(tx, share);
                for dom in domain_list(self.active[&tx].domains) {
                    *frozen_sum.get_mut(&dom).expect("domain registered") += share;
                }
            }
        }
        rates
    }
}

/// The distinct domains of a transmission (one or two).
fn domain_list(domains: (u32, u32)) -> impl Iterator<Item = u32> {
    let (a, b) = domains;
    std::iter::once(a).chain((b != a).then_some(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phy(shared: bool, bps: u64, queue: usize) -> Phy<u32> {
        let channel = Channel {
            bits_per_sec: bps,
            queue_frames: queue,
        };
        let model = if shared {
            PhyModel::SharedAirtime(channel)
        } else {
            PhyModel::ConstantBandwidth(channel)
        };
        Phy::new(&model, 4).expect("non-ideal")
    }

    fn started(e: &Enqueue<u32>) -> TxId {
        match e {
            Enqueue::Started(tx) => *tx,
            other => panic!("expected Started, got {other:?}"),
        }
    }

    #[test]
    fn ideal_has_no_engine() {
        assert!(Phy::<u32>::new(&PhyModel::Ideal, 4).is_none());
    }

    #[test]
    fn serialization_delay_is_size_proportional() {
        // 1 Mb/s: a 125-byte frame (1000 bits) takes exactly 1 ms.
        let mut p = phy(false, 1_000_000, 8);
        let t0 = SimTime::ZERO;
        let (e, r) = p.enqueue(t0, 0, (0, 0), 125, 7);
        let tx = started(&e);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].tx, tx);
        assert_eq!(r[0].at, SimTime::from_micros(1000));
        let (done, _) = p.complete(r[0].at, tx, r[0].seq).expect("fresh");
        assert_eq!(done.payload, 7);
        assert_eq!(done.airtime, SimDuration::from_micros(1000));
        assert_eq!(done.queued, SimDuration::ZERO);
    }

    #[test]
    fn fifo_queue_and_tail_drop() {
        let mut p = phy(false, 1_000_000, 2);
        let t0 = SimTime::ZERO;
        let (e0, r0) = p.enqueue(t0, 0, (0, 0), 125, 0);
        let tx0 = started(&e0);
        assert!(matches!(
            p.enqueue(t0, 0, (0, 0), 125, 1).0,
            Enqueue::Queued { depth: 1 }
        ));
        assert!(matches!(
            p.enqueue(t0, 0, (0, 0), 125, 2).0,
            Enqueue::Queued { depth: 2 }
        ));
        // Queue full: the newest frame is the one dropped.
        match p.enqueue(t0, 0, (0, 0), 125, 3).0 {
            Enqueue::Dropped(payload) => assert_eq!(payload, 3),
            other => panic!("expected Dropped, got {other:?}"),
        }
        // Drain: completions come back in enqueue order.
        let (done0, r1) = p.complete(r0[0].at, tx0, r0[0].seq).expect("fresh");
        assert_eq!(done0.payload, 0);
        let tx1 = done0.started.expect("next frame starts");
        assert_eq!(*p.payload(tx1).expect("active"), 1);
        assert_eq!(done0.started.map(|_| r1.len()), Some(1));
        let (done1, r2) = p.complete(r1[0].at, tx1, r1[0].seq).expect("fresh");
        assert_eq!(done1.payload, 1);
        assert_eq!(done1.queued, SimDuration::from_micros(1000));
        let tx2 = done1.started.expect("last frame starts");
        let (done2, _) = p.complete(r2[0].at, tx2, r2[0].seq).expect("fresh");
        assert_eq!(done2.payload, 2);
        assert_eq!(done2.started, None);
        assert_eq!(p.active_count(), 0);
    }

    #[test]
    fn shared_airtime_splits_rate_in_domain() {
        // Two 1000-bit frames start together in one domain at 1 Mb/s: each
        // gets 500 kb/s and finishes at 2 ms instead of 1 ms.
        let mut p = phy(true, 1_000_000, 8);
        let t0 = SimTime::ZERO;
        let (e0, _) = p.enqueue(t0, 0, (5, 5), 125, 0);
        let tx0 = started(&e0);
        let (e1, r1) = p.enqueue(t0, 1, (5, 5), 125, 1);
        let tx1 = started(&e1);
        // Both deadlines move to the 2 ms mark.
        let at: Vec<SimTime> = r1.iter().map(|r| r.at).collect();
        assert_eq!(at, vec![SimTime::from_micros(2000); 2]);
        let seq0 = r1.iter().find(|r| r.tx == tx0).expect("tx0 moved").seq;
        let seq1 = r1.iter().find(|r| r.tx == tx1).expect("tx1 moved").seq;
        // The original 1 ms deadline for tx0 is stale now.
        assert!(p
            .complete(SimTime::from_micros(1000), tx0, seq0 - 1)
            .is_none());
        let (d0, r2) = p
            .complete(SimTime::from_micros(2000), tx0, seq0)
            .expect("fresh");
        assert_eq!(d0.airtime, SimDuration::from_micros(2000));
        // tx1 is alone again, but its residual work finishes at the same
        // instant — the deadline does not move, so no reschedule is issued.
        assert!(r2.is_empty());
        let (d1, _) = p
            .complete(SimTime::from_micros(2000), tx1, seq1)
            .expect("fresh");
        assert_eq!(d1.airtime, SimDuration::from_micros(2000));
    }

    #[test]
    fn independent_domains_do_not_contend() {
        let mut p = phy(true, 1_000_000, 8);
        let t0 = SimTime::ZERO;
        let (e0, r0) = p.enqueue(t0, 0, (1, 1), 125, 0);
        let (_, r1) = p.enqueue(t0, 1, (2, 2), 125, 1);
        // Starting in a different domain does not move tx0's deadline.
        assert!(r1.iter().all(|r| r.tx != started(&e0)));
        assert_eq!(r0[0].at, SimTime::from_micros(1000));
        assert_eq!(r1[0].at, SimTime::from_micros(1000));
    }

    #[test]
    fn two_domain_transmission_counts_in_both() {
        // tx A spans domains (1,2); tx B is in (1,1); tx C in (2,2).
        // A shares with both: the bottleneck share is C/2 everywhere.
        let mut p = phy(true, 1_000_000, 8);
        let t0 = SimTime::ZERO;
        p.enqueue(t0, 0, (1, 2), 125, 0);
        p.enqueue(t0, 1, (1, 1), 125, 1);
        p.enqueue(t0, 2, (2, 2), 125, 2);
        for (_, sum) in p.domain_allocations() {
            assert!(
                sum <= p.capacity_bps() * (1.0 + 1e-9),
                "domain oversubscribed"
            );
        }
    }

    #[test]
    fn flush_node_aborts_and_frees_airtime() {
        let mut p = phy(true, 1_000_000, 8);
        let t0 = SimTime::ZERO;
        let (e0, _) = p.enqueue(t0, 0, (5, 5), 125, 0);
        let tx0 = started(&e0);
        let (e1, _r1) = p.enqueue(t0, 1, (5, 5), 125, 1);
        let tx1 = started(&e1);
        p.enqueue(t0, 0, (5, 5), 125, 2);
        let mid = SimTime::from_micros(1000);
        let (waiting, aborted, rescheds) = p.flush_node(mid, 0);
        assert_eq!(waiting, vec![2]);
        assert_eq!(aborted, Some(0));
        assert!(p.complete(SimTime::MAX, tx0, 99).is_none(), "tx0 gone");
        // tx1 sped back up to full rate; its deadline moved earlier.
        let r = rescheds.iter().find(|r| r.tx == tx1).expect("tx1 moved");
        // Half the bits drained at half rate by 1 ms; the rest at full rate.
        assert_eq!(r.at, SimTime::from_micros(1500));
    }
}
