//! Deterministic physical-layer channel model for the MANETKit netsim.
//!
//! The simulator's original delivery path is *ideal*: every frame crosses a
//! link after a flat (possibly jittered) propagation delay, regardless of its
//! size or of how many neighbours are talking at once. That hides the dominant
//! MANET effect — shared-medium saturation — from the routing protocols under
//! test. This crate layers a channel model between the topology and frame
//! delivery:
//!
//! * **Serialization delay** — a frame of `n` bytes occupies its sender's
//!   radio for `8·n / bandwidth` seconds before it can propagate.
//! * **Bounded transmit queues** — each node owns a FIFO transmit queue with a
//!   configurable frame capacity; arrivals beyond the cap are tail-dropped.
//! * **Shared airtime** — concurrent transmitters in the same contention
//!   domain (a spatial neighbourhood) split the channel via max-min fair-share
//!   rates, recomputed event-drivenly on every transmit start and finish (the
//!   dslab-network shared-throughput model: a shared-rate resource driven by
//!   simkern timers, never polled).
//!
//! The crate is deliberately *mechanism only*: it owns no clock and schedules
//! nothing itself. [`Phy::enqueue`] and [`Phy::complete`] return completion
//! deadlines and reschedule directives that the caller (the netsim world)
//! turns into events on its own kernel. Every completion deadline carries a
//! sequence number; after a rate reallocation moves a deadline, the stale
//! event is recognised by its outdated sequence number and ignored. All
//! internal state lives in ordered containers so iteration order — and with it
//! every allocation — is deterministic for a given call sequence.
//!
//! Composition with fault injection is defined as *drop at dequeue*: the
//! channel model decides only whether and when a frame reaches the air;
//! chance loss (Gilbert–Elliott link loss, frame chaos) is sampled by the
//! world when the transmission completes, never when the frame is queued.
//! Tail drops therefore consume no randomness and fault plans stay replayable
//! under contention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{Completion, Enqueue, Phy, Resched, TxId};

/// Channel parameters shared by the non-ideal models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Raw channel capacity in bits per second.
    pub bits_per_sec: u64,
    /// Transmit-queue capacity in frames (excluding the frame on the air).
    pub queue_frames: usize,
}

impl Default for Channel {
    /// An 802.11b-flavoured default: 11 Mb/s with a 64-frame interface queue.
    fn default() -> Self {
        Channel {
            bits_per_sec: 11_000_000,
            queue_frames: 64,
        }
    }
}

/// Which channel model a world runs.
///
/// `Ideal` is the default and preserves the simulator's historical behaviour
/// bit for bit: no serialization delay, no queueing, no contention, and no
/// extra random draws. The other models route every transmission through a
/// [`Phy`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PhyModel {
    /// Flat per-link delay only — the historical delivery path.
    #[default]
    Ideal,
    /// Size-proportional serialization at full channel rate per transmitter,
    /// with bounded FIFO transmit queues. Transmitters never contend.
    ConstantBandwidth(Channel),
    /// Like `ConstantBandwidth`, but concurrent transmitters in the same
    /// contention domain share the channel via max-min fair-share rates.
    SharedAirtime(Channel),
}

impl PhyModel {
    /// True for the historical zero-overhead delivery path.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        matches!(self, PhyModel::Ideal)
    }

    /// The channel parameters, when a channel model is active.
    #[must_use]
    pub fn channel(&self) -> Option<Channel> {
        match self {
            PhyModel::Ideal => None,
            PhyModel::ConstantBandwidth(c) | PhyModel::SharedAirtime(c) => Some(*c),
        }
    }

    /// Short stable label used in campaign grids and reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PhyModel::Ideal => "ideal".to_owned(),
            PhyModel::ConstantBandwidth(c) => format!("cbr{}k", c.bits_per_sec / 1000),
            PhyModel::SharedAirtime(c) => format!("air{}k", c.bits_per_sec / 1000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ideal() {
        assert!(PhyModel::default().is_ideal());
        assert_eq!(PhyModel::default().channel(), None);
        assert_eq!(Channel::default().bits_per_sec, 11_000_000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PhyModel::Ideal.label(), "ideal");
        let c = Channel {
            bits_per_sec: 256_000,
            queue_frames: 8,
        };
        assert_eq!(PhyModel::ConstantBandwidth(c).label(), "cbr256k");
        assert_eq!(PhyModel::SharedAirtime(c).label(), "air256k");
    }
}
