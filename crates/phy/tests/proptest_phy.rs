//! Property tests of the channel engine's two load-bearing invariants:
//!
//! 1. **Airtime conservation** — at every reallocation point (after every
//!    `enqueue`/`complete` the engine processes) the sum of allocated rates
//!    within any contention domain never exceeds the channel capacity.
//! 2. **FIFO ordering** — frames accepted by a node's transmit queue complete
//!    in enqueue order, per node and therefore per link, no matter how
//!    contention stretches and reshuffles their completion deadlines.
//!
//! The driver below replays a generated workload through a [`Phy`] the same
//! way the netsim world does: reschedule directives become ordered events,
//! stale sequence numbers are ignored, and time only moves forward.

use std::collections::BTreeMap;

use phy::{Channel, Enqueue, Phy, PhyModel, Resched, TxId};
use proptest::collection::vec;
use proptest::prelude::*;
use simkern::SimTime;

/// One offered frame: transmitter, destination (used only as a label for the
/// per-link ordering check), contention cells, size and inter-arrival gap.
#[derive(Debug, Clone)]
struct Job {
    node: usize,
    dest: usize,
    domains: (u32, u32),
    wire_bytes: usize,
    gap_us: u64,
}

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    vec(
        (
            0usize..6,
            0usize..6,
            (0u32..4, 0u32..4),
            1usize..2048,
            0u64..5_000,
        ),
        1..48,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(node, dest, domains, wire_bytes, gap_us)| Job {
                node,
                dest,
                domains,
                wire_bytes,
                gap_us,
            })
            .collect()
    })
}

/// A completion-tape entry: transmitter plus its `(dest, job index)` payload.
type Completion = (usize, (usize, u64));

/// Event-loop driver mirroring the world's scheduling contract.
struct Sim {
    phy: Phy<(usize, u64)>,
    /// (deadline µs, insertion tie-break) → (tx, seq).
    events: BTreeMap<(u64, u64), (TxId, u64)>,
    tie: u64,
    /// Completions in delivery order: (node, payload).
    completed: Vec<Completion>,
    capacity: f64,
    /// Conservation is an invariant of the shared model only; constant
    /// bandwidth intentionally gives every transmitter the full rate.
    shared: bool,
}

impl Sim {
    fn new(model: PhyModel) -> Sim {
        let shared = matches!(model, PhyModel::SharedAirtime(_));
        let phy = Phy::new(&model, 6).expect("non-ideal model");
        let capacity = phy.capacity_bps();
        Sim {
            phy,
            events: BTreeMap::new(),
            tie: 0,
            completed: Vec::new(),
            capacity,
            shared,
        }
    }

    fn schedule(&mut self, rescheds: Vec<Resched>) {
        for r in rescheds {
            self.events
                .insert((r.at.as_micros(), self.tie), (r.tx, r.seq));
            self.tie += 1;
        }
    }

    fn assert_conservation(&self) {
        if !self.shared {
            return;
        }
        for (domain, sum) in self.phy.domain_allocations() {
            assert!(
                sum <= self.capacity * (1.0 + 1e-6),
                "domain {domain} oversubscribed: {sum} > {}",
                self.capacity
            );
        }
    }

    /// Fires every pending completion due at or before `horizon`.
    fn run_until(&mut self, horizon: u64) {
        while let Some((&(at, tie), &(tx, seq))) = self.events.iter().next() {
            if at > horizon {
                break;
            }
            self.events.remove(&(at, tie));
            if let Some((done, rescheds)) = self.phy.complete(SimTime::from_micros(at), tx, seq) {
                self.completed.push((done.node, done.payload));
                self.schedule(rescheds);
                self.assert_conservation();
            }
        }
    }
}

fn drive(model: PhyModel, jobs: &[Job]) -> (Sim, Vec<Completion>) {
    let mut sim = Sim::new(model);
    let mut accepted: Vec<Completion> = Vec::new();
    let mut now = 0u64;
    for (i, job) in jobs.iter().enumerate() {
        now += job.gap_us;
        sim.run_until(now);
        let payload = (job.dest, i as u64);
        let (outcome, rescheds) = sim.phy.enqueue(
            SimTime::from_micros(now),
            job.node,
            job.domains,
            job.wire_bytes,
            payload,
        );
        sim.schedule(rescheds);
        sim.assert_conservation();
        if !matches!(outcome, Enqueue::Dropped(_)) {
            accepted.push((job.node, payload));
        }
    }
    sim.run_until(u64::MAX);
    (sim, accepted)
}

fn check_fifo_and_drain(model: PhyModel, jobs: &[Job]) {
    let (sim, accepted) = drive(model, jobs);
    // Everything accepted eventually left the air.
    prop_assert_eq!(sim.phy.active_count(), 0);
    prop_assert_eq!(sim.completed.len(), accepted.len());
    // Per-node FIFO: each node's completions replay its accept order.
    for node in 0..6 {
        let sent: Vec<_> = accepted.iter().filter(|(n, _)| *n == node).collect();
        let got: Vec<_> = sim.completed.iter().filter(|(n, _)| *n == node).collect();
        prop_assert_eq!(sent, got, "node {} completions out of order", node);
    }
    // Per-link FIFO: the (node, dest) subsequences are ordered too.
    for node in 0..6 {
        for dest in 0..6 {
            let link = |(n, (d, _)): &&(usize, (usize, u64))| *n == node && *d == dest;
            let sent: Vec<_> = accepted.iter().filter(link).collect();
            let got: Vec<_> = sim.completed.iter().filter(link).collect();
            prop_assert_eq!(sent, got, "link {}->{} out of order", node, dest);
        }
    }
}

fn channel(bps: u64) -> Channel {
    Channel {
        bits_per_sec: bps,
        queue_frames: 4,
    }
}

proptest! {
    /// Shared airtime: conservation holds at every reallocation point and
    /// contention never reorders a queue.
    #[test]
    fn shared_airtime_conserves_and_keeps_fifo(jobs in arb_jobs()) {
        check_fifo_and_drain(PhyModel::SharedAirtime(channel(500_000)), &jobs);
    }

    /// Constant bandwidth is the degenerate single-transmitter case: the same
    /// invariants hold and deadlines, once issued, never move.
    #[test]
    fn constant_bandwidth_conserves_and_keeps_fifo(jobs in arb_jobs()) {
        check_fifo_and_drain(PhyModel::ConstantBandwidth(channel(500_000)), &jobs);
    }

    /// Double-drive determinism: the engine is a pure function of its call
    /// sequence — identical workloads produce identical completion tapes.
    #[test]
    fn replay_is_deterministic(jobs in arb_jobs()) {
        let (a, _) = drive(PhyModel::SharedAirtime(channel(250_000)), &jobs);
        let (b, _) = drive(PhyModel::SharedAirtime(channel(250_000)), &jobs);
        prop_assert_eq!(a.completed, b.completed);
    }
}
