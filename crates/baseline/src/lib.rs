//! Monolithic comparator implementations for the MANETKit evaluation.
//!
//! The paper compares its framework-built protocols against the most
//! popular standalone implementations: **Unik-olsrd** for OLSR and
//! **DYMOUM v0.3** for DYMO. This crate provides in-language analogues:
//! single-struct daemons with hard-wired control flow, no component
//! machinery, no events, no runtime reconfigurability — but the same wire
//! format, parameters and functional behaviour, so Tables 1 and 2 compare
//! like with like.
//!
//! ```
//! use manetkit_baseline::{Dymoum, Olsrd, OlsrdConfig};
//! use netsim::{NodeId, SimDuration, Topology, World};
//!
//! let mut world = World::builder().topology(Topology::line(3)).seed(8).build();
//! world.install_agent(NodeId(0), Box::new(Dymoum::new()));
//! world.install_agent(NodeId(1), Box::new(Dymoum::new()));
//! world.install_agent(NodeId(2), Box::new(Dymoum::new()));
//! let far = world.addr(NodeId(2));
//! world.send_datagram(NodeId(0), far, b"ping".to_vec());
//! world.run_for(SimDuration::from_secs(3));
//! assert_eq!(world.stats().data_delivered, 1);
//! # let _ = OlsrdConfig::default();
//! # let _: fn() -> Olsrd = || Olsrd::new(OlsrdConfig::default());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dymoum;
mod olsrd;

pub use dymoum::Dymoum;
pub use olsrd::{Olsrd, OlsrdConfig};
