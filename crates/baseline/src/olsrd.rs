//! `olsrd`: a deliberately *monolithic* OLSR implementation — the
//! Unik-olsrd comparator of the paper's evaluation.
//!
//! One struct, hard-wired control flow, no components, no events, no
//! reconfigurability. Functionally equivalent to the MANETKit composition
//! (same wire format, same intervals, MPR flooding, Dijkstra routes) so the
//! performance and footprint comparisons of Tables 1–2 are fair.

use std::collections::{BTreeMap, BTreeSet};

use netsim::{NodeOs, RoutingAgent, SimDuration, SimTime};
use packetbb::registry::{link_status, msg_type, tlv_type, willingness};
use packetbb::{Address, AddressBlock, AddressTlv, Message, MessageBuilder, Packet, Tlv};

const TIMER_HELLO: u64 = 1;
const TIMER_TC: u64 = 2;
const TIMER_SWEEP: u64 = 3;

/// Configuration of the monolithic OLSR daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsrdConfig {
    /// HELLO interval (default 2 s, as on the paper's testbed).
    pub hello_interval: SimDuration,
    /// TC interval (default 5 s).
    pub tc_interval: SimDuration,
    /// Link validity (default 6 s).
    pub link_validity: SimDuration,
    /// Topology validity (default 15 s).
    pub topology_validity: SimDuration,
}

impl Default for OlsrdConfig {
    fn default() -> Self {
        OlsrdConfig {
            hello_interval: SimDuration::from_secs(2),
            tc_interval: SimDuration::from_secs(5),
            link_validity: SimDuration::from_secs(6),
            topology_validity: SimDuration::from_secs(15),
        }
    }
}

#[derive(Debug, Clone)]
struct Link {
    last_heard: SimTime,
    symmetric: bool,
    two_hop: BTreeSet<Address>,
}

/// The monolithic OLSR daemon.
#[derive(Debug)]
pub struct Olsrd {
    config: OlsrdConfig,
    links: BTreeMap<Address, Link>,
    mprs: BTreeSet<Address>,
    selectors: BTreeMap<Address, SimTime>,
    duplicates: BTreeMap<(Address, u16), SimTime>,
    topology: BTreeMap<(Address, Address), (u16, SimTime)>,
    latest_ansn: BTreeMap<Address, u16>,
    ansn: u16,
    installed: BTreeSet<Address>,
    pkt_seq: u16,
}

impl Olsrd {
    /// A fresh daemon.
    #[must_use]
    pub fn new(config: OlsrdConfig) -> Self {
        Olsrd {
            config,
            links: BTreeMap::new(),
            mprs: BTreeSet::new(),
            selectors: BTreeMap::new(),
            duplicates: BTreeMap::new(),
            topology: BTreeMap::new(),
            latest_ansn: BTreeMap::new(),
            ansn: 0,
            installed: BTreeSet::new(),
            pkt_seq: 0,
        }
    }

    fn send(&mut self, os: &mut NodeOs, msg: Message, dst: Option<Address>) {
        self.pkt_seq = self.pkt_seq.wrapping_add(1);
        let pkt = Packet::builder()
            .seq_num(self.pkt_seq)
            .push_message(msg)
            .build();
        match dst {
            None => os.broadcast_control(pkt.encode_to_vec()),
            Some(a) => os.unicast_control(a, pkt.encode_to_vec()),
        }
    }

    fn send_hello(&mut self, os: &mut NodeOs) {
        let local = os.addr();
        let seq = os.next_seq();
        let mut b = MessageBuilder::new(msg_type::HELLO)
            .originator(local)
            .hop_limit(1)
            .seq_num(seq)
            .push_tlv(Tlv::with_value(
                tlv_type::WILLINGNESS,
                vec![willingness::DEFAULT],
            ));
        if !self.links.is_empty() {
            let addrs: Vec<Address> = self.links.keys().copied().collect();
            let mut block = AddressBlock::new(addrs).expect("single family");
            for (i, (addr, link)) in self.links.iter().enumerate() {
                let status = if link.symmetric {
                    link_status::SYMMETRIC
                } else {
                    link_status::ASYMMETRIC
                };
                block.add_tlv(AddressTlv::single(
                    Tlv::with_value(tlv_type::LINK_STATUS, vec![status]),
                    i as u8,
                ));
                if self.mprs.contains(addr) {
                    block.add_tlv(AddressTlv::single(Tlv::flag(tlv_type::MPR), i as u8));
                }
            }
            b = b.push_address_block(block);
        }
        os.bump("hello_sent");
        let msg = b.build();
        self.send(os, msg, None);
    }

    fn send_tc(&mut self, os: &mut NodeOs) {
        if self.selectors.is_empty() {
            return;
        }
        let local = os.addr();
        let seq = os.next_seq();
        let advertised: Vec<Address> = self.selectors.keys().copied().collect();
        let msg = MessageBuilder::new(msg_type::TC)
            .originator(local)
            .hop_limit(255)
            .hop_count(0)
            .seq_num(seq)
            .push_tlv(Tlv::with_value(
                tlv_type::CONT_SEQ_NUM,
                self.ansn.to_be_bytes().to_vec(),
            ))
            .push_address_block(AddressBlock::new(advertised).expect("non-empty"))
            .build();
        os.bump("tc_sent");
        self.duplicates
            .insert((local, seq), os.now() + SimDuration::from_secs(30));
        self.send(os, msg, None);
    }

    fn process_hello(&mut self, os: &mut NodeOs, msg: &Message) {
        let local = os.addr();
        let Some(sender) = msg.originator() else {
            return;
        };
        if sender == local {
            return;
        }
        let now = os.now();
        let mut hears_us = false;
        let mut selects_us = false;
        let mut two_hop = BTreeSet::new();
        for block in msg.address_blocks() {
            for (addr, tlvs) in block.iter_with_tlvs() {
                let sym = tlvs.iter().any(|t| {
                    t.tlv().tlv_type() == tlv_type::LINK_STATUS
                        && t.tlv().value_u8() == Some(link_status::SYMMETRIC)
                });
                if addr == local {
                    hears_us = true;
                    if tlvs.iter().any(|t| t.tlv().tlv_type() == tlv_type::MPR) {
                        selects_us = true;
                    }
                } else if sym {
                    two_hop.insert(addr);
                }
            }
        }
        let entry = self.links.entry(sender).or_insert(Link {
            last_heard: now,
            symmetric: false,
            two_hop: BTreeSet::new(),
        });
        entry.last_heard = now;
        entry.symmetric = hears_us;
        entry.two_hop = two_hop;
        if selects_us {
            self.selectors
                .insert(sender, now + self.config.link_validity);
        } else if self.selectors.remove(&sender).is_some() && !self.selectors.is_empty() {
            self.ansn = self.ansn.wrapping_add(1);
        }
        let old_mprs = self.mprs.clone();
        self.recompute_mprs(local);
        if self.mprs != old_mprs || selects_us {
            self.ansn = self.ansn.wrapping_add(1);
            // Triggered TC for faster convergence, as in olsrd.
            self.send_tc(os);
        }
        self.recompute_routes(os);
    }

    fn process_tc(&mut self, os: &mut NodeOs, msg: &Message, from: Address) {
        let local = os.addr();
        let Some(originator) = msg.originator() else {
            return;
        };
        if originator == local {
            return;
        }
        let now = os.now();
        let seq = msg.seq_num().unwrap_or(0);
        let Some(ansn) = msg
            .find_tlv(tlv_type::CONT_SEQ_NUM)
            .and_then(Tlv::value_u16)
        else {
            return;
        };
        let duplicate = self
            .duplicates
            .insert((originator, seq), now + SimDuration::from_secs(30))
            .is_some();
        if !duplicate {
            // MPR forwarding: relay if the sender selected us.
            if self.selectors.contains_key(&from) {
                if let Some(fwd) = msg.forwarded() {
                    os.bump("tc_relayed");
                    self.send(os, fwd, None);
                }
            }
            let stale = self
                .latest_ansn
                .get(&originator)
                .is_some_and(|latest| newer(*latest, ansn));
            if !stale {
                self.latest_ansn.insert(originator, ansn);
                self.topology
                    .retain(|(_, lh), (a, _)| *lh != originator || !newer(ansn, *a));
                for block in msg.address_blocks() {
                    for addr in block.addresses() {
                        self.topology.insert(
                            (*addr, originator),
                            (ansn, now + self.config.topology_validity),
                        );
                    }
                }
                os.bump("tc_processed");
                self.recompute_routes(os);
            }
        }
    }

    fn recompute_mprs(&mut self, local: Address) {
        let sym: BTreeSet<Address> = self
            .links
            .iter()
            .filter(|(_, l)| l.symmetric)
            .map(|(a, _)| *a)
            .collect();
        let mut coverage: BTreeMap<Address, BTreeSet<Address>> = BTreeMap::new();
        for (nb, link) in &self.links {
            if !link.symmetric {
                continue;
            }
            for th in &link.two_hop {
                if *th != local && !sym.contains(th) {
                    coverage.entry(*th).or_default().insert(*nb);
                }
            }
        }
        let mut mprs = BTreeSet::new();
        for covers in coverage.values() {
            if covers.len() == 1 {
                mprs.insert(*covers.iter().next().expect("len 1"));
            }
        }
        let mut uncovered: BTreeSet<Address> = coverage
            .iter()
            .filter(|(_, c)| c.is_disjoint(&mprs))
            .map(|(th, _)| *th)
            .collect();
        while !uncovered.is_empty() {
            let best = sym
                .iter()
                .filter(|a| !mprs.contains(*a))
                .map(|a| {
                    let covers = coverage
                        .iter()
                        .filter(|(th, c)| uncovered.contains(*th) && c.contains(a))
                        .count();
                    (covers, *a)
                })
                .filter(|(c, _)| *c > 0)
                .max_by(|(c1, a1), (c2, a2)| c1.cmp(c2).then_with(|| a2.cmp(a1)));
            let Some((_, chosen)) = best else { break };
            mprs.insert(chosen);
            uncovered.retain(|th| !coverage.get(th).is_some_and(|c| c.contains(&chosen)));
        }
        self.mprs = mprs;
    }

    fn recompute_routes(&mut self, os: &mut NodeOs) {
        let local = os.addr();
        // BFS over direct links, 2-hop info and TC edges (hop metric).
        let mut edges: BTreeMap<Address, BTreeSet<Address>> = BTreeMap::new();
        for (nb, link) in &self.links {
            if link.symmetric {
                edges.entry(local).or_default().insert(*nb);
                for th in &link.two_hop {
                    edges.entry(*nb).or_default().insert(*th);
                }
            }
        }
        for (dst, lh) in self.topology.keys() {
            edges.entry(*lh).or_default().insert(*dst);
        }
        let mut best: BTreeMap<Address, (Address, u32)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        let mut seen = BTreeSet::new();
        seen.insert(local);
        queue.push_back((local, None::<Address>, 0u32));
        while let Some((node, first, hops)) = queue.pop_front() {
            if let Some(nexts) = edges.get(&node) {
                for next in nexts {
                    if !seen.insert(*next) {
                        continue;
                    }
                    let fh = first.unwrap_or(*next);
                    best.insert(*next, (fh, hops + 1));
                    queue.push_back((*next, Some(fh), hops + 1));
                }
            }
        }
        let stale: Vec<Address> = self
            .installed
            .iter()
            .filter(|d| !best.contains_key(d))
            .copied()
            .collect();
        for d in stale {
            os.route_table_mut().remove_host_route(d);
            self.installed.remove(&d);
        }
        for (dst, (nh, hops)) in &best {
            os.route_table_mut().add_host_route(*dst, *nh, *hops);
            self.installed.insert(*dst);
        }
    }

    fn sweep(&mut self, os: &mut NodeOs) {
        let now = os.now();
        let validity = self.config.link_validity;
        let mut lost = false;
        self.links.retain(|_, l| {
            let alive = now.since(l.last_heard) <= validity;
            lost |= !alive && l.symmetric;
            alive
        });
        self.selectors.retain(|_, exp| *exp > now);
        self.duplicates.retain(|_, exp| *exp > now);
        let topo_before = self.topology.len();
        self.topology.retain(|_, (_, exp)| *exp > now);
        if lost || self.topology.len() != topo_before {
            let local = os.addr();
            self.recompute_mprs(local);
            self.recompute_routes(os);
        }
    }
}

fn newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

impl RoutingAgent for Olsrd {
    fn name(&self) -> &str {
        "olsrd"
    }

    fn start(&mut self, os: &mut NodeOs) {
        os.set_timer(self.config.hello_interval, TIMER_HELLO);
        os.set_timer(self.config.tc_interval, TIMER_TC);
        os.set_timer(SimDuration::from_secs(1), TIMER_SWEEP);
    }

    fn on_frame(&mut self, os: &mut NodeOs, from: Address, bytes: &[u8]) {
        let Ok(packet) = Packet::decode(bytes) else {
            return;
        };
        for msg in packet.messages() {
            match msg.msg_type() {
                msg_type::HELLO => self.process_hello(os, msg),
                msg_type::TC => self.process_tc(os, msg, from),
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, os: &mut NodeOs, token: u64) {
        match token {
            TIMER_HELLO => {
                self.send_hello(os);
                os.set_timer(self.config.hello_interval, TIMER_HELLO);
            }
            TIMER_TC => {
                self.send_tc(os);
                os.set_timer(self.config.tc_interval, TIMER_TC);
            }
            TIMER_SWEEP => {
                self.sweep(os);
                os.set_timer(SimDuration::from_secs(1), TIMER_SWEEP);
            }
            _ => {}
        }
    }

    fn on_filter_event(&mut self, _os: &mut NodeOs, _event: netsim::FilterEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{NodeId, Topology, World};

    #[test]
    fn line_converges_to_full_routes() {
        let mut world = World::builder()
            .topology(Topology::line(5))
            .seed(31)
            .build();
        for i in 0..5 {
            world.install_agent(NodeId(i), Box::new(Olsrd::new(OlsrdConfig::default())));
        }
        world.run_for(SimDuration::from_secs(40));
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    let dst = world.addr(NodeId(b));
                    assert!(
                        world.os(NodeId(a)).route_table().lookup(dst).is_some(),
                        "route {a} -> {b} missing"
                    );
                }
            }
        }
        // End-to-end data.
        let far = world.addr(NodeId(4));
        world.send_datagram(NodeId(0), far, b"x".to_vec());
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.stats().data_delivered, 1);
    }

    #[test]
    fn link_break_repairs_via_ring() {
        let mut topo = Topology::line(4);
        topo.set_link(NodeId(3), NodeId(0), netsim::LinkState::Up);
        let mut world = World::builder().topology(topo).seed(32).build();
        for i in 0..4 {
            world.install_agent(NodeId(i), Box::new(Olsrd::new(OlsrdConfig::default())));
        }
        world.run_for(SimDuration::from_secs(40));
        world.set_link(NodeId(0), NodeId(1), netsim::LinkState::Down);
        world.run_for(SimDuration::from_secs(40));
        let a1 = world.addr(NodeId(1));
        let entry = world
            .os(NodeId(0))
            .route_table()
            .lookup(a1)
            .expect("repaired");
        assert_eq!(entry.next_hop, world.addr(NodeId(3)));
    }
}
