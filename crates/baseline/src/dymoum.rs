//! `dymoum`: a deliberately *monolithic* DYMO implementation — the
//! DYMOUM v0.3 comparator of the paper's evaluation.
//!
//! One struct, hard-wired control flow. Same wire format and parameters as
//! the MANETKit composition for fair comparison.

use std::collections::BTreeMap;

use netsim::{FilterEvent, NodeOs, RoutingAgent, SimDuration, SimTime};
use packetbb::registry::{msg_type, tlv_type};
use packetbb::{Address, AddressBlock, AddressTlv, Message, MessageBuilder, Packet, Tlv};

const TIMER_SWEEP: u64 = 1;
const ROUTE_LIFETIME: SimDuration = SimDuration::from_micros(5_000_000);
const RREQ_WAIT: SimDuration = SimDuration::from_micros(1_000_000);
const RREQ_TRIES: u8 = 3;
const HOP_LIMIT: u8 = 10;

#[derive(Debug, Clone, Copy)]
struct Route {
    next_hop: Address,
    seq: u16,
    hop_count: u8,
    expiry: SimTime,
    broken: bool,
}

/// `(target, accumulated path, hop_limit)` of a parsed routing element.
type ParsedRe = (Address, Vec<(Address, u16)>, u8);

#[derive(Debug, Clone, Copy)]
struct Pending {
    attempts: u8,
    next_retry: SimTime,
}

/// The monolithic DYMO daemon.
#[derive(Debug, Default)]
pub struct Dymoum {
    routes: BTreeMap<Address, Route>,
    pending: BTreeMap<Address, Pending>,
    duplicates: BTreeMap<(Address, u16), SimTime>,
    own_seq: u16,
    pkt_seq: u16,
}

impl Dymoum {
    /// A fresh daemon.
    #[must_use]
    pub fn new() -> Self {
        Dymoum::default()
    }

    fn next_seq(&mut self) -> u16 {
        self.own_seq = self.own_seq.wrapping_add(1);
        self.own_seq
    }

    fn send(&mut self, os: &mut NodeOs, msg: Message, dst: Option<Address>) {
        self.pkt_seq = self.pkt_seq.wrapping_add(1);
        let pkt = Packet::builder()
            .seq_num(self.pkt_seq)
            .push_message(msg)
            .build();
        match dst {
            None => os.broadcast_control(pkt.encode_to_vec()),
            Some(a) => os.unicast_control(a, pkt.encode_to_vec()),
        }
    }

    fn build_re(kind: u8, target: Address, path: &[(Address, u16)], hop_limit: u8) -> Message {
        let (orig, orig_seq) = path[0];
        let mut b = MessageBuilder::new(kind)
            .originator(orig)
            .hop_limit(hop_limit)
            .hop_count((path.len() - 1) as u8)
            .seq_num(orig_seq)
            .push_address_block(AddressBlock::new(vec![target]).expect("one target"));
        let addrs: Vec<Address> = path.iter().map(|(a, _)| *a).collect();
        let mut block = AddressBlock::new(addrs).expect("non-empty");
        for (i, (_, s)) in path.iter().enumerate() {
            block.add_tlv(AddressTlv::single(
                Tlv::with_value(tlv_type::ADDR_SEQ_NUM, s.to_be_bytes().to_vec()),
                i as u8,
            ));
        }
        b = b.push_address_block(block);
        b.build()
    }

    fn parse_re(msg: &Message) -> Option<ParsedRe> {
        let blocks = msg.address_blocks();
        if blocks.len() < 2 {
            return None;
        }
        let target = *blocks[0].addresses().first()?;
        let mut path = Vec::new();
        for (addr, tlvs) in blocks[1].iter_with_tlvs() {
            let seq = tlvs
                .iter()
                .find(|t| t.tlv().tlv_type() == tlv_type::ADDR_SEQ_NUM)
                .and_then(|t| t.tlv().value_u16())
                .unwrap_or(0);
            path.push((addr, seq));
        }
        if path.is_empty() {
            return None;
        }
        Some((target, path, msg.hop_limit().unwrap_or(1)))
    }

    fn offer_route(
        &mut self,
        os: &mut NodeOs,
        dst: Address,
        next_hop: Address,
        seq: u16,
        hop_count: u8,
    ) {
        let now = os.now();
        let expiry = now + ROUTE_LIFETIME;
        let accept = match self.routes.get(&dst) {
            None => true,
            Some(r) => {
                r.broken
                    || newer(seq, r.seq)
                    || (seq == r.seq && hop_count < r.hop_count)
                    || (seq == r.seq && next_hop == r.next_hop)
            }
        };
        if accept {
            self.routes.insert(
                dst,
                Route {
                    next_hop,
                    seq,
                    hop_count,
                    expiry,
                    broken: false,
                },
            );
            os.route_table_mut()
                .add_host_route(dst, next_hop, u32::from(hop_count));
        }
    }

    fn learn_path(&mut self, os: &mut NodeOs, path: &[(Address, u16)], from: Address) {
        let local = os.addr();
        let len = path.len();
        for (i, (addr, seq)) in path.iter().enumerate() {
            if *addr == local {
                continue;
            }
            self.offer_route(os, *addr, from, *seq, (len - i) as u8);
        }
    }

    fn start_discovery(&mut self, os: &mut NodeOs, dst: Address) {
        if self.pending.contains_key(&dst) {
            return;
        }
        let now = os.now();
        self.pending.insert(
            dst,
            Pending {
                attempts: 1,
                next_retry: now + RREQ_WAIT,
            },
        );
        os.bump("route_discovery");
        self.send_rreq(os, dst);
    }

    fn send_rreq(&mut self, os: &mut NodeOs, dst: Address) {
        let local = os.addr();
        let seq = self.next_seq();
        self.duplicates
            .insert((local, seq), os.now() + SimDuration::from_secs(10));
        os.bump("rreq_sent");
        let msg = Self::build_re(msg_type::RREQ, dst, &[(local, seq)], HOP_LIMIT);
        self.send(os, msg, None);
    }

    fn process_re(&mut self, os: &mut NodeOs, msg: &Message, from: Address) {
        let local = os.addr();
        let Some((target, path, hop_limit)) = Self::parse_re(msg) else {
            return;
        };
        let (orig, orig_seq) = path[0];
        if orig == local {
            return;
        }
        let now = os.now();
        self.learn_path(os, &path, from);
        match msg.msg_type() {
            msg_type::RREQ => {
                if self
                    .duplicates
                    .insert((orig, orig_seq), now + SimDuration::from_secs(10))
                    .is_some()
                {
                    return;
                }
                if target == local {
                    let seq = self.next_seq();
                    os.bump("rrep_sent");
                    let rrep = Self::build_re(msg_type::RREP, orig, &[(local, seq)], HOP_LIMIT);
                    let nh = self.routes.get(&orig).map_or(from, |r| r.next_hop);
                    self.send(os, rrep, Some(nh));
                } else if hop_limit > 1 && !path.iter().any(|(a, _)| *a == local) {
                    let mut extended = path.clone();
                    extended.push((local, self.own_seq));
                    os.bump("rreq_relayed");
                    let fwd = Self::build_re(msg_type::RREQ, target, &extended, hop_limit - 1);
                    self.send(os, fwd, None);
                }
            }
            msg_type::RREP => {
                if target == local {
                    self.pending.remove(&orig);
                    os.bump("rrep_received");
                    os.reinject(orig);
                } else if hop_limit > 1 && !path.iter().any(|(a, _)| *a == local) {
                    if let Some(route) = self.routes.get(&target).copied() {
                        if !route.broken {
                            let mut extended = path.clone();
                            extended.push((local, self.own_seq));
                            let fwd =
                                Self::build_re(msg_type::RREP, target, &extended, hop_limit - 1);
                            self.send(os, fwd, Some(route.next_hop));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn process_rerr(&mut self, os: &mut NodeOs, msg: &Message, from: Address) {
        let mut affected = Vec::new();
        for block in msg.address_blocks() {
            for (addr, tlvs) in block.iter_with_tlvs() {
                let seq = tlvs
                    .iter()
                    .find(|t| t.tlv().tlv_type() == tlv_type::ADDR_SEQ_NUM)
                    .and_then(|t| t.tlv().value_u16())
                    .unwrap_or(0);
                if let Some(r) = self.routes.get_mut(&addr) {
                    if r.next_hop == from && !r.broken {
                        r.broken = true;
                        affected.push((addr, seq));
                        os.route_table_mut().remove_host_route(addr);
                    }
                }
            }
        }
        if !affected.is_empty() {
            if let Some(hl) = msg.hop_limit() {
                if hl > 1 {
                    self.send_rerr(os, &affected, hl - 1);
                }
            }
        }
    }

    fn send_rerr(&mut self, os: &mut NodeOs, unreachable: &[(Address, u16)], hop_limit: u8) {
        if unreachable.is_empty() {
            return;
        }
        let local = os.addr();
        let seq = self.next_seq();
        let addrs: Vec<Address> = unreachable.iter().map(|(a, _)| *a).collect();
        let mut block = AddressBlock::new(addrs).expect("non-empty");
        for (i, (_, s)) in unreachable.iter().enumerate() {
            block.add_tlv(AddressTlv::single(
                Tlv::with_value(tlv_type::ADDR_SEQ_NUM, s.to_be_bytes().to_vec()),
                i as u8,
            ));
        }
        let msg = MessageBuilder::new(msg_type::RERR)
            .originator(local)
            .hop_limit(hop_limit)
            .seq_num(seq)
            .push_address_block(block)
            .build();
        os.bump("rerr_sent");
        self.send(os, msg, None);
    }

    fn invalidate_via(&mut self, os: &mut NodeOs, via: Address) {
        let mut broken = Vec::new();
        for (dst, r) in self.routes.iter_mut() {
            if r.next_hop == via && !r.broken {
                r.broken = true;
                broken.push((*dst, r.seq));
            }
        }
        for (dst, _) in &broken {
            os.route_table_mut().remove_host_route(*dst);
        }
        self.send_rerr(os, &broken, 2);
    }

    fn sweep(&mut self, os: &mut NodeOs) {
        let now = os.now();
        let due: Vec<Address> = self
            .pending
            .iter()
            .filter(|(_, p)| p.next_retry <= now)
            .map(|(d, _)| *d)
            .collect();
        for dst in due {
            let p = self.pending.get(&dst).copied().expect("listed");
            if p.attempts >= RREQ_TRIES {
                self.pending.remove(&dst);
                os.bump("route_discovery_failed");
                os.drop_buffered(dst);
            } else {
                self.pending.insert(
                    dst,
                    Pending {
                        attempts: p.attempts + 1,
                        next_retry: now + RREQ_WAIT.mul_f64(f64::from(1 << p.attempts)),
                    },
                );
                os.bump("rreq_retry");
                self.send_rreq(os, dst);
            }
        }
        let mut lapsed = Vec::new();
        self.routes.retain(|dst, r| {
            let keep = r.expiry > now || (r.broken && r.expiry + ROUTE_LIFETIME > now);
            if !keep {
                lapsed.push(*dst);
            }
            keep
        });
        for dst in lapsed {
            os.route_table_mut().remove_host_route(dst);
        }
        self.duplicates.retain(|_, exp| *exp > now);
        os.set_timer(SimDuration::from_millis(250), TIMER_SWEEP);
    }
}

fn newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

impl RoutingAgent for Dymoum {
    fn name(&self) -> &str {
        "dymoum"
    }

    fn start(&mut self, os: &mut NodeOs) {
        os.set_timer(SimDuration::from_millis(250), TIMER_SWEEP);
    }

    fn on_frame(&mut self, os: &mut NodeOs, from: Address, bytes: &[u8]) {
        let Ok(packet) = Packet::decode(bytes) else {
            return;
        };
        for msg in packet.messages() {
            match msg.msg_type() {
                msg_type::RREQ | msg_type::RREP => self.process_re(os, msg, from),
                msg_type::RERR => self.process_rerr(os, msg, from),
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, os: &mut NodeOs, token: u64) {
        if token == TIMER_SWEEP {
            self.sweep(os);
        }
    }

    fn on_filter_event(&mut self, os: &mut NodeOs, event: FilterEvent) {
        match event {
            FilterEvent::NoRoute { dst } => self.start_discovery(os, dst),
            FilterEvent::RouteUsed { dst, next_hop } => {
                let now = os.now();
                for a in [dst, next_hop] {
                    if let Some(r) = self.routes.get_mut(&a) {
                        if !r.broken {
                            r.expiry = now + ROUTE_LIFETIME;
                        }
                    }
                }
            }
            FilterEvent::ForwardFailure { dst, .. } => {
                let seq = self.routes.get(&dst).map_or(0, |r| r.seq);
                if let Some(r) = self.routes.get_mut(&dst) {
                    r.broken = true;
                }
                os.route_table_mut().remove_host_route(dst);
                self.send_rerr(os, &[(dst, seq)], 2);
            }
            FilterEvent::TxFailed { neighbour } => self.invalidate_via(os, neighbour),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{NodeId, Topology, World};

    #[test]
    fn line_discovery_and_delivery() {
        let mut world = World::builder()
            .topology(Topology::line(5))
            .seed(41)
            .build();
        for i in 0..5 {
            world.install_agent(NodeId(i), Box::new(Dymoum::new()));
        }
        world.run_for(SimDuration::from_secs(1));
        let far = world.addr(NodeId(4));
        world.send_datagram(NodeId(0), far, b"x".to_vec());
        world.run_for(SimDuration::from_secs(3));
        let s = world.stats();
        assert_eq!(s.data_delivered, 1, "{s:?}");
        assert_eq!(s.agent_counter("route_discovery"), 1);
    }

    #[test]
    fn unreachable_gives_up_with_retries() {
        let mut world = World::builder()
            .topology(Topology::line(2))
            .seed(42)
            .build();
        for i in 0..2 {
            world.install_agent(NodeId(i), Box::new(Dymoum::new()));
        }
        let ghost = Address::v4([10, 9, 9, 9]);
        world.send_datagram(NodeId(0), ghost, b"x".to_vec());
        world.run_for(SimDuration::from_secs(20));
        let s = world.stats();
        assert_eq!(s.agent_counter("route_discovery_failed"), 1);
        assert!(s.agent_counter("rreq_retry") >= 2);
    }

    #[test]
    fn broken_route_reported() {
        let mut world = World::builder()
            .topology(Topology::line(3))
            .seed(43)
            .build();
        for i in 0..3 {
            world.install_agent(NodeId(i), Box::new(Dymoum::new()));
        }
        world.run_for(SimDuration::from_secs(1));
        let far = world.addr(NodeId(2));
        world.send_datagram(NodeId(0), far, b"x".to_vec());
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(world.stats().data_delivered, 1);
        world.set_link(NodeId(1), NodeId(2), netsim::LinkState::Down);
        world.send_datagram(NodeId(0), far, b"y".to_vec());
        world.run_for(SimDuration::from_secs(5));
        assert!(world.stats().agent_counter("rerr_sent") >= 1);
    }
}
