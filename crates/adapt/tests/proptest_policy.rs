//! Property-based no-flapping guarantees: for *arbitrary* telemetry
//! sequences — including adversarial oscillation exactly at the threshold
//! boundary — the policy never issues two switches inside one cooldown
//! window, never switches to the stack it already runs, and never
//! switches into a penalized stack.

use adapt::{Decision, Policy, Stack};
use manetkit::TxnVerdict;
use netsim::{SimDuration, SimTime, WorldStats};
use proptest::prelude::*;

fn window(sent: u64, delivered: u64, control: u64, partitions: u64) -> WorldStats {
    WorldStats {
        data_sent: sent,
        data_delivered: delivered.min(sent),
        control_frames: control,
        partitions_started: partitions,
        faults_injected: partitions,
        ..WorldStats::default()
    }
}

/// One tick of synthetic telemetry.
#[derive(Debug, Clone)]
struct Tick {
    sent: u64,
    delivered_pct: u8,
    control: u64,
    partition: bool,
}

fn arb_ticks() -> impl Strategy<Value = Vec<Tick>> {
    proptest::collection::vec(
        (
            0u64..40,
            // Bias toward the delivery-floor boundary (trigger 0.75,
            // clear 0.90) so runs oscillate across the hysteresis band.
            prop_oneof![70u8..80, 85u8..95, 0u8..101],
            0u64..200,
            any::<bool>(),
        )
            .prop_map(|(sent, delivered_pct, control, partition)| Tick {
                sent,
                delivered_pct,
                control,
                partition,
            }),
        1..120,
    )
}

proptest! {
    #[test]
    fn no_flapping_under_arbitrary_telemetry(ticks in arb_ticks(), commit in any::<bool>()) {
        let cooldown = SimDuration::from_secs(20);
        let epoch = SimDuration::from_secs(5);
        let mut policy = Policy::new(Stack::Olsr, Policy::default_rules(), cooldown, 4);
        let mut now = SimTime::ZERO;
        let mut last_switch: Option<SimTime> = None;
        for tick in &ticks {
            let delivered = tick.sent * u64::from(tick.delivered_pct) / 100;
            let w = window(tick.sent, delivered, tick.control, u64::from(tick.partition));
            let before = policy.current();
            if let Decision::Switch { from, to, .. } = policy.decide(now, &w) {
                prop_assert_eq!(from, before, "switch starts from the believed stack");
                prop_assert_ne!(to, before, "never switch to the current stack");
                prop_assert_eq!(policy.penalty(to), 0, "never switch into the penalty box");
                if let Some(prev) = last_switch {
                    prop_assert!(
                        now >= prev + cooldown,
                        "two switches inside one cooldown window: {:?} then {:?}",
                        prev,
                        now
                    );
                }
                last_switch = Some(now);
                // Whatever the fleet answers, the cooldown must open.
                let verdict = if commit { TxnVerdict::Committed } else { TxnVerdict::Reverted };
                policy.on_verdict(now, to, verdict);
            }
            now += epoch;
        }
    }

    #[test]
    fn boundary_oscillation_switches_at_most_once(reps in 1usize..60) {
        // Delivery alternates one packet around the 0.75 trigger: 14/20
        // (0.70, breach) and 16/20 (0.80, inside the dead band — neither
        // breach nor clear). A threshold-only policy would fire on every
        // bad window; hysteresis + goal satisfaction allow exactly one
        // switch, ever.
        let mut policy = Policy::new(
            Stack::Olsr,
            Policy::default_rules(),
            SimDuration::from_secs(20),
            4,
        );
        let mut now = SimTime::ZERO;
        let mut switches = 0;
        for i in 0..reps * 2 {
            let delivered = if i % 2 == 0 { 14 } else { 16 };
            if let Decision::Switch { to, .. } = policy.decide(now, &window(20, delivered, 0, 0)) {
                switches += 1;
                policy.on_verdict(now, to, TxnVerdict::Committed);
            }
            now += SimDuration::from_secs(5);
        }
        prop_assert!(switches <= 1, "flapped {switches} times");
        if switches == 1 {
            prop_assert!(policy.current().is_reactive());
        }
    }
}
