//! End-to-end closed loop: a mid-run partition trips the
//! `partition-fallback` rule, the engine drives exactly one OLSR → DYMO
//! fleet transaction, the health gate does *not* revert it (the baseline
//! is measured under the same partition, so the provisional window shows
//! no regression), and after the heal the reactive stack re-discovers the
//! route on demand.

use adapt::{install_fleet, AdaptConfig, AdaptiveEngine, Stack};
use manetkit::TxnVerdict;
use netsim::fault::FaultPlan;
use netsim::{NodeId, SimDuration, SimTime, Topology, World};

fn secs(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(n)
}

fn run_world(
    seed: u64,
) -> (
    netsim::WorldStats,
    Vec<adapt::SwitchEvent>,
    Vec<Vec<String>>,
) {
    // 5-node line; the partition cuts {0,1,2} | {3,4} over virtual
    // 62 s → 92 s, wrecking the 0 → 4 flow while it lasts.
    let plan = FaultPlan::builder(0)
        .partition(
            secs(62),
            secs(92),
            "cut",
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4)],
            ],
        )
        .build();
    let mut world = World::builder()
        .topology(Topology::line(5))
        .seed(seed)
        .fault_plan(plan)
        .build();
    let fleet = install_fleet(&mut world, Stack::Olsr);

    // Let OLSR converge end to end, then start the loop and the traffic.
    world.run_until(secs(40));
    let mut engine = AdaptiveEngine::new(&world, fleet, AdaptConfig::default());

    let far = world.addr(NodeId(4));
    let mut t = secs(40) + SimDuration::from_millis(125);
    while t < secs(200) {
        world.send_datagram_at(t, NodeId(0), far, vec![0u8; 64]);
        t += SimDuration::from_millis(250);
    }

    engine.run_until(&mut world, secs(200));
    let stacks = engine.fleet().stacks();
    (world.stats(), engine.log().to_vec(), stacks)
}

#[test]
fn partition_triggers_exactly_one_unreverted_olsr_to_dymo_switch() {
    let (stats, log, stacks) = run_world(77);

    assert_eq!(log.len(), 1, "exactly one switch: {log:?}");
    let ev = &log[0];
    assert_eq!(ev.rule, "partition-fallback");
    assert_eq!(ev.from, Stack::Olsr);
    assert_eq!(ev.to, Stack::Dymo);
    assert_eq!(ev.verdict, TxnVerdict::Committed, "{ev:?}");
    assert!(
        ev.at >= secs(62) && ev.at <= secs(70),
        "fired on the first window containing the partition: {:?}",
        ev.at
    );

    // The health gate measured its baseline under the same partition, so
    // the provisional window showed no regression and nothing reverted.
    assert_eq!(stats.agent_counter("adapt.reverts"), 0);
    assert_eq!(stats.agent_counter("adapt.switches"), 1);
    assert_eq!(stats.agent_counter("adapt.committed"), 1);
    assert_eq!(stats.agent_counter("txn.reverted"), 0);
    assert_eq!(stats.agent_counter("txn.prepared"), 5);
    assert_eq!(stats.agent_counter("txn.committed"), 5);

    // Every node ended on the DYMO composition.
    for stack in &stacks {
        assert_eq!(
            *stack,
            vec!["neighbour-detection".to_string(), "dymo".to_string()]
        );
    }

    // The overall run still delivered: OLSR before the cut, DYMO's
    // on-demand discovery after the heal.
    assert!(
        stats.delivery_ratio() > 0.6,
        "delivery across the whole run: {:.3}",
        stats.delivery_ratio()
    );
}

#[test]
fn closed_loop_run_is_deterministic() {
    let a = run_world(77);
    let b = run_world(77);
    assert_eq!(a.1, b.1, "same switch log");
    assert_eq!(a.2, b.2, "same final stacks");
    assert!(
        a.0.first_difference(&b.0).is_none(),
        "stats diverge at {:?}",
        a.0.first_difference(&b.0)
    );
}
