//! Closed-loop adaptive reconfiguration for MANETKit fleets.
//!
//! MANETKit's core claim is that ad-hoc routing stacks can be dynamically
//! reconfigured in response to changing network conditions; this crate
//! closes that loop (after Stoicescu et al.'s adaptive fault-tolerance
//! engine): instead of an experiment driver scripting each switch, a
//! policy engine *monitors* windowed [`WorldStats`](netsim::WorldStats)
//! telemetry, *decides* against a declarative rule set, and *acts* by
//! driving health-gated fleet transactions.
//!
//! The three layers, one per module:
//!
//! * [`stacks`] — the OLSR / DYMO / AODV compositions and their pairwise
//!   atomic switch recipes.
//! * [`policy`] — the decide stage: threshold rules with hysteresis
//!   bands, a cooldown clock, and a penalty box fed by health-gate
//!   reverts. Pure state machine, unit-testable with synthetic telemetry.
//! * [`engine`] — the monitor/act stages: a [`StatsWindow`](netsim::StatsWindow)
//!   cursor sampled every epoch, switches enacted through
//!   [`FleetCoordinator::execute`](manetkit::FleetCoordinator::execute)
//!   with [`Strategy::TwoPhase`](manetkit::Strategy) and the
//!   [`HealthGate`](manetkit::HealthGate) safety net, plus `adapt.*`
//!   counters so campaign fingerprints capture the loop's behaviour.
//!
//! ```
//! use adapt::{install_fleet, AdaptConfig, AdaptiveEngine, Stack};
//! use netsim::{SimDuration, SimTime, Topology, World};
//!
//! let mut world = World::builder().topology(Topology::line(3)).seed(1).build();
//! let fleet = install_fleet(&mut world, Stack::Olsr);
//! let mut engine = AdaptiveEngine::new(&world, fleet, AdaptConfig::default());
//! engine.run_until(&mut world, SimTime::ZERO + SimDuration::from_secs(30));
//! assert_eq!(engine.current(), Stack::Olsr, "an idle world never switches");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod policy;
pub mod stacks;

pub use engine::{install_fleet, AdaptConfig, AdaptiveEngine, SwitchEvent};
pub use policy::{Decision, HoldReason, Metric, Policy, Rule, Sense, Target};
pub use stacks::{Stack, STACKS};
