//! The monitor→act halves of the adaptive loop: advance the world in
//! fixed epochs, sample a windowed [`netsim::WorldStats`] delta through a
//! [`StatsWindow`] cursor, ask the [`Policy`] for a decision, and enact
//! switches as health-gated fleet transactions through the unified
//! [`FleetCoordinator::execute`] entry point.
//!
//! Every tick and switch attempt is also recorded as `adapt.*` node
//! counters (on the fleet's first node), so adaptive campaign cells carry
//! the loop's behaviour inside their deterministic stats fingerprints.

use manetkit::{FleetCoordinator, HealthGate, ReconfigRequest, Strategy, TxnOptions, TxnVerdict};
use netsim::{NodeId, SimDuration, SimTime, StatsWindow, World};

use crate::policy::{Decision, Policy};
use crate::stacks::Stack;

/// Tuning for the adaptive loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptConfig {
    /// Stack the fleet boots with.
    pub start: Stack,
    /// Telemetry window / decision tick length.
    pub epoch: SimDuration,
    /// Minimum virtual time between switch attempts.
    pub cooldown: SimDuration,
    /// Decision ticks a reverted target spends in the penalty box.
    pub penalty_ticks: u32,
    /// Transaction options for enacted switches; the default carries a
    /// [`HealthGate`] so a bad switch reverts itself.
    pub txn: TxnOptions,
}

impl Default for AdaptConfig {
    /// 5-second epochs, 20-second cooldown, 6-tick penalty box, and a
    /// health gate watching a 5-second provisional window for a 0.3
    /// delivery drop.
    fn default() -> Self {
        AdaptConfig {
            start: Stack::Olsr,
            epoch: SimDuration::from_secs(5),
            cooldown: SimDuration::from_secs(20),
            penalty_ticks: 6,
            txn: TxnOptions {
                health: Some(HealthGate::over_window(SimDuration::from_secs(5)).max_drop(0.3)),
                ..TxnOptions::default()
            },
        }
    }
}

/// One enacted (attempted) switch, for the engine's audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Virtual time the decision was made.
    pub at: SimTime,
    /// Rule that fired.
    pub rule: &'static str,
    /// Stack before the attempt.
    pub from: Stack,
    /// Target stack.
    pub to: Stack,
    /// How the fleet transaction ended.
    pub verdict: TxnVerdict,
}

/// The closed-loop engine: owns the fleet coordinator, the policy state
/// and the telemetry cursor.
pub struct AdaptiveEngine {
    fleet: FleetCoordinator,
    policy: Policy,
    config: AdaptConfig,
    window: StatsWindow,
    counter_node: NodeId,
    log: Vec<SwitchEvent>,
}

/// Installs a fresh `start`-stack node on every node of the world and
/// returns the fleet coordinator over their handles — the standard way to
/// populate a world the adaptive engine will manage.
pub fn install_fleet(world: &mut World, start: Stack) -> FleetCoordinator {
    let ids: Vec<NodeId> = world.node_ids().collect();
    let mut fleet = FleetCoordinator::default();
    for id in ids {
        let (node, handle) = start.node();
        fleet.add_node(id, handle);
        world.install_agent(id, Box::new(node));
    }
    fleet
}

impl AdaptiveEngine {
    /// An engine over an already-populated world and its fleet, using the
    /// shipped default rules.
    #[must_use]
    pub fn new(world: &World, fleet: FleetCoordinator, config: AdaptConfig) -> Self {
        let policy = Policy::new(
            config.start,
            Policy::default_rules(),
            config.cooldown,
            config.penalty_ticks,
        );
        Self::with_policy(world, fleet, config, policy)
    }

    /// An engine with a custom policy (rules, thresholds, start stack).
    #[must_use]
    pub fn with_policy(
        world: &World,
        fleet: FleetCoordinator,
        config: AdaptConfig,
        policy: Policy,
    ) -> Self {
        let counter_node = world.node_ids().next().unwrap_or(NodeId(0));
        AdaptiveEngine {
            fleet,
            policy,
            config,
            window: world.stats_window(),
            counter_node,
            log: Vec::new(),
        }
    }

    /// The switches attempted so far, in order.
    #[must_use]
    pub fn log(&self) -> &[SwitchEvent] {
        &self.log
    }

    /// The stack the policy believes the fleet runs.
    #[must_use]
    pub fn current(&self) -> Stack {
        self.policy.current()
    }

    /// The coordinator, for post-run stack verification.
    #[must_use]
    pub fn fleet(&self) -> &FleetCoordinator {
        &self.fleet
    }

    fn bump(&self, world: &mut World, name: &'static str) {
        world.os_mut(self.counter_node).bump(name);
    }

    /// One decision tick over the telemetry accumulated since the last
    /// one. Enacting a switch advances virtual time (two-phase prepare
    /// polling plus the health gate's pre- and provisional windows).
    pub fn tick(&mut self, world: &mut World) {
        let stats = self.window.advance(world);
        self.bump(world, "adapt.ticks");
        match self.policy.decide(world.now(), &stats) {
            Decision::Hold(_) => {}
            Decision::Switch { rule, from, to } => {
                let at = world.now();
                let opts = self.config.txn.clone();
                let report = self.fleet.execute(
                    world,
                    ReconfigRequest::new()
                        .recipe(|| from.recipe_to(to))
                        .strategy(Strategy::TwoPhase(opts)),
                );
                self.bump(world, "adapt.switches");
                self.bump(
                    world,
                    match report.verdict {
                        TxnVerdict::Committed => "adapt.committed",
                        TxnVerdict::Aborted => "adapt.aborts",
                        TxnVerdict::Reverted => "adapt.reverts",
                        _ => "adapt.other",
                    },
                );
                if report.verdict == TxnVerdict::Committed {
                    // Nodes that missed the committed switch (down at the
                    // start, or crashed mid-transaction) are reconciled
                    // best-effort: the recipe enqueues on their handles and
                    // applies at their first post-reboot quiescent point —
                    // after their own doomed-transaction rollback.
                    for node in report.skipped.iter().chain(&report.unresolved) {
                        if let Some(handle) = self.fleet.handle_of(*node) {
                            for op in from.recipe_to(to) {
                                handle.apply(op);
                            }
                            self.bump(world, "adapt.repairs");
                        }
                    }
                }
                self.policy.on_verdict(world.now(), to, report.verdict);
                self.log.push(SwitchEvent {
                    at,
                    rule,
                    from,
                    to,
                    verdict: report.verdict,
                });
                // The transaction consumed telemetry (health windows ran
                // under it); restart the cursor so the next decision sees
                // only post-switch behaviour.
                self.window.skip(world);
            }
        }
    }

    /// Runs the closed loop until (at least) `until`: repeatedly advance
    /// one epoch and tick. A switch enacted near the end may overshoot
    /// `until` by its transaction windows; the overshoot is deterministic.
    pub fn run_until(&mut self, world: &mut World, until: SimTime) {
        while world.now() < until {
            let next = (world.now() + self.config.epoch).min(until);
            world.run_until(next);
            self.tick(world);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Topology;

    fn secs(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(n)
    }

    #[test]
    fn healthy_world_never_switches() {
        let mut world = World::builder().topology(Topology::line(3)).seed(5).build();
        let fleet = install_fleet(&mut world, Stack::Olsr);
        let mut engine = AdaptiveEngine::new(&world, fleet, AdaptConfig::default());

        let dst = world.addr(NodeId(2));
        let mut t = secs(10);
        while t < secs(60) {
            world.send_datagram_at(t, NodeId(0), dst, vec![0u8; 64]);
            t += SimDuration::from_millis(500);
        }
        world.run_until(secs(10));
        engine.run_until(&mut world, secs(60));

        assert!(engine.log().is_empty(), "no switch: {:?}", engine.log());
        assert_eq!(engine.current(), Stack::Olsr);
        assert!(engine.fleet().all_run(&["mpr", "olsr"]));
        let stats = world.stats();
        assert!(stats.agent_counter("adapt.ticks") >= 10);
        assert_eq!(stats.agent_counter("adapt.switches"), 0);
    }

    #[test]
    fn engine_run_is_deterministic() {
        let run = || {
            let mut world = World::builder().topology(Topology::line(4)).seed(9).build();
            let fleet = install_fleet(&mut world, Stack::Olsr);
            let mut engine = AdaptiveEngine::new(&world, fleet, AdaptConfig::default());
            let dst = world.addr(NodeId(3));
            let mut t = secs(10);
            while t < secs(90) {
                world.send_datagram_at(t, NodeId(0), dst, vec![0u8; 64]);
                t += SimDuration::from_millis(250);
            }
            world.run_until(secs(10));
            engine.run_until(&mut world, secs(90));
            (world.stats().canonical(), engine.log().to_vec())
        };
        let (a_stats, a_log) = run();
        let (b_stats, b_log) = run();
        assert_eq!(a_log, b_log);
        assert!(
            a_stats.first_difference(&b_stats).is_none(),
            "stats diverge: {:?}",
            a_stats.first_difference(&b_stats)
        );
    }
}
