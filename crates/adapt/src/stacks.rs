//! The three MANETKit routing stacks as switch targets, with pairwise
//! atomic switch recipes.
//!
//! A *stack* is the composition a node runs between switches: the paper's
//! OLSR (proactive: MPR selection + link-state flooding), DYMO and AODV
//! (reactive: on-demand route discovery over the shared Neighbour
//! Detection CF). [`Stack::recipe_to`] produces the operation batch that
//! takes a node from one stack to another in a single quiescent-point
//! reconfiguration — the unit the policy engine hands to
//! [`FleetCoordinator::execute`](manetkit::FleetCoordinator::execute) as a
//! fleet-wide transaction.

use std::fmt;

use manetkit::neighbour::{hello_registration, neighbour_detection_cf};
use manetkit::{ManetNode, NodeHandle, ReconfigOp};

/// A complete routing composition the fleet can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stack {
    /// Proactive: MPR selection + OLSR link-state routing.
    Olsr,
    /// Reactive: DYMO on-demand routing over Neighbour Detection.
    Dymo,
    /// Reactive: AODV on-demand routing over Neighbour Detection.
    Aodv,
}

/// Number of known stacks (sizes the policy's penalty table).
pub const STACKS: usize = 3;

impl Stack {
    /// Every known stack, in penalty-table order.
    pub const ALL: [Stack; STACKS] = [Stack::Olsr, Stack::Dymo, Stack::Aodv];

    /// Stable short name (used in counters, logs and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stack::Olsr => "olsr",
            Stack::Dymo => "dymo",
            Stack::Aodv => "aodv",
        }
    }

    /// Index into [`Stack::ALL`]-ordered tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stack::Olsr => 0,
            Stack::Dymo => 1,
            Stack::Aodv => 2,
        }
    }

    /// Whether the stack discovers routes on demand (DYMO, AODV) rather
    /// than proactively (OLSR).
    #[must_use]
    pub fn is_reactive(self) -> bool {
        !matches!(self, Stack::Olsr)
    }

    /// The protocol names a node running this stack reports, in
    /// deployment order — for post-switch verification against
    /// [`FleetCoordinator::stacks`](manetkit::FleetCoordinator::stacks).
    #[must_use]
    pub fn protocols(self) -> Vec<String> {
        match self {
            Stack::Olsr => vec!["mpr".to_string(), "olsr".to_string()],
            Stack::Dymo => vec!["neighbour-detection".to_string(), "dymo".to_string()],
            Stack::Aodv => vec!["neighbour-detection".to_string(), "aodv".to_string()],
        }
    }

    /// Builds a ready-to-install node running this stack, plus its control
    /// handle.
    #[must_use]
    pub fn node(self) -> (ManetNode, NodeHandle) {
        match self {
            Stack::Olsr => manetkit_olsr::node(Default::default()),
            Stack::Dymo => manetkit_dymo::node(Default::default()),
            Stack::Aodv => manetkit_aodv::node(Default::default()),
        }
    }

    /// The atomic switch recipe from this stack to `target`: remove the
    /// source-only protocols, register the target's message types (message
    /// registration is idempotent, so re-registering shared types is
    /// safe), and add the target-only protocols. Switching between the two
    /// reactive stacks keeps the shared Neighbour Detection CF — and its
    /// neighbour state — in place.
    ///
    /// Switching a stack to itself yields an empty batch.
    #[must_use]
    pub fn recipe_to(self, target: Stack) -> Vec<ReconfigOp> {
        if self == target {
            return Vec::new();
        }
        let mut ops = Vec::new();
        // Tear down: routing protocol first, then its substrate (unless
        // the target reuses it).
        match self {
            Stack::Olsr => {
                ops.push(ReconfigOp::RemoveProtocol {
                    name: "olsr".into(),
                });
                ops.push(ReconfigOp::RemoveProtocol { name: "mpr".into() });
            }
            Stack::Dymo => {
                ops.push(ReconfigOp::RemoveProtocol {
                    name: "dymo".into(),
                });
                if !target.is_reactive() {
                    ops.push(ReconfigOp::RemoveProtocol {
                        name: "neighbour-detection".into(),
                    });
                }
            }
            Stack::Aodv => {
                ops.push(ReconfigOp::RemoveProtocol {
                    name: "aodv".into(),
                });
                if !target.is_reactive() {
                    ops.push(ReconfigOp::RemoveProtocol {
                        name: "neighbour-detection".into(),
                    });
                }
            }
        }
        // Bring up the target.
        let keeps_neighbour_detection = self.is_reactive() && target.is_reactive();
        match target {
            Stack::Olsr => {
                ops.push(ReconfigOp::MutateSystem {
                    op: Box::new(manetkit_olsr::register_messages),
                });
                ops.push(ReconfigOp::AddProtocol(manetkit_olsr::mpr_cf(
                    Default::default(),
                )));
                ops.push(ReconfigOp::AddProtocol(manetkit_olsr::olsr_cf(
                    Default::default(),
                )));
            }
            Stack::Dymo => {
                ops.push(ReconfigOp::MutateSystem {
                    op: Box::new(|sys| {
                        manetkit_dymo::register_messages(sys);
                        sys.register_message(hello_registration());
                    }),
                });
                if !keeps_neighbour_detection {
                    ops.push(ReconfigOp::AddProtocol(neighbour_detection_cf(
                        Default::default(),
                    )));
                }
                ops.push(ReconfigOp::AddProtocol(manetkit_dymo::dymo_cf(
                    Default::default(),
                )));
            }
            Stack::Aodv => {
                ops.push(ReconfigOp::MutateSystem {
                    op: Box::new(|sys| {
                        manetkit_aodv::register_messages(sys);
                        sys.register_message(hello_registration());
                    }),
                });
                if !keeps_neighbour_detection {
                    ops.push(ReconfigOp::AddProtocol(neighbour_detection_cf(
                        Default::default(),
                    )));
                }
                ops.push(ReconfigOp::AddProtocol(manetkit_aodv::aodv_cf(
                    Default::default(),
                )));
            }
        }
        ops
    }
}

impl fmt::Display for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_switch_is_empty_and_pairs_are_nonempty() {
        for from in Stack::ALL {
            for to in Stack::ALL {
                let ops = from.recipe_to(to);
                if from == to {
                    assert!(ops.is_empty());
                } else {
                    assert!(ops.len() >= 3, "{from}->{to} has teardown+bringup");
                }
            }
        }
    }

    #[test]
    fn reactive_switch_keeps_neighbour_detection() {
        let ops = Stack::Dymo.recipe_to(Stack::Aodv);
        for op in &ops {
            if let ReconfigOp::RemoveProtocol { name } = op {
                assert_ne!(name, "neighbour-detection");
            }
        }
    }

    #[test]
    fn indices_match_all_order() {
        for (i, s) in Stack::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
