//! The *decide* stage of the monitor→decide→act loop: a declarative rule
//! set over windowed telemetry, with hysteresis bands, a cooldown, and a
//! penalty box fed by reverted switches.
//!
//! Flapping is prevented by three independent mechanisms:
//!
//! * **hysteresis bands** — a rule *arms* when its metric crosses the
//!   `trigger` threshold and only *disarms* once the metric crosses the
//!   separate `clear` threshold, so noise inside the dead band between
//!   them cannot re-fire the rule;
//! * **cooldown** — after any attempted switch (whatever its verdict) the
//!   policy holds for a fixed period, bounding the switch rate to at most
//!   one per cooldown window;
//! * **goal-directed targets** — a rule names a *goal*
//!   ([`Target::Reactive`] / [`Target::Proactive`]) rather than a raw
//!   stack where possible; a goal the current stack already satisfies
//!   resolves to no switch at all, so a persistently-bad metric cannot
//!   chain e.g. DYMO→AODV after an OLSR→DYMO switch already answered it.
//!
//! The safety-net feedback: a switch the
//! [`HealthGate`](manetkit::HealthGate) *reverted* puts the target stack
//! in the penalty box for a number of decision ticks, steering subsequent
//! resolutions to an alternative (DYMO's fallback is AODV) or holding.

use std::fmt;

use manetkit::TxnVerdict;
use netsim::{SimDuration, SimTime, WorldStats};

use crate::stacks::{Stack, STACKS};

/// A telemetry axis a rule can watch, sampled from one windowed
/// [`WorldStats`] delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Metric {
    /// `data_delivered / data_sent` over the window (1.0 when idle).
    DeliveryRatio,
    /// Control frames per data packet sent over the window.
    ControlOverhead,
    /// Dropped data packets (TTL + link + buffer + crash) per data packet
    /// sent over the window.
    DropRate,
    /// Partition starts observed in the window.
    PartitionEvents,
    /// Faults injected in the window (crashes, battery, partitions …).
    FaultEvents,
    /// Fraction of the window's virtual time the radio channel spent
    /// serializing frames (`phy_airtime_us / sim_elapsed_us`). Zero under
    /// the ideal channel model, which reports no airtime.
    ChannelUtilization,
}

impl Metric {
    /// Samples the metric from a windowed stats delta.
    #[must_use]
    pub fn sample(self, window: &WorldStats) -> f64 {
        let sent = window.data_sent.max(1) as f64;
        match self {
            Metric::DeliveryRatio => window.delivery_ratio(),
            Metric::ControlOverhead => window.control_frames as f64 / sent,
            Metric::DropRate => {
                (window.data_dropped_ttl
                    + window.data_dropped_link
                    + window.data_dropped_buffer
                    + window.data_dropped_crash) as f64
                    / sent
            }
            Metric::PartitionEvents => window.partitions_started as f64,
            Metric::FaultEvents => window.faults_injected as f64,
            Metric::ChannelUtilization => window.phy_utilization(),
        }
    }
}

/// Which side of the trigger threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// The rule arms when the metric falls below `trigger` and disarms
    /// once it rises to `clear` or above (`clear >= trigger`).
    Below,
    /// The rule arms when the metric rises above `trigger` and disarms
    /// once it falls to `clear` or below (`clear <= trigger`).
    Above,
}

/// What an armed rule asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Target {
    /// A specific stack.
    Stack(Stack),
    /// Any reactive stack (resolution order: DYMO, then AODV if DYMO is
    /// in the penalty box). Already satisfied when the current stack is
    /// reactive.
    Reactive,
    /// The proactive stack (OLSR). Already satisfied when the current
    /// stack is proactive.
    Proactive,
}

/// One declarative policy rule: *when `metric` goes `sense` of `trigger`
/// (and stays past `clear`), steer the fleet toward `target`*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// Stable rule name (appears in switch logs and counters).
    pub name: &'static str,
    /// Telemetry axis to watch.
    pub metric: Metric,
    /// Unhealthy side of the trigger threshold.
    pub sense: Sense,
    /// Arming threshold.
    pub trigger: f64,
    /// Disarming threshold; the band between `trigger` and `clear` is the
    /// hysteresis dead band.
    pub clear: f64,
    /// Where to steer when armed.
    pub target: Target,
    /// Minimum `data_sent` in the window for the rule to be evaluated at
    /// all — ratio metrics over near-empty windows are noise.
    pub min_sent: u64,
}

/// What the policy decided for one telemetry window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No switch this window.
    Hold(HoldReason),
    /// Drive a fleet switch.
    Switch {
        /// The rule that fired.
        rule: &'static str,
        /// Current stack.
        from: Stack,
        /// Resolved target stack.
        to: Stack,
    },
}

/// Why the policy held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HoldReason {
    /// No rule is armed.
    Stable,
    /// An armed rule's goal is already satisfied by the current stack.
    Satisfied,
    /// Every resolution is blocked by the penalty box.
    Penalized,
    /// A switch is wanted but the cooldown window is still open.
    Cooldown,
}

impl fmt::Display for HoldReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HoldReason::Stable => "stable",
            HoldReason::Satisfied => "satisfied",
            HoldReason::Penalized => "penalized",
            HoldReason::Cooldown => "cooldown",
        })
    }
}

/// The policy state machine: rules plus armed bits, cooldown clock,
/// penalty box and the stack it believes the fleet runs.
///
/// Deliberately free of `HashMap`s and wall clocks: every decision is a
/// pure function of the rule set, the windowed stats and the virtual
/// time, so campaign cells that embed a policy stay byte-deterministic.
#[derive(Debug, Clone)]
pub struct Policy {
    rules: Vec<Rule>,
    armed: Vec<bool>,
    current: Stack,
    cooldown: SimDuration,
    cooldown_until: Option<SimTime>,
    /// Remaining penalty ticks per stack, [`Stack::ALL`]-ordered.
    penalties: [u32; STACKS],
    penalty_ticks: u32,
}

impl Policy {
    /// A policy over the given rules, starting from `current`.
    ///
    /// `cooldown` is the minimum virtual time between switch attempts;
    /// `penalty_ticks` is how many decision ticks a reverted target stays
    /// in the penalty box.
    #[must_use]
    pub fn new(
        current: Stack,
        rules: Vec<Rule>,
        cooldown: SimDuration,
        penalty_ticks: u32,
    ) -> Self {
        let armed = vec![false; rules.len()];
        Policy {
            rules,
            armed,
            current,
            cooldown,
            cooldown_until: None,
            penalties: [0; STACKS],
            penalty_ticks,
        }
    }

    /// The shipped rule set:
    ///
    /// 1. `partition-fallback` — any partition start in the window steers
    ///    reactive: on-demand discovery re-finds routes right after a
    ///    heal, while proactive tables go stale for a full refresh cycle.
    /// 2. `delivery-floor` — delivery ratio under 0.75 (clearing at 0.90)
    ///    steers reactive, once the window carries at least 5 packets.
    #[must_use]
    pub fn default_rules() -> Vec<Rule> {
        vec![
            Rule {
                name: "partition-fallback",
                metric: Metric::PartitionEvents,
                sense: Sense::Above,
                trigger: 0.5,
                clear: 0.5,
                target: Target::Reactive,
                min_sent: 0,
            },
            Rule {
                name: "delivery-floor",
                metric: Metric::DeliveryRatio,
                sense: Sense::Below,
                trigger: 0.75,
                clear: 0.90,
                target: Target::Reactive,
                min_sent: 5,
            },
        ]
    }

    /// The stack the policy believes the fleet currently runs.
    #[must_use]
    pub fn current(&self) -> Stack {
        self.current
    }

    /// Remaining penalty ticks for a stack (0: not in the penalty box).
    #[must_use]
    pub fn penalty(&self, stack: Stack) -> u32 {
        self.penalties[stack.index()]
    }

    /// Resolves a rule target to a concrete switch destination, honouring
    /// goal satisfaction and the penalty box. `None`: no switch needed or
    /// possible.
    fn resolve(&self, target: Target) -> Option<Stack> {
        let candidate = match target {
            Target::Stack(s) => (s != self.current).then_some(s),
            Target::Reactive => {
                if self.current.is_reactive() {
                    None
                } else if self.penalties[Stack::Dymo.index()] == 0 {
                    Some(Stack::Dymo)
                } else {
                    Some(Stack::Aodv)
                }
            }
            Target::Proactive => (self.current.is_reactive()).then_some(Stack::Olsr),
        };
        candidate.filter(|s| self.penalties[s.index()] == 0)
    }

    /// One decision tick: updates hysteresis arming from the windowed
    /// stats, decays the penalty box, and returns what to do. The first
    /// armed rule (declaration order) with a resolvable target wins; the
    /// cooldown gate is applied last so a blocked switch re-surfaces on a
    /// later tick while its condition persists.
    pub fn decide(&mut self, now: SimTime, window: &WorldStats) -> Decision {
        for p in &mut self.penalties {
            *p = p.saturating_sub(1);
        }
        let mut any_armed = false;
        let mut any_satisfied = false;
        let mut any_penalized = false;
        let mut wanted: Option<(usize, Stack)> = None;
        for i in 0..self.rules.len() {
            let rule = self.rules[i];
            if window.data_sent < rule.min_sent {
                continue;
            }
            let value = rule.metric.sample(window);
            let breached = match rule.sense {
                Sense::Below => value < rule.trigger,
                Sense::Above => value > rule.trigger,
            };
            let cleared = match rule.sense {
                Sense::Below => value >= rule.clear,
                Sense::Above => value <= rule.clear,
            };
            if breached {
                self.armed[i] = true;
            } else if cleared {
                self.armed[i] = false;
            }
            if !self.armed[i] {
                continue;
            }
            any_armed = true;
            match self.resolve(rule.target) {
                Some(to) => {
                    if wanted.is_none() {
                        wanted = Some((i, to));
                    }
                }
                None => {
                    // Distinguish "goal met" from "everything penalized"
                    // for the hold reason.
                    let satisfied = match rule.target {
                        Target::Stack(s) => s == self.current,
                        Target::Reactive => self.current.is_reactive(),
                        Target::Proactive => !self.current.is_reactive(),
                    };
                    if satisfied {
                        any_satisfied = true;
                    } else {
                        any_penalized = true;
                    }
                }
            }
        }
        let Some((rule_idx, to)) = wanted else {
            return Decision::Hold(if any_satisfied {
                HoldReason::Satisfied
            } else if any_penalized {
                HoldReason::Penalized
            } else {
                debug_assert!(!any_armed || any_satisfied || any_penalized);
                HoldReason::Stable
            });
        };
        if let Some(until) = self.cooldown_until {
            if now < until {
                return Decision::Hold(HoldReason::Cooldown);
            }
        }
        Decision::Switch {
            rule: self.rules[rule_idx].name,
            from: self.current,
            to,
        }
    }

    /// Feeds back the outcome of an attempted switch. Every attempt opens
    /// the cooldown window; a committed (or best-effort enqueued) switch
    /// updates the believed stack; a health-gate revert leaves the fleet
    /// on `from` and puts the target in the penalty box.
    pub fn on_verdict(&mut self, now: SimTime, to: Stack, verdict: TxnVerdict) {
        self.cooldown_until = Some(now + self.cooldown);
        match verdict {
            TxnVerdict::Committed | TxnVerdict::Enqueued => self.current = to,
            TxnVerdict::Reverted => self.penalties[to.index()] = self.penalty_ticks,
            TxnVerdict::Aborted => {}
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(n)
    }

    fn window(sent: u64, delivered: u64) -> WorldStats {
        WorldStats {
            data_sent: sent,
            data_delivered: delivered,
            ..WorldStats::default()
        }
    }

    fn test_policy(cooldown_s: u64) -> Policy {
        Policy::new(
            Stack::Olsr,
            Policy::default_rules(),
            SimDuration::from_secs(cooldown_s),
            3,
        )
    }

    #[test]
    fn healthy_telemetry_holds_stable() {
        let mut p = test_policy(20);
        for t in 0..10 {
            assert_eq!(
                p.decide(secs(t * 5), &window(20, 20)),
                Decision::Hold(HoldReason::Stable)
            );
        }
        assert_eq!(p.current(), Stack::Olsr);
    }

    #[test]
    fn delivery_floor_fires_once_and_is_then_satisfied() {
        let mut p = test_policy(20);
        let d = p.decide(secs(0), &window(20, 10));
        assert_eq!(
            d,
            Decision::Switch {
                rule: "delivery-floor",
                from: Stack::Olsr,
                to: Stack::Dymo,
            }
        );
        p.on_verdict(secs(0), Stack::Dymo, TxnVerdict::Committed);
        // Condition persists, but the reactive goal is now satisfied:
        // no DYMO→AODV chain, however long the badness lasts.
        for t in 1..20 {
            assert_eq!(
                p.decide(secs(t * 5), &window(20, 10)),
                Decision::Hold(HoldReason::Satisfied)
            );
        }
        assert_eq!(p.current(), Stack::Dymo);
    }

    #[test]
    fn channel_utilization_samples_airtime_fraction() {
        let mut w = window(10, 10);
        assert_eq!(Metric::ChannelUtilization.sample(&w), 0.0, "idle window");
        w.phy_airtime_us = 750_000;
        w.sim_elapsed_us = 1_000_000;
        assert!((Metric::ChannelUtilization.sample(&w) - 0.75).abs() < 1e-12);
        // A rule watching the busy channel arms and steers the fleet.
        let rules = vec![Rule {
            name: "congested-to-proactive",
            metric: Metric::ChannelUtilization,
            sense: Sense::Above,
            trigger: 0.6,
            clear: 0.3,
            target: Target::Reactive,
            min_sent: 0,
        }];
        let mut p = Policy::new(Stack::Olsr, rules, SimDuration::from_secs(1), 3);
        assert!(matches!(p.decide(secs(0), &w), Decision::Switch { .. }));
    }

    #[test]
    fn min_sent_gates_out_empty_windows() {
        let mut p = test_policy(20);
        // 2 of 3 delivered is a 0.67 ratio — below trigger — but the
        // window is too thin to act on.
        assert_eq!(
            p.decide(secs(0), &window(3, 2)),
            Decision::Hold(HoldReason::Stable)
        );
    }

    #[test]
    fn hysteresis_dead_band_does_not_rearm() {
        let mut p = Policy::new(
            Stack::Olsr,
            Policy::default_rules(),
            SimDuration::from_secs(0), // isolate the band logic from cooldown
            3,
        );
        // Breach: arms and fires.
        assert!(matches!(
            p.decide(secs(0), &window(20, 10)),
            Decision::Switch { .. }
        ));
        p.on_verdict(secs(0), Stack::Dymo, TxnVerdict::Committed);
        // Dead band (0.80 is between clear 0.90 and trigger 0.75): the
        // rule stays armed but its goal is satisfied.
        assert_eq!(
            p.decide(secs(5), &window(20, 16)),
            Decision::Hold(HoldReason::Satisfied)
        );
        // Above clear: disarms; healthy telemetry now reads stable.
        assert_eq!(
            p.decide(secs(10), &window(20, 19)),
            Decision::Hold(HoldReason::Stable)
        );
    }

    #[test]
    fn cooldown_bounds_switch_rate_under_oscillating_telemetry() {
        // Two opposing rules so naive thresholding would flip every tick.
        let rules = vec![
            Rule {
                name: "to-reactive",
                metric: Metric::DeliveryRatio,
                sense: Sense::Below,
                trigger: 0.75,
                clear: 0.90,
                target: Target::Reactive,
                min_sent: 0,
            },
            Rule {
                name: "to-proactive",
                metric: Metric::ControlOverhead,
                sense: Sense::Above,
                trigger: 3.0,
                clear: 1.0,
                target: Target::Proactive,
                min_sent: 0,
            },
        ];
        let cooldown = SimDuration::from_secs(20);
        let mut p = Policy::new(Stack::Olsr, rules, cooldown, 3);
        let tick = SimDuration::from_secs(5);

        let mut switches: Vec<SimTime> = Vec::new();
        let mut now = SimTime::ZERO;
        for i in 0..40 {
            // Alternate between "bad delivery, low overhead" and "good
            // delivery, pathological overhead" — each side breaches one
            // rule and clears the other.
            let w = if i % 2 == 0 {
                window(20, 10)
            } else {
                let mut w = window(20, 20);
                w.control_frames = 100;
                w
            };
            if let Decision::Switch { to, .. } = p.decide(now, &w) {
                switches.push(now);
                p.on_verdict(now, to, TxnVerdict::Committed);
            }
            now += tick;
        }
        assert!(!switches.is_empty(), "the policy does react");
        for pair in switches.windows(2) {
            assert!(
                pair[1] >= pair[0] + cooldown,
                "two switches inside one cooldown window: {switches:?}"
            );
        }
        // 40 ticks x 5 s = 200 s of telemetry, 20 s cooldown: at most
        // 10 + 1 switches even under permanently oscillating input.
        assert!(switches.len() <= 11, "flapping: {switches:?}");
    }

    #[test]
    fn blocked_switch_resurfaces_after_cooldown_expires() {
        let mut p = test_policy(20);
        // A committed switch at t=0 opens the cooldown...
        assert!(matches!(
            p.decide(secs(0), &window(20, 10)),
            Decision::Switch { .. }
        ));
        p.on_verdict(secs(0), Stack::Dymo, TxnVerdict::Committed);
        // ...then imagine an operator forced the fleet back (simulated by
        // resetting belief): a persisting condition is held during
        // cooldown but fires right after it expires.
        p.current = Stack::Olsr;
        assert_eq!(
            p.decide(secs(10), &window(20, 10)),
            Decision::Hold(HoldReason::Cooldown)
        );
        assert!(matches!(
            p.decide(secs(25), &window(20, 10)),
            Decision::Switch {
                to: Stack::Dymo,
                ..
            }
        ));
    }

    #[test]
    fn reverted_switch_penalizes_target_and_falls_back() {
        let mut p = Policy::new(
            Stack::Olsr,
            Policy::default_rules(),
            SimDuration::from_secs(0),
            100,
        );
        assert!(matches!(
            p.decide(secs(0), &window(20, 10)),
            Decision::Switch {
                to: Stack::Dymo,
                ..
            }
        ));
        p.on_verdict(secs(0), Stack::Dymo, TxnVerdict::Reverted);
        assert_eq!(p.current(), Stack::Olsr, "a revert keeps the old stack");
        assert!(p.penalty(Stack::Dymo) > 0);
        // The reactive goal now resolves to the fallback reactive stack.
        assert!(matches!(
            p.decide(secs(5), &window(20, 10)),
            Decision::Switch {
                to: Stack::Aodv,
                ..
            }
        ));
        p.on_verdict(secs(5), Stack::Aodv, TxnVerdict::Reverted);
        // Both reactive stacks penalized: the policy holds rather than
        // ping-ponging into known-bad compositions.
        assert_eq!(
            p.decide(secs(10), &window(20, 10)),
            Decision::Hold(HoldReason::Penalized)
        );
    }

    #[test]
    fn penalties_decay_over_ticks() {
        let mut p = Policy::new(
            Stack::Olsr,
            Policy::default_rules(),
            SimDuration::from_secs(0),
            2,
        );
        assert!(matches!(
            p.decide(secs(0), &window(20, 10)),
            Decision::Switch { .. }
        ));
        p.on_verdict(secs(0), Stack::Dymo, TxnVerdict::Reverted);
        assert_eq!(p.penalty(Stack::Dymo), 2);
        // Healthy windows tick the penalty down (the rule disarms too).
        let _ = p.decide(secs(5), &window(20, 20));
        let _ = p.decide(secs(10), &window(20, 20));
        assert_eq!(p.penalty(Stack::Dymo), 0);
        // Next breach goes to DYMO again.
        assert!(matches!(
            p.decide(secs(15), &window(20, 10)),
            Decision::Switch {
                to: Stack::Dymo,
                ..
            }
        ));
    }

    #[test]
    fn partition_rule_steers_reactive_regardless_of_traffic() {
        let mut p = test_policy(20);
        let mut w = window(0, 0);
        w.partitions_started = 1;
        w.faults_injected = 1;
        assert_eq!(
            p.decide(secs(0), &w),
            Decision::Switch {
                rule: "partition-fallback",
                from: Stack::Olsr,
                to: Stack::Dymo,
            }
        );
    }
}
