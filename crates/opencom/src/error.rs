//! Errors raised by the component runtime.

use std::fmt;

use crate::component::ComponentId;
use crate::interface::{InterfaceId, ReceptacleId};
use crate::kernel::BindingId;

/// Errors from kernel and component-framework operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComponentError {
    /// The referenced component is not loaded in this kernel.
    NoSuchComponent(ComponentId),
    /// The referenced binding does not exist.
    NoSuchBinding(BindingId),
    /// The target component does not provide the requested interface.
    InterfaceNotProvided {
        /// Component that was queried.
        component: ComponentId,
        /// Interface that was requested.
        interface: InterfaceId,
    },
    /// The source component rejected the bind (unknown receptacle or type
    /// mismatch between the erased interface and the receptacle's type).
    BindRejected {
        /// Component whose receptacle rejected the bind.
        component: ComponentId,
        /// The receptacle involved.
        receptacle: ReceptacleId,
        /// Why it was rejected.
        reason: String,
    },
    /// A component cannot be unloaded while bindings attach to it.
    StillBound(ComponentId),
    /// A named plug-in was not found in a component framework.
    NoSuchPlugin(String),
    /// An integrity rule vetoed a structural change.
    IntegrityViolation {
        /// The rule that fired.
        rule: String,
        /// The rule's explanation.
        reason: String,
    },
    /// A lifecycle transition was invalid (e.g. `Start` before `Init`).
    BadLifecycle {
        /// Component involved.
        component: ComponentId,
        /// Description of the invalid transition.
        detail: String,
    },
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::NoSuchComponent(id) => write!(f, "component {id} not loaded"),
            ComponentError::NoSuchBinding(id) => write!(f, "binding {id} does not exist"),
            ComponentError::InterfaceNotProvided {
                component,
                interface,
            } => write!(f, "component {component} does not provide {interface}"),
            ComponentError::BindRejected {
                component,
                receptacle,
                reason,
            } => write!(
                f,
                "component {component} rejected bind on receptacle {receptacle}: {reason}"
            ),
            ComponentError::StillBound(id) => {
                write!(f, "component {id} still has bindings attached")
            }
            ComponentError::NoSuchPlugin(name) => write!(f, "no plug-in named {name:?}"),
            ComponentError::IntegrityViolation { rule, reason } => {
                write!(f, "integrity rule {rule:?} vetoed the change: {reason}")
            }
            ComponentError::BadLifecycle { component, detail } => {
                write!(f, "invalid lifecycle transition on {component}: {detail}")
            }
        }
    }
}

impl std::error::Error for ComponentError {}
