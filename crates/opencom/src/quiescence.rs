//! Quiescence management for safe runtime reconfiguration.
//!
//! The paper's reconfiguration model (§4.5) relies on protocols being
//! *critical sections*: event processing holds the lock shared, a
//! reconfiguration waits for in-flight processing to drain, blocks new
//! activity, applies its change and releases. [`QuiescenceLock`] packages
//! that pattern (a fair readers-writer lock plus counters for observability).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
struct Counters {
    activities: AtomicU64,
    reconfigs: AtomicU64,
    timeouts: AtomicU64,
    probes: AtomicU64,
}

/// Quiescence was not reached within the deadline passed to
/// [`QuiescenceLock::reconfigure_within`]: in-flight activities did not
/// drain in time, and the reconfiguration was *not* entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuiesceTimeout {
    /// The deadline that elapsed.
    pub waited: std::time::Duration,
}

impl std::fmt::Display for QuiesceTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quiescence not reached within {:?} (activities still in flight)",
            self.waited
        )
    }
}

impl std::error::Error for QuiesceTimeout {}

/// A reconfiguration gate: many concurrent *activities* (event processing),
/// one exclusive *reconfigurer* at a time.
///
/// parking_lot's `RwLock` is used for its writer-favouring fairness: a
/// pending reconfiguration blocks new activities, so quiescence is reached
/// even under a steady event stream.
///
/// ```
/// use opencom::QuiescenceLock;
/// let q = QuiescenceLock::new();
/// {
///     let _a = q.activity();      // event shepherding
///     assert_eq!(q.activities_entered(), 1);
/// }
/// let _r = q.reconfigure();       // exclusive structural change
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuiescenceLock {
    lock: Arc<RwLock<()>>,
    counters: Arc<Counters>,
}

/// Guard held while an activity (event processing) is in flight.
pub struct ActivityGuard<'a>(#[allow(dead_code)] RwLockReadGuard<'a, ()>);

/// Guard held while a reconfiguration is in progress.
pub struct ReconfigGuard<'a>(#[allow(dead_code)] RwLockWriteGuard<'a, ()>);

impl QuiescenceLock {
    /// Creates a fresh lock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters an activity section, blocking while a reconfiguration runs.
    #[must_use]
    pub fn activity(&self) -> ActivityGuard<'_> {
        let g = self.lock.read();
        self.counters.activities.fetch_add(1, Ordering::Relaxed);
        ActivityGuard(g)
    }

    /// Attempts to enter an activity section without blocking.
    #[must_use]
    pub fn try_activity(&self) -> Option<ActivityGuard<'_>> {
        let g = self.lock.try_read()?;
        self.counters.activities.fetch_add(1, Ordering::Relaxed);
        Some(ActivityGuard(g))
    }

    /// Waits for quiescence (all in-flight activities to finish) and enters
    /// an exclusive reconfiguration section.
    #[must_use]
    pub fn reconfigure(&self) -> ReconfigGuard<'_> {
        let g = self.lock.write();
        self.counters.reconfigs.fetch_add(1, Ordering::Relaxed);
        ReconfigGuard(g)
    }

    /// Attempts to enter an exclusive reconfiguration section without
    /// blocking (succeeds only when the lock is already quiescent).
    #[must_use]
    pub fn try_reconfigure(&self) -> Option<ReconfigGuard<'_>> {
        let g = self.lock.try_write()?;
        self.counters.reconfigs.fetch_add(1, Ordering::Relaxed);
        Some(ReconfigGuard(g))
    }

    /// Waits for quiescence, but gives up after `deadline` instead of
    /// blocking forever — the transactional reconfiguration path: a node
    /// that cannot drain its in-flight activities in time reports
    /// [`QuiesceTimeout`] (counted in [`quiesce_timeouts`](Self::quiesce_timeouts))
    /// so the transaction can abort rather than wedge.
    ///
    /// # Errors
    ///
    /// Returns [`QuiesceTimeout`] when activities were still in flight at
    /// the deadline; the lock is untouched and activities keep running.
    pub fn reconfigure_within(
        &self,
        deadline: std::time::Duration,
    ) -> Result<ReconfigGuard<'_>, QuiesceTimeout> {
        if deadline.is_zero() {
            // Zero deadline means "quiescent right now or not at all": a
            // pure non-blocking probe with no wall-clock dependence, which
            // is what deterministic replay (the `mcheck` model checker)
            // needs — a timed wait could succeed or fail depending on host
            // scheduling, a try-acquire cannot.
            return match self.lock.try_write() {
                Some(g) => {
                    self.counters.reconfigs.fetch_add(1, Ordering::Relaxed);
                    Ok(ReconfigGuard(g))
                }
                None => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    Err(QuiesceTimeout { waited: deadline })
                }
            };
        }
        match self.lock.try_write_for(deadline) {
            Some(g) => {
                self.counters.reconfigs.fetch_add(1, Ordering::Relaxed);
                Ok(ReconfigGuard(g))
            }
            None => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                Err(QuiesceTimeout { waited: deadline })
            }
        }
    }

    /// Non-blocking, side-effect-free quiescence check: `true` when no
    /// activity (and no reconfiguration) currently holds the lock. Unlike
    /// [`try_reconfigure`](Self::try_reconfigure) this does not enter a
    /// section or perturb the entry counters — it is an observability
    /// probe, counted separately in [`idle_probes`](Self::idle_probes).
    /// The `mcheck` model checker asserts it at every explored state: the
    /// simulated fleet is single-threaded, so a lock found held at a
    /// choice point means a guard leaked.
    #[must_use]
    pub fn probe_idle(&self) -> bool {
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
        self.lock.try_write().is_some()
    }

    /// Total [`probe_idle`](Self::probe_idle) calls (observability).
    #[must_use]
    pub fn idle_probes(&self) -> u64 {
        self.counters.probes.load(Ordering::Relaxed)
    }

    /// Total activity sections entered (observability).
    #[must_use]
    pub fn activities_entered(&self) -> u64 {
        self.counters.activities.load(Ordering::Relaxed)
    }

    /// Total reconfiguration sections entered (observability).
    #[must_use]
    pub fn reconfigs_entered(&self) -> u64 {
        self.counters.reconfigs.load(Ordering::Relaxed)
    }

    /// Total deadline-bounded acquisitions that timed out (observability).
    #[must_use]
    pub fn quiesce_timeouts(&self) -> u64 {
        self.counters.timeouts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn multiple_activities_coexist() {
        let q = QuiescenceLock::new();
        let a = q.activity();
        let b = q.activity();
        drop((a, b));
        assert_eq!(q.activities_entered(), 2);
    }

    #[test]
    fn reconfigure_excludes_activity() {
        let q = QuiescenceLock::new();
        let r = q.reconfigure();
        assert!(q.try_activity().is_none());
        drop(r);
        assert!(q.try_activity().is_some());
        assert_eq!(q.reconfigs_entered(), 1);
    }

    #[test]
    fn reconfigure_waits_for_inflight_activity() {
        let q = QuiescenceLock::new();
        let q2 = q.clone();
        let reconfigured = Arc::new(AtomicBool::new(false));
        let flag = reconfigured.clone();

        let a = q.activity();
        let handle = std::thread::spawn(move || {
            let _r = q2.reconfigure();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !reconfigured.load(Ordering::SeqCst),
            "reconfiguration must wait for the activity"
        );
        drop(a);
        handle.join().unwrap();
        assert!(reconfigured.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_activity_acquisition_is_reentrant_safe() {
        // An activity section that needs another activity section (event
        // shepherding triggering nested delivery) must be able to acquire
        // one: with no writer pending, `try_activity` always succeeds under
        // an already-held read guard, regardless of the backing RwLock's
        // blocking-read recursion policy.
        let q = QuiescenceLock::new();
        let outer = q.activity();
        let inner = q.try_activity();
        assert!(inner.is_some(), "nested activity must be admitted");
        let deeper = q.try_activity();
        assert!(deeper.is_some(), "arbitrary nesting depth is fine");
        drop((deeper, inner, outer));
        assert_eq!(q.activities_entered(), 3);
        // The lock is fully released afterwards: a reconfiguration gets in.
        let _r = q.reconfigure();
        assert_eq!(q.reconfigs_entered(), 1);
    }

    #[test]
    fn reconfigure_within_times_out_under_activity() {
        let q = QuiescenceLock::new();
        let a = q.activity();
        let err = q
            .reconfigure_within(Duration::from_millis(20))
            .map(|_| ())
            .expect_err("an in-flight activity must defeat the deadline");
        assert_eq!(err.waited, Duration::from_millis(20));
        assert_eq!(q.quiesce_timeouts(), 1);
        assert_eq!(
            q.reconfigs_entered(),
            0,
            "the failed attempt is not entered"
        );
        drop(a);
        // Quiescent again: the bounded acquisition succeeds immediately.
        let g = q
            .reconfigure_within(Duration::from_millis(20))
            .expect("quiescent lock admits the reconfiguration");
        drop(g);
        assert_eq!(q.reconfigs_entered(), 1);
        assert_eq!(q.quiesce_timeouts(), 1);
    }

    #[test]
    fn reconfigure_within_waits_for_activity_to_drain() {
        // The activity finishes *before* the deadline: the bounded
        // acquisition must succeed rather than time out eagerly.
        let q = QuiescenceLock::new();
        let q2 = q.clone();
        let a = q.activity();
        let handle =
            std::thread::spawn(move || q2.reconfigure_within(Duration::from_secs(5)).map(|_| ()));
        std::thread::sleep(Duration::from_millis(30));
        drop(a);
        handle
            .join()
            .unwrap()
            .expect("deadline far away: acquisition succeeds once drained");
        assert_eq!(q.quiesce_timeouts(), 0);
    }

    #[test]
    fn zero_deadline_is_a_deterministic_probe() {
        let q = QuiescenceLock::new();
        // Quiescent: the zero-deadline acquisition succeeds immediately.
        let g = q
            .reconfigure_within(Duration::ZERO)
            .expect("idle lock admits a zero-deadline reconfiguration");
        drop(g);
        assert_eq!(q.reconfigs_entered(), 1);
        // Busy: it fails immediately (no wall-clock wait to get lucky in).
        let a = q.activity();
        let err = q
            .reconfigure_within(Duration::ZERO)
            .map(|_| ())
            .expect_err("held lock defeats the zero-deadline probe");
        assert_eq!(err.waited, Duration::ZERO);
        assert_eq!(q.quiesce_timeouts(), 1);
        drop(a);
    }

    #[test]
    fn probe_idle_observes_without_entering() {
        let q = QuiescenceLock::new();
        assert!(q.probe_idle());
        let a = q.activity();
        assert!(!q.probe_idle());
        drop(a);
        assert!(q.probe_idle());
        assert_eq!(q.idle_probes(), 3);
        assert_eq!(
            q.reconfigs_entered(),
            0,
            "probes never count as reconfiguration entries"
        );
    }

    #[test]
    fn try_reconfigure_mirrors_try_activity() {
        let q = QuiescenceLock::new();
        let a = q.activity();
        assert!(q.try_reconfigure().is_none());
        drop(a);
        assert!(q.try_reconfigure().is_some());
        assert_eq!(q.reconfigs_entered(), 1);
    }

    #[test]
    fn clone_shares_lock_and_counters() {
        let q = QuiescenceLock::new();
        let q2 = q.clone();
        let r = q.reconfigure();
        assert!(
            q2.try_activity().is_none(),
            "clones gate on the same lock, not a copy"
        );
        drop(r);
        let _a = q2.activity();
        assert_eq!(q.activities_entered(), 1);
        assert_eq!(q.reconfigs_entered(), 1);
    }

    #[test]
    fn counters_are_exact_under_thread_churn() {
        let q = QuiescenceLock::new();
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for i in 0..threads {
                let q = q.clone();
                scope.spawn(move || {
                    for n in 0..per_thread {
                        if (i + n) % 5 == 0 {
                            let _r = q.reconfigure();
                        } else {
                            let _a = q.activity();
                        }
                    }
                });
            }
        });
        let total = q.activities_entered() + q.reconfigs_entered();
        assert_eq!(total, (threads * per_thread) as u64);
        assert!(q.reconfigs_entered() > 0 && q.activities_entered() > 0);
        // Everything drained: both section kinds reopen instantly.
        let _a = q.try_activity().expect("lock released after churn");
    }
}
