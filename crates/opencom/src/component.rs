//! The [`Component`] trait and component identity.

use std::fmt;

use crate::interface::{AnyInterface, InterfaceId, ReceptacleId};

/// Identity of a loaded component within one [`Kernel`](crate::Kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u64);

impl ComponentId {
    /// The raw numeric id (stable for the kernel's lifetime).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Builds an id from a raw number. Only meaningful for ids previously
    /// obtained from the same kernel; exposed for test fixtures.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        ComponentId(raw)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Lifecycle transitions the kernel can request of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lifecycle {
    /// Allocate resources; called once after load.
    Init,
    /// Begin active operation.
    Start,
    /// Cease active operation (may be restarted).
    Stop,
    /// Release resources; called once before unload.
    Destroy,
}

/// Lifecycle state a component is in, as tracked by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LifecycleState {
    /// Loaded but not initialised.
    #[default]
    Loaded,
    /// Initialised, not running.
    Ready,
    /// Running.
    Running,
    /// Stopped after running (can restart).
    Stopped,
    /// Destroyed, awaiting unload.
    Destroyed,
}

impl LifecycleState {
    /// The state reached by applying `transition`, or `None` if invalid.
    #[must_use]
    pub fn apply(self, transition: Lifecycle) -> Option<LifecycleState> {
        use Lifecycle as T;
        use LifecycleState as S;
        match (self, transition) {
            (S::Loaded, T::Init) => Some(S::Ready),
            (S::Ready | S::Stopped, T::Start) => Some(S::Running),
            (S::Running, T::Stop) => Some(S::Stopped),
            (S::Loaded | S::Ready | S::Stopped, T::Destroy) => Some(S::Destroyed),
            _ => None,
        }
    }
}

/// A runtime software component.
///
/// Components publish *interfaces* (capabilities they implement) and declare
/// *receptacles* (interfaces they depend on). The kernel connects a
/// receptacle to another component's interface with an explicit binding,
/// which the component accepts through [`bind`](Component::bind) — typically
/// by delegating to an embedded [`Receptacle`](crate::Receptacle).
///
/// All methods take `&self`: components use interior mutability, which is
/// what lets the kernel rewire them while the system runs.
pub trait Component: Send + Sync {
    /// Human-readable component (type) name.
    fn name(&self) -> &str;

    /// Interfaces this component provides.
    fn provided(&self) -> Vec<InterfaceId> {
        Vec::new()
    }

    /// Receptacles this component requires.
    fn required(&self) -> Vec<ReceptacleId> {
        Vec::new()
    }

    /// The interface meta-model: returns a type-erased reference to one of
    /// the [`provided`](Component::provided) interfaces.
    fn query_interface(&self, _id: &InterfaceId) -> Option<AnyInterface> {
        None
    }

    /// Accepts a binding on one of the [`required`](Component::required)
    /// receptacles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the receptacle is unknown or the
    /// interface type does not match.
    fn bind(&self, receptacle: &ReceptacleId, _iface: &AnyInterface) -> Result<(), String> {
        Err(format!("unknown receptacle {receptacle}"))
    }

    /// Clears a binding on a receptacle.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the receptacle is unknown.
    fn unbind(&self, receptacle: &ReceptacleId) -> Result<(), String> {
        Err(format!("unknown receptacle {receptacle}"))
    }

    /// Applies a lifecycle transition. The kernel validates ordering; the
    /// component only performs the work.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the transition's work fails.
    fn lifecycle(&self, _transition: Lifecycle) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_state_machine() {
        use Lifecycle::*;
        use LifecycleState::*;
        assert_eq!(Loaded.apply(Init), Some(Ready));
        assert_eq!(Ready.apply(Start), Some(Running));
        assert_eq!(Running.apply(Stop), Some(Stopped));
        assert_eq!(Stopped.apply(Start), Some(Running));
        assert_eq!(Stopped.apply(Destroy), Some(Destroyed));
        assert_eq!(Loaded.apply(Start), None);
        assert_eq!(Running.apply(Destroy), None, "must stop before destroy");
        assert_eq!(Destroyed.apply(Init), None);
    }

    struct Minimal;
    impl Component for Minimal {
        fn name(&self) -> &str {
            "minimal"
        }
    }

    #[test]
    fn default_trait_methods() {
        let c = Minimal;
        assert!(c.provided().is_empty());
        assert!(c.required().is_empty());
        assert!(c.query_interface(&InterfaceId::of("IAny")).is_none());
        assert!(c.bind(&ReceptacleId::of("r"), &dummy_iface()).is_err());
        assert!(c.unbind(&ReceptacleId::of("r")).is_err());
        assert!(c.lifecycle(Lifecycle::Init).is_ok());
    }

    fn dummy_iface() -> AnyInterface {
        AnyInterface::new(InterfaceId::of("IAny"), std::sync::Arc::new(0u8))
    }
}
