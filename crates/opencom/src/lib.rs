//! A lightweight runtime component model in the spirit of OpenCom.
//!
//! MANETKit (Middleware 2009) is built on OpenCom, a reflective component
//! runtime: software is composed at *runtime* from components that expose
//! **interfaces** and declare **receptacles** (typed dependency slots), wired
//! together by explicit **bindings** managed by a small **kernel**. Two
//! reflective meta-models make composition inspectable and mutable while the
//! system runs:
//!
//! * the **interface meta-model** — what interfaces/receptacles a component
//!   has ([`Component::provided`], [`Component::required`],
//!   [`Component::query_interface`]);
//! * the **architecture meta-model** — the graph of components and bindings
//!   ([`Kernel::architecture`], returning an [`ArchitectureSnapshot`]).
//!
//! **Component frameworks** ([`ComponentFramework`]) are composite components
//! that accept plug-ins and *police* their own structure with integrity
//! rules, so runtime reconfiguration cannot produce an illegal composition.
//! A [`QuiescenceLock`] brings a framework to a safe state before structural
//! change — activity (event shepherding) holds read locks, reconfiguration
//! takes the write lock.
//!
//! This crate is protocol-agnostic; MANETKit's routing machinery lives in the
//! `manetkit` crate on top of it.
//!
//! # Example
//!
//! ```
//! use opencom::{AnyInterface, Component, InterfaceId, Kernel, Receptacle};
//! use std::sync::Arc;
//!
//! // An interface is any trait object; components exchange them type-erased.
//! trait Greeter: Send + Sync {
//!     fn greet(&self) -> String;
//! }
//!
//! struct English;
//! impl Greeter for English {
//!     fn greet(&self) -> String { "hello".into() }
//! }
//!
//! struct GreeterComponent(Arc<dyn Greeter>);
//! impl Component for GreeterComponent {
//!     fn name(&self) -> &str { "greeter" }
//!     fn provided(&self) -> Vec<InterfaceId> { vec![InterfaceId::of("IGreeter")] }
//!     fn query_interface(&self, id: &InterfaceId) -> Option<AnyInterface> {
//!         (id.as_str() == "IGreeter")
//!             .then(|| AnyInterface::new(InterfaceId::of("IGreeter"), self.0.clone()))
//!     }
//! }
//!
//! let kernel = Kernel::new();
//! let id = kernel.load(Arc::new(GreeterComponent(Arc::new(English)))).unwrap();
//! let iface = kernel.query_interface(id, &InterfaceId::of("IGreeter")).unwrap();
//! let greeter: Arc<dyn Greeter> = iface.downcast().unwrap();
//! assert_eq!(greeter.greet(), "hello");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arch;
mod cf;
mod component;
mod error;
mod interface;
mod kernel;
mod quiescence;

pub use arch::{ArchitectureSnapshot, BindingInfo, ComponentInfo};
pub use cf::{ComponentFramework, IntegrityRule, PendingChange};
pub use component::{Component, ComponentId, Lifecycle, LifecycleState};
pub use error::ComponentError;
pub use interface::{AnyInterface, InterfaceId, Receptacle, ReceptacleId};
pub use kernel::{BindingId, Kernel};
pub use quiescence::{ActivityGuard, QuiesceTimeout, QuiescenceLock, ReconfigGuard};
