//! Component frameworks: composite components that police their own
//! structure.
//!
//! A [`ComponentFramework`] (CF) owns an inner [`Kernel`] of plug-in
//! components. Every structural mutation — insert, remove, bind, unbind,
//! replace — is vetted by registered [`IntegrityRule`]s against the current
//! [`ArchitectureSnapshot`] and the proposed [`PendingChange`], and executes
//! under the CF's [`QuiescenceLock`] so in-flight activity drains first.
//!
//! CFs are themselves [`Component`]s (they can *expose* interfaces), so they
//! nest: MANETKit is a CF containing protocol CFs containing ManetControl
//! CFs.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::arch::ArchitectureSnapshot;
use crate::component::{Component, ComponentId, Lifecycle};
use crate::error::ComponentError;
use crate::interface::{AnyInterface, InterfaceId, ReceptacleId};
use crate::kernel::{BindingId, Kernel};
use crate::quiescence::QuiescenceLock;

/// A structural change a CF is about to apply, submitted to integrity rules
/// for veto.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PendingChange {
    /// A component with this name is about to be inserted.
    Load {
        /// Component (type) name.
        name: String,
    },
    /// This component is about to be removed.
    Unload {
        /// The component being removed.
        id: ComponentId,
    },
    /// A binding is about to be created.
    Bind {
        /// Dependent component.
        from: ComponentId,
        /// Receptacle on the dependent.
        receptacle: ReceptacleId,
        /// Providing component.
        to: ComponentId,
        /// Interface on the provider.
        interface: InterfaceId,
    },
    /// A binding is about to be removed.
    Unbind {
        /// The binding being removed.
        binding: BindingId,
    },
}

type RuleFn = dyn Fn(&ArchitectureSnapshot, &PendingChange) -> Result<(), String> + Send + Sync;

/// A named predicate over (current architecture, pending change) that can
/// veto the change.
pub struct IntegrityRule {
    name: String,
    check: Box<RuleFn>,
}

impl IntegrityRule {
    /// Creates a rule from a closure; return `Err(reason)` to veto.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&ArchitectureSnapshot, &PendingChange) -> Result<(), String>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        IntegrityRule {
            name: name.into(),
            check: Box::new(check),
        }
    }

    /// Rule: at most one component named `component_name` may be loaded.
    #[must_use]
    pub fn at_most_one_named(component_name: &'static str) -> Self {
        IntegrityRule::new(
            format!("at-most-one:{component_name}"),
            move |arch, change| match change {
                PendingChange::Load { name }
                    if name == component_name && arch.count_named(component_name) >= 1 =>
                {
                    Err(format!("a {component_name:?} component is already present"))
                }
                _ => Ok(()),
            },
        )
    }

    /// Rule: a component named `component_name` may never be removed.
    #[must_use]
    pub fn forbid_unload_named(component_name: &'static str) -> Self {
        IntegrityRule::new(
            format!("pinned:{component_name}"),
            move |arch, change| match change {
                PendingChange::Unload { id } => match arch.component(*id) {
                    Some(info) if info.name == component_name => Err(format!(
                        "{component_name:?} is pinned and cannot be removed"
                    )),
                    _ => Ok(()),
                },
                _ => Ok(()),
            },
        )
    }

    /// The rule's name (appears in violation errors).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for IntegrityRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntegrityRule")
            .field("name", &self.name)
            .finish()
    }
}

/// A composite component hosting plug-ins under integrity policing.
///
/// ```
/// use opencom::{Component, ComponentFramework, IntegrityRule};
/// use std::sync::Arc;
///
/// struct Plugin;
/// impl Component for Plugin {
///     fn name(&self) -> &str { "control" }
/// }
///
/// let cf = ComponentFramework::new("demo");
/// cf.add_rule(IntegrityRule::at_most_one_named("control"));
/// cf.insert(Arc::new(Plugin)).unwrap();
/// assert!(cf.insert(Arc::new(Plugin)).is_err()); // second one vetoed
/// ```
pub struct ComponentFramework {
    name: String,
    kernel: Kernel,
    rules: RwLock<Vec<IntegrityRule>>,
    quiescence: QuiescenceLock,
    exposed: RwLock<HashMap<InterfaceId, AnyInterface>>,
}

impl ComponentFramework {
    /// Creates an empty framework.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ComponentFramework {
            name: name.into(),
            kernel: Kernel::new(),
            rules: RwLock::new(Vec::new()),
            quiescence: QuiescenceLock::new(),
            exposed: RwLock::new(HashMap::new()),
        }
    }

    /// Registers an integrity rule.
    pub fn add_rule(&self, rule: IntegrityRule) {
        self.rules.write().push(rule);
    }

    /// The quiescence lock gating this CF's activity vs reconfiguration.
    #[must_use]
    pub fn quiescence(&self) -> &QuiescenceLock {
        &self.quiescence
    }

    /// Direct access to the inner kernel.
    ///
    /// Mutations through this handle bypass integrity rules and quiescence —
    /// reserve it for inspection and initial assembly.
    #[must_use]
    pub fn inner(&self) -> &Kernel {
        &self.kernel
    }

    /// Snapshots the plug-in architecture.
    #[must_use]
    pub fn architecture(&self) -> ArchitectureSnapshot {
        self.kernel.architecture()
    }

    fn check_rules(&self, change: &PendingChange) -> Result<(), ComponentError> {
        let arch = self.kernel.architecture();
        for rule in self.rules.read().iter() {
            (rule.check)(&arch, change).map_err(|reason| ComponentError::IntegrityViolation {
                rule: rule.name.clone(),
                reason,
            })?;
        }
        Ok(())
    }

    /// Inserts a plug-in component.
    ///
    /// # Errors
    ///
    /// Fails when an integrity rule vetoes the insertion.
    pub fn insert(&self, component: Arc<dyn Component>) -> Result<ComponentId, ComponentError> {
        let _g = self.quiescence.reconfigure();
        self.check_rules(&PendingChange::Load {
            name: component.name().to_string(),
        })?;
        self.kernel.load(component)
    }

    /// Removes a plug-in, detaching any bindings that touch it first.
    ///
    /// # Errors
    ///
    /// Fails when a rule vetoes the removal, the component is unknown, or it
    /// is still running.
    pub fn remove(&self, id: ComponentId) -> Result<(), ComponentError> {
        let _g = self.quiescence.reconfigure();
        self.check_rules(&PendingChange::Unload { id })?;
        for (bid, _) in self.kernel.bindings_of(id) {
            self.kernel.unbind(bid)?;
        }
        self.kernel.unload(id)
    }

    /// Creates a binding between two plug-ins.
    ///
    /// # Errors
    ///
    /// Fails when a rule vetoes it or the underlying kernel bind fails.
    pub fn bind(
        &self,
        from: ComponentId,
        receptacle: &ReceptacleId,
        to: ComponentId,
        iface: &InterfaceId,
    ) -> Result<BindingId, ComponentError> {
        let _g = self.quiescence.reconfigure();
        self.check_rules(&PendingChange::Bind {
            from,
            receptacle: receptacle.clone(),
            to,
            interface: iface.clone(),
        })?;
        self.kernel.bind(from, receptacle, to, iface)
    }

    /// Removes a binding.
    ///
    /// # Errors
    ///
    /// Fails when a rule vetoes it or the binding is unknown.
    pub fn unbind(&self, binding: BindingId) -> Result<(), ComponentError> {
        let _g = self.quiescence.reconfigure();
        self.check_rules(&PendingChange::Unbind { binding })?;
        self.kernel.unbind(binding)
    }

    /// Replaces plug-in `old` with `new`, transplanting every binding that
    /// touched `old` onto `new` (same receptacles and interfaces).
    ///
    /// The swap is atomic with respect to activity (it runs under the
    /// quiescence write lock); on rebinding failure the original component
    /// and bindings are restored.
    ///
    /// # Errors
    ///
    /// Fails when rules veto the change, `old` is unknown, or `new` cannot
    /// satisfy the transplanted bindings (after rollback).
    pub fn replace(
        &self,
        old: ComponentId,
        new: Arc<dyn Component>,
    ) -> Result<ComponentId, ComponentError> {
        let _g = self.quiescence.reconfigure();
        self.check_rules(&PendingChange::Unload { id: old })?;
        let old_component = self
            .kernel
            .component(old)
            .ok_or(ComponentError::NoSuchComponent(old))?;
        self.check_rules(&PendingChange::Load {
            name: new.name().to_string(),
        })?;

        let old_bindings: Vec<_> = self
            .kernel
            .bindings_of(old)
            .into_iter()
            .map(|(_, info)| info)
            .collect();
        let was_running =
            self.kernel.lifecycle_state(old) == Some(crate::component::LifecycleState::Running);
        if was_running {
            self.kernel.lifecycle(old, Lifecycle::Stop)?;
        }
        for (bid, _) in self.kernel.bindings_of(old) {
            self.kernel.unbind(bid)?;
        }
        self.kernel.unload(old)?;
        let new_id = self.kernel.load(new)?;

        let mut rebind_err = None;
        for b in &old_bindings {
            let (from, to) = if b.from == old {
                (new_id, b.to)
            } else {
                (b.from, new_id)
            };
            if let Err(e) = self.kernel.bind(from, &b.receptacle, to, &b.interface) {
                rebind_err = Some(e);
                break;
            }
        }

        if let Some(err) = rebind_err {
            // Roll back: drop new (and whatever was rebound), restore old.
            for (bid, _) in self.kernel.bindings_of(new_id) {
                let _ = self.kernel.unbind(bid);
            }
            let _ = self.kernel.unload(new_id);
            let restored = self.kernel.load(old_component)?;
            for b in &old_bindings {
                let (from, to) = if b.from == old {
                    (restored, b.to)
                } else {
                    (b.from, restored)
                };
                let _ = self.kernel.bind(from, &b.receptacle, to, &b.interface);
            }
            if was_running {
                let _ = self.kernel.init_and_start(restored);
            }
            return Err(err);
        }
        if was_running {
            self.kernel.init_and_start(new_id)?;
        }
        Ok(new_id)
    }

    /// Publishes an interface on the CF itself (visible via its
    /// [`Component`] impl, enabling CF nesting).
    pub fn expose(&self, iface: AnyInterface) {
        self.exposed.write().insert(iface.id().clone(), iface);
    }
}

impl Component for ComponentFramework {
    fn name(&self) -> &str {
        &self.name
    }

    fn provided(&self) -> Vec<InterfaceId> {
        self.exposed.read().keys().cloned().collect()
    }

    fn query_interface(&self, id: &InterfaceId) -> Option<AnyInterface> {
        self.exposed.read().get(id).cloned()
    }

    fn lifecycle(&self, transition: Lifecycle) -> Result<(), String> {
        // Propagate to plug-ins in load order (reverse order for teardown).
        let arch = self.kernel.architecture();
        let mut ids: Vec<_> = arch.components.iter().map(|c| c.id).collect();
        if matches!(transition, Lifecycle::Stop | Lifecycle::Destroy) {
            ids.reverse();
        }
        for id in ids {
            // Skip plug-ins for which the transition is a no-op (e.g. already
            // started plug-ins when the CF starts late).
            if let Some(state) = self.kernel.lifecycle_state(id) {
                if state.apply(transition).is_some() {
                    self.kernel
                        .lifecycle(id, transition)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ComponentFramework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentFramework")
            .field("name", &self.name)
            .field("plugins", &self.kernel.component_count())
            .field("bindings", &self.kernel.binding_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Receptacle;

    trait Tick: Send + Sync {
        fn tick(&self) -> u32;
    }

    struct Clock(u32);
    impl Tick for Clock {
        fn tick(&self) -> u32 {
            self.0
        }
    }

    struct ClockComponent(Arc<dyn Tick>);
    impl Component for ClockComponent {
        fn name(&self) -> &str {
            "clock"
        }
        fn provided(&self) -> Vec<InterfaceId> {
            vec![InterfaceId::of("ITick")]
        }
        fn query_interface(&self, id: &InterfaceId) -> Option<AnyInterface> {
            (id.as_str() == "ITick").then(|| AnyInterface::new(id.clone(), self.0.clone()))
        }
    }

    struct Display {
        tick: Receptacle<dyn Tick>,
    }
    impl Component for Display {
        fn name(&self) -> &str {
            "display"
        }
        fn required(&self) -> Vec<ReceptacleId> {
            vec![ReceptacleId::of("tick")]
        }
        fn bind(&self, r: &ReceptacleId, i: &AnyInterface) -> Result<(), String> {
            if r.as_str() != "tick" {
                return Err("unknown receptacle".into());
            }
            self.tick.bind_any(i).map_err(|e| e.to_string())
        }
        fn unbind(&self, _r: &ReceptacleId) -> Result<(), String> {
            self.tick.unbind();
            Ok(())
        }
    }

    /// A component that provides nothing — used to make `replace` fail.
    struct Dud;
    impl Component for Dud {
        fn name(&self) -> &str {
            "clock"
        }
    }

    fn wired_cf() -> (ComponentFramework, ComponentId, ComponentId, Arc<Display>) {
        let cf = ComponentFramework::new("test-cf");
        let clock = cf
            .insert(Arc::new(ClockComponent(Arc::new(Clock(1)))))
            .unwrap();
        let display_arc = Arc::new(Display {
            tick: Receptacle::new(),
        });
        let display = cf.insert(display_arc.clone()).unwrap();
        cf.bind(
            display,
            &ReceptacleId::of("tick"),
            clock,
            &InterfaceId::of("ITick"),
        )
        .unwrap();
        (cf, clock, display, display_arc)
    }

    #[test]
    fn integrity_rule_vetoes_duplicate() {
        let cf = ComponentFramework::new("cf");
        cf.add_rule(IntegrityRule::at_most_one_named("clock"));
        cf.insert(Arc::new(ClockComponent(Arc::new(Clock(0)))))
            .unwrap();
        let err = cf
            .insert(Arc::new(ClockComponent(Arc::new(Clock(0)))))
            .unwrap_err();
        assert!(matches!(err, ComponentError::IntegrityViolation { .. }));
    }

    #[test]
    fn pinned_component_cannot_be_removed() {
        let cf = ComponentFramework::new("cf");
        cf.add_rule(IntegrityRule::forbid_unload_named("clock"));
        let id = cf
            .insert(Arc::new(ClockComponent(Arc::new(Clock(0)))))
            .unwrap();
        assert!(matches!(
            cf.remove(id),
            Err(ComponentError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn remove_detaches_bindings() {
        let (cf, clock, _display, display_arc) = wired_cf();
        assert!(display_arc.tick.is_bound());
        cf.remove(clock).unwrap();
        assert!(!display_arc.tick.is_bound());
        assert_eq!(cf.architecture().components.len(), 1);
    }

    #[test]
    fn replace_transplants_bindings() {
        let (cf, clock, _display, display_arc) = wired_cf();
        assert_eq!(display_arc.tick.get().unwrap().tick(), 1);
        let new_id = cf
            .replace(clock, Arc::new(ClockComponent(Arc::new(Clock(2)))))
            .unwrap();
        assert_eq!(display_arc.tick.get().unwrap().tick(), 2);
        let arch = cf.architecture();
        assert_eq!(arch.bindings.len(), 1);
        assert_eq!(arch.bindings[0].to, new_id);
    }

    #[test]
    fn replace_rolls_back_on_failure() {
        let (cf, clock, _display, display_arc) = wired_cf();
        let err = cf.replace(clock, Arc::new(Dud)).unwrap_err();
        assert!(matches!(err, ComponentError::InterfaceNotProvided { .. }));
        // Old wiring restored and still functional.
        assert_eq!(display_arc.tick.get().unwrap().tick(), 1);
        assert_eq!(cf.architecture().bindings.len(), 1);
        assert_eq!(cf.architecture().count_named("clock"), 1);
    }

    #[test]
    fn cf_nests_as_component() {
        let inner = ComponentFramework::new("inner");
        let tick: Arc<dyn Tick> = Arc::new(Clock(9));
        inner.expose(AnyInterface::new(InterfaceId::of("ITick"), tick));

        let outer = ComponentFramework::new("outer");
        let inner_id = outer.insert(Arc::new(inner)).unwrap();
        let display_arc = Arc::new(Display {
            tick: Receptacle::new(),
        });
        let display = outer.insert(display_arc.clone()).unwrap();
        outer
            .bind(
                display,
                &ReceptacleId::of("tick"),
                inner_id,
                &InterfaceId::of("ITick"),
            )
            .unwrap();
        assert_eq!(display_arc.tick.get().unwrap().tick(), 9);
    }

    #[test]
    fn lifecycle_propagates_to_plugins() {
        let (cf, clock, display, _) = wired_cf();
        cf.lifecycle(Lifecycle::Init).unwrap();
        cf.lifecycle(Lifecycle::Start).unwrap();
        assert_eq!(
            cf.inner().lifecycle_state(clock),
            Some(crate::component::LifecycleState::Running)
        );
        assert_eq!(
            cf.inner().lifecycle_state(display),
            Some(crate::component::LifecycleState::Running)
        );
        cf.lifecycle(Lifecycle::Stop).unwrap();
        assert_eq!(
            cf.inner().lifecycle_state(clock),
            Some(crate::component::LifecycleState::Stopped)
        );
    }
}
