//! The architecture reflective meta-model: an inspectable snapshot of a
//! kernel's component/binding graph.

use crate::component::{ComponentId, LifecycleState};
use crate::interface::{InterfaceId, ReceptacleId};
use crate::kernel::BindingId;

/// Reflective description of one loaded component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentInfo {
    /// Kernel id.
    pub id: ComponentId,
    /// Component (type) name.
    pub name: String,
    /// Current lifecycle state.
    pub state: LifecycleState,
    /// Interfaces the component provides.
    pub provided: Vec<InterfaceId>,
    /// Receptacles the component requires.
    pub required: Vec<ReceptacleId>,
}

/// Reflective description of one binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingInfo {
    /// Binding id.
    pub id: BindingId,
    /// Source (dependent) component.
    pub from: ComponentId,
    /// Receptacle on the source.
    pub receptacle: ReceptacleId,
    /// Target (providing) component.
    pub to: ComponentId,
    /// Interface on the target.
    pub interface: InterfaceId,
}

/// A point-in-time copy of the architecture graph, used for inspection and
/// by integrity rules to vet pending changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchitectureSnapshot {
    /// All loaded components.
    pub components: Vec<ComponentInfo>,
    /// All live bindings.
    pub bindings: Vec<BindingInfo>,
}

impl ArchitectureSnapshot {
    /// Looks up a component's info by id.
    #[must_use]
    pub fn component(&self, id: ComponentId) -> Option<&ComponentInfo> {
        self.components.iter().find(|c| c.id == id)
    }

    /// All components with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ComponentInfo> + 'a {
        self.components.iter().filter(move |c| c.name == name)
    }

    /// How many components carry the given name.
    #[must_use]
    pub fn count_named(&self, name: &str) -> usize {
        self.named(name).count()
    }

    /// Ids of components providing `iface`.
    #[must_use]
    pub fn providers_of(&self, iface: &InterfaceId) -> Vec<ComponentId> {
        self.components
            .iter()
            .filter(|c| c.provided.contains(iface))
            .map(|c| c.id)
            .collect()
    }

    /// Bindings whose source is `id`.
    pub fn bindings_from(&self, id: ComponentId) -> impl Iterator<Item = &BindingInfo> + '_ {
        self.bindings.iter().filter(move |b| b.from == id)
    }

    /// Bindings whose target is `id`.
    pub fn bindings_to(&self, id: ComponentId) -> impl Iterator<Item = &BindingInfo> + '_ {
        self.bindings.iter().filter(move |b| b.to == id)
    }

    /// Whether a binding already connects `from`'s `receptacle`.
    #[must_use]
    pub fn receptacle_bound(&self, from: ComponentId, receptacle: &ReceptacleId) -> bool {
        self.bindings
            .iter()
            .any(|b| b.from == from && &b.receptacle == receptacle)
    }

    /// Components with no bindings at all (isolated in the graph).
    #[must_use]
    pub fn isolated(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .map(|c| c.id)
            .filter(|id| !self.bindings.iter().any(|b| b.from == *id || b.to == *id))
            .collect()
    }

    /// Whether `to` is reachable from `from` following binding direction.
    ///
    /// Used by loop-avoidance checks in event wiring.
    #[must_use]
    pub fn reaches(&self, from: ComponentId, to: ComponentId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = std::collections::HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            for b in self.bindings_from(cur) {
                if b.to == to {
                    return true;
                }
                stack.push(b.to);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u64) -> ComponentId {
        ComponentId::from_raw(n)
    }

    fn info(id: u64, name: &str, provided: &[&'static str]) -> ComponentInfo {
        ComponentInfo {
            id: cid(id),
            name: name.to_string(),
            state: LifecycleState::Loaded,
            provided: provided.iter().map(|s| InterfaceId::of(s)).collect(),
            required: vec![],
        }
    }

    fn binding(id: u64, from: u64, to: u64) -> BindingInfo {
        BindingInfo {
            id: BindingId::from_raw(id),
            from: cid(from),
            receptacle: ReceptacleId::of("r"),
            to: cid(to),
            interface: InterfaceId::of("I"),
        }
    }

    #[test]
    fn queries() {
        let snap = ArchitectureSnapshot {
            components: vec![
                info(1, "x", &["I1"]),
                info(2, "x", &[]),
                info(3, "y", &["I1"]),
            ],
            bindings: vec![binding(1, 1, 2)],
        };
        assert_eq!(snap.count_named("x"), 2);
        assert_eq!(snap.count_named("z"), 0);
        assert_eq!(snap.providers_of(&InterfaceId::of("I1")).len(), 2);
        assert!(snap.receptacle_bound(cid(1), &ReceptacleId::of("r")));
        assert!(!snap.receptacle_bound(cid(2), &ReceptacleId::of("r")));
        assert_eq!(snap.isolated(), vec![cid(3)]);
        assert_eq!(snap.component(cid(3)).unwrap().name, "y");
        assert_eq!(snap.bindings_from(cid(1)).count(), 1);
        assert_eq!(snap.bindings_to(cid(2)).count(), 1);
    }

    #[test]
    fn reachability() {
        let snap = ArchitectureSnapshot {
            components: vec![],
            bindings: vec![binding(1, 1, 2), binding(2, 2, 3)],
        };
        assert!(snap.reaches(cid(1), cid(3)));
        assert!(snap.reaches(cid(1), cid(1)));
        assert!(!snap.reaches(cid(3), cid(1)));
    }

    #[test]
    fn reachability_handles_cycles() {
        let snap = ArchitectureSnapshot {
            components: vec![],
            bindings: vec![binding(1, 1, 2), binding(2, 2, 1)],
        };
        assert!(snap.reaches(cid(1), cid(2)));
        assert!(snap.reaches(cid(2), cid(1)));
        assert!(!snap.reaches(cid(1), cid(9)));
    }
}
