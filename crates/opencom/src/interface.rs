//! Interfaces, receptacles and type-erased interface references.

use std::any::Any;
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// Identifies an interface *type* (e.g. `"IForward"`).
///
/// Interface identity is nominal: two components interoperate when they agree
/// on the id string **and** on the Rust trait object type behind it (checked
/// at [`AnyInterface::downcast`] time).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InterfaceId(Cow<'static, str>);

impl InterfaceId {
    /// Creates an id from a static name — the common case.
    #[must_use]
    pub const fn of(name: &'static str) -> Self {
        InterfaceId(Cow::Borrowed(name))
    }

    /// Creates an id from a runtime-computed name.
    #[must_use]
    pub fn from_string(name: String) -> Self {
        InterfaceId(Cow::Owned(name))
    }

    /// The id as a string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for InterfaceId {
    fn from(s: &'static str) -> Self {
        InterfaceId::of(s)
    }
}

/// Identifies a receptacle (dependency slot) on a component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReceptacleId(Cow<'static, str>);

impl ReceptacleId {
    /// Creates an id from a static name.
    #[must_use]
    pub const fn of(name: &'static str) -> Self {
        ReceptacleId(Cow::Borrowed(name))
    }

    /// Creates an id from a runtime-computed name.
    #[must_use]
    pub fn from_string(name: String) -> Self {
        ReceptacleId(Cow::Owned(name))
    }

    /// The id as a string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ReceptacleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for ReceptacleId {
    fn from(s: &'static str) -> Self {
        ReceptacleId::of(s)
    }
}

/// A type-erased reference to an interface implementation.
///
/// Internally this wraps `Arc<Arc<dyn Trait>>` as `Arc<dyn Any>`, so the
/// *unsized* trait-object arc can be recovered with [`downcast`].
///
/// [`downcast`]: AnyInterface::downcast
#[derive(Clone)]
pub struct AnyInterface {
    id: InterfaceId,
    inner: Arc<dyn Any + Send + Sync>,
}

impl AnyInterface {
    /// Wraps a concrete or trait-object `Arc` under an interface id.
    ///
    /// For trait objects, name the trait explicitly:
    /// `AnyInterface::new::<dyn IForward>(id, arc)` — the same type must be
    /// used at [`downcast`](Self::downcast) time.
    #[must_use]
    pub fn new<T: ?Sized + Send + Sync + 'static>(id: InterfaceId, iface: Arc<T>) -> Self {
        AnyInterface {
            id,
            inner: Arc::new(iface),
        }
    }

    /// The interface id this reference was published under.
    #[must_use]
    pub fn id(&self) -> &InterfaceId {
        &self.id
    }

    /// Recovers the typed `Arc`, if `T` matches the type used at
    /// construction.
    #[must_use]
    pub fn downcast<T: ?Sized + Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.inner.downcast_ref::<Arc<T>>().cloned()
    }
}

impl fmt::Debug for AnyInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnyInterface")
            .field("id", &self.id)
            .finish()
    }
}

/// A typed dependency slot a component embeds for each required interface.
///
/// `Receptacle<dyn IForward>` holds `Option<Arc<dyn IForward>>` behind a
/// lock; the kernel fills it via [`Component::bind`](crate::Component::bind)
/// and the component calls through [`Receptacle::get`].
///
/// ```
/// use opencom::{AnyInterface, InterfaceId, Receptacle};
/// use std::sync::Arc;
///
/// trait Sink: Send + Sync { fn push(&self, v: u32); }
/// struct Null;
/// impl Sink for Null { fn push(&self, _v: u32) {} }
///
/// let recp: Receptacle<dyn Sink> = Receptacle::new();
/// assert!(recp.get().is_none());
/// let iface = AnyInterface::new::<dyn Sink>(InterfaceId::of("ISink"), Arc::new(Null));
/// recp.bind_any(&iface).unwrap();
/// recp.get().unwrap().push(1);
/// ```
pub struct Receptacle<T: ?Sized> {
    slot: RwLock<Option<Arc<T>>>,
}

impl<T: ?Sized> Receptacle<T> {
    /// An empty (unbound) receptacle.
    #[must_use]
    pub fn new() -> Self {
        Receptacle {
            slot: RwLock::new(None),
        }
    }

    /// The currently bound implementation, if any.
    #[must_use]
    pub fn get(&self) -> Option<Arc<T>> {
        self.slot.read().clone()
    }

    /// Whether an implementation is bound.
    #[must_use]
    pub fn is_bound(&self) -> bool {
        self.slot.read().is_some()
    }

    /// Binds a typed implementation directly.
    pub fn bind(&self, iface: Arc<T>) {
        *self.slot.write() = Some(iface);
    }

    /// Clears the binding.
    pub fn unbind(&self) {
        *self.slot.write() = None;
    }
}

impl<T: ?Sized + Send + Sync + 'static> Receptacle<T> {
    /// Binds from a type-erased reference.
    ///
    /// # Errors
    ///
    /// Returns the interface id when the erased type does not match `T`.
    pub fn bind_any(&self, iface: &AnyInterface) -> Result<(), InterfaceId> {
        match iface.downcast::<T>() {
            Some(arc) => {
                self.bind(arc);
                Ok(())
            }
            None => Err(iface.id().clone()),
        }
    }
}

impl<T: ?Sized> Default for Receptacle<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ?Sized> fmt::Debug for Receptacle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receptacle")
            .field("bound", &self.is_bound())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Calc: Send + Sync {
        fn add(&self, a: u32, b: u32) -> u32;
    }
    struct Adder;
    impl Calc for Adder {
        fn add(&self, a: u32, b: u32) -> u32 {
            a + b
        }
    }

    #[test]
    fn any_interface_round_trip_trait_object() {
        let arc: Arc<dyn Calc> = Arc::new(Adder);
        let any = AnyInterface::new(InterfaceId::of("ICalc"), arc);
        let back: Arc<dyn Calc> = any.downcast().unwrap();
        assert_eq!(back.add(2, 3), 5);
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let arc: Arc<dyn Calc> = Arc::new(Adder);
        let any = AnyInterface::new(InterfaceId::of("ICalc"), arc);
        trait Other: Send + Sync {}
        assert!(any.downcast::<dyn Other>().is_none());
        assert!(any.downcast::<u32>().is_none());
    }

    #[test]
    fn concrete_type_round_trip() {
        let any = AnyInterface::new(InterfaceId::of("INum"), Arc::new(41u32));
        let n: Arc<u32> = any.downcast().unwrap();
        assert_eq!(*n, 41);
    }

    #[test]
    fn receptacle_lifecycle() {
        let r: Receptacle<dyn Calc> = Receptacle::new();
        assert!(!r.is_bound());
        let arc: Arc<dyn Calc> = Arc::new(Adder);
        r.bind(arc);
        assert_eq!(r.get().unwrap().add(1, 1), 2);
        r.unbind();
        assert!(r.get().is_none());
    }

    #[test]
    fn receptacle_bind_any_type_mismatch() {
        let r: Receptacle<dyn Calc> = Receptacle::new();
        let wrong = AnyInterface::new(InterfaceId::of("INum"), Arc::new(1u8));
        let err = r.bind_any(&wrong).unwrap_err();
        assert_eq!(err.as_str(), "INum");
        assert!(!r.is_bound());
    }

    #[test]
    fn ids_display_and_convert() {
        let i: InterfaceId = "IForward".into();
        assert_eq!(i.to_string(), "IForward");
        let r = ReceptacleId::from_string(format!("slot{}", 3));
        assert_eq!(r.as_str(), "slot3");
    }
}
