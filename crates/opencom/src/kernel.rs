//! The component kernel: loading, binding and lifecycle management.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::arch::{ArchitectureSnapshot, BindingInfo, ComponentInfo};
use crate::component::{Component, ComponentId, Lifecycle, LifecycleState};
use crate::error::ComponentError;
use crate::interface::{AnyInterface, InterfaceId, ReceptacleId};

/// Identity of a binding created by [`Kernel::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BindingId(u64);

impl BindingId {
    /// Builds an id from a raw number. Only meaningful for ids previously
    /// obtained from the same kernel; exposed for test fixtures.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        BindingId(raw)
    }
}

impl fmt::Display for BindingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

struct Entry {
    component: Arc<dyn Component>,
    state: LifecycleState,
}

#[derive(Clone)]
pub(crate) struct BindingRecord {
    pub(crate) from: ComponentId,
    pub(crate) receptacle: ReceptacleId,
    pub(crate) to: ComponentId,
    pub(crate) interface: InterfaceId,
}

type Factory = Arc<dyn Fn() -> Arc<dyn Component> + Send + Sync>;

#[derive(Default)]
struct State {
    next_component: u64,
    next_binding: u64,
    components: BTreeMap<ComponentId, Entry>,
    bindings: BTreeMap<BindingId, BindingRecord>,
    factories: HashMap<String, Factory>,
}

/// The runtime kernel: a registry of loaded components and the bindings
/// between them, plus a factory table for load-by-name instantiation.
///
/// The kernel is cheaply cloneable (`Arc` inside) and thread-safe. It *is*
/// the architecture reflective meta-model's source of truth:
/// [`Kernel::architecture`] snapshots the whole graph.
#[derive(Clone, Default)]
pub struct Kernel {
    state: Arc<RwLock<State>>,
}

impl Kernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a component instance, returning its id.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for load policies.
    pub fn load(&self, component: Arc<dyn Component>) -> Result<ComponentId, ComponentError> {
        let mut s = self.state.write();
        s.next_component += 1;
        let id = ComponentId(s.next_component);
        s.components.insert(
            id,
            Entry {
                component,
                state: LifecycleState::Loaded,
            },
        );
        Ok(id)
    }

    /// Registers a factory so components can be instantiated by name
    /// ("dynamic loading").
    pub fn register_factory(
        &self,
        name: impl Into<String>,
        factory: impl Fn() -> Arc<dyn Component> + Send + Sync + 'static,
    ) {
        self.state
            .write()
            .factories
            .insert(name.into(), Arc::new(factory));
    }

    /// Instantiates and loads a component from a registered factory.
    ///
    /// # Errors
    ///
    /// Returns [`ComponentError::NoSuchPlugin`] when no factory has that
    /// name.
    pub fn instantiate(&self, name: &str) -> Result<ComponentId, ComponentError> {
        let factory = self
            .state
            .read()
            .factories
            .get(name)
            .cloned()
            .ok_or_else(|| ComponentError::NoSuchPlugin(name.to_string()))?;
        self.load(factory())
    }

    /// Unloads a component.
    ///
    /// # Errors
    ///
    /// Fails while any binding still references the component (either side),
    /// or when the component is running.
    pub fn unload(&self, id: ComponentId) -> Result<(), ComponentError> {
        let mut s = self.state.write();
        let entry = s
            .components
            .get(&id)
            .ok_or(ComponentError::NoSuchComponent(id))?;
        if entry.state == LifecycleState::Running {
            return Err(ComponentError::BadLifecycle {
                component: id,
                detail: "cannot unload a running component".into(),
            });
        }
        if s.bindings.values().any(|b| b.from == id || b.to == id) {
            return Err(ComponentError::StillBound(id));
        }
        s.components.remove(&id);
        Ok(())
    }

    /// The component instance behind an id.
    #[must_use]
    pub fn component(&self, id: ComponentId) -> Option<Arc<dyn Component>> {
        self.state
            .read()
            .components
            .get(&id)
            .map(|e| e.component.clone())
    }

    /// Ids of all loaded components whose name equals `name`.
    #[must_use]
    pub fn find_by_name(&self, name: &str) -> Vec<ComponentId> {
        self.state
            .read()
            .components
            .iter()
            .filter(|(_, e)| e.component.name() == name)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The lifecycle state of a component.
    #[must_use]
    pub fn lifecycle_state(&self, id: ComponentId) -> Option<LifecycleState> {
        self.state.read().components.get(&id).map(|e| e.state)
    }

    /// Queries an interface on a loaded component (interface meta-model).
    ///
    /// # Errors
    ///
    /// Fails when the component is unknown or does not provide `iface`.
    pub fn query_interface(
        &self,
        id: ComponentId,
        iface: &InterfaceId,
    ) -> Result<AnyInterface, ComponentError> {
        let component = self
            .component(id)
            .ok_or(ComponentError::NoSuchComponent(id))?;
        component
            .query_interface(iface)
            .ok_or_else(|| ComponentError::InterfaceNotProvided {
                component: id,
                interface: iface.clone(),
            })
    }

    /// Binds `from`'s receptacle to the `iface` interface of `to`.
    ///
    /// # Errors
    ///
    /// Fails when either component is unknown, `to` does not provide
    /// `iface`, or `from` rejects the bind (type mismatch / unknown
    /// receptacle).
    pub fn bind(
        &self,
        from: ComponentId,
        receptacle: &ReceptacleId,
        to: ComponentId,
        iface: &InterfaceId,
    ) -> Result<BindingId, ComponentError> {
        let from_c = self
            .component(from)
            .ok_or(ComponentError::NoSuchComponent(from))?;
        let interface = self.query_interface(to, iface)?;
        from_c
            .bind(receptacle, &interface)
            .map_err(|reason| ComponentError::BindRejected {
                component: from,
                receptacle: receptacle.clone(),
                reason,
            })?;
        let mut s = self.state.write();
        s.next_binding += 1;
        let bid = BindingId(s.next_binding);
        s.bindings.insert(
            bid,
            BindingRecord {
                from,
                receptacle: receptacle.clone(),
                to,
                interface: iface.clone(),
            },
        );
        Ok(bid)
    }

    /// Removes a binding, clearing the source receptacle.
    ///
    /// # Errors
    ///
    /// Fails when the binding id is unknown or the source component rejects
    /// the unbind.
    pub fn unbind(&self, binding: BindingId) -> Result<(), ComponentError> {
        let record = self
            .state
            .read()
            .bindings
            .get(&binding)
            .cloned()
            .ok_or(ComponentError::NoSuchBinding(binding))?;
        if let Some(from_c) = self.component(record.from) {
            from_c
                .unbind(&record.receptacle)
                .map_err(|reason| ComponentError::BindRejected {
                    component: record.from,
                    receptacle: record.receptacle.clone(),
                    reason,
                })?;
        }
        self.state.write().bindings.remove(&binding);
        Ok(())
    }

    /// All bindings whose source or target is `id`.
    #[must_use]
    pub fn bindings_of(&self, id: ComponentId) -> Vec<(BindingId, BindingInfo)> {
        self.state
            .read()
            .bindings
            .iter()
            .filter(|(_, b)| b.from == id || b.to == id)
            .map(|(bid, b)| (*bid, binding_info(*bid, b)))
            .collect()
    }

    /// Applies a lifecycle transition to a component.
    ///
    /// # Errors
    ///
    /// Fails on invalid ordering (e.g. `Start` before `Init`) or when the
    /// component's own transition work fails.
    pub fn lifecycle(
        &self,
        id: ComponentId,
        transition: Lifecycle,
    ) -> Result<LifecycleState, ComponentError> {
        let (component, current) = {
            let s = self.state.read();
            let e = s
                .components
                .get(&id)
                .ok_or(ComponentError::NoSuchComponent(id))?;
            (e.component.clone(), e.state)
        };
        let next = current
            .apply(transition)
            .ok_or_else(|| ComponentError::BadLifecycle {
                component: id,
                detail: format!("{transition:?} invalid in state {current:?}"),
            })?;
        component
            .lifecycle(transition)
            .map_err(|detail| ComponentError::BadLifecycle {
                component: id,
                detail,
            })?;
        if let Some(e) = self.state.write().components.get_mut(&id) {
            e.state = next;
        }
        Ok(next)
    }

    /// Convenience: `Init` then `Start`.
    ///
    /// # Errors
    ///
    /// Propagates failures of either transition.
    pub fn init_and_start(&self, id: ComponentId) -> Result<(), ComponentError> {
        self.lifecycle(id, Lifecycle::Init)?;
        self.lifecycle(id, Lifecycle::Start)?;
        Ok(())
    }

    /// Snapshots the architecture meta-model: every component and binding.
    #[must_use]
    pub fn architecture(&self) -> ArchitectureSnapshot {
        let s = self.state.read();
        let components = s
            .components
            .iter()
            .map(|(id, e)| ComponentInfo {
                id: *id,
                name: e.component.name().to_string(),
                state: e.state,
                provided: e.component.provided(),
                required: e.component.required(),
            })
            .collect();
        let bindings = s
            .bindings
            .iter()
            .map(|(bid, b)| binding_info(*bid, b))
            .collect();
        ArchitectureSnapshot {
            components,
            bindings,
        }
    }

    /// Number of loaded components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.state.read().components.len()
    }

    /// Number of live bindings.
    #[must_use]
    pub fn binding_count(&self) -> usize {
        self.state.read().bindings.len()
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("components", &self.component_count())
            .field("bindings", &self.binding_count())
            .finish()
    }
}

fn binding_info(id: BindingId, b: &BindingRecord) -> BindingInfo {
    BindingInfo {
        id,
        from: b.from,
        receptacle: b.receptacle.clone(),
        to: b.to,
        interface: b.interface.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Receptacle;

    trait Counter: Send + Sync {
        fn incr(&self) -> u64;
    }

    struct CounterImpl(std::sync::atomic::AtomicU64);
    impl Counter for CounterImpl {
        fn incr(&self) -> u64 {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1
        }
    }

    struct Provider(Arc<dyn Counter>);
    impl Component for Provider {
        fn name(&self) -> &str {
            "provider"
        }
        fn provided(&self) -> Vec<InterfaceId> {
            vec![InterfaceId::of("ICounter")]
        }
        fn query_interface(&self, id: &InterfaceId) -> Option<AnyInterface> {
            (id.as_str() == "ICounter").then(|| AnyInterface::new(id.clone(), self.0.clone()))
        }
    }

    struct Consumer {
        counter: Receptacle<dyn Counter>,
    }
    impl Component for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn required(&self) -> Vec<ReceptacleId> {
            vec![ReceptacleId::of("counter")]
        }
        fn bind(&self, receptacle: &ReceptacleId, iface: &AnyInterface) -> Result<(), String> {
            if receptacle.as_str() != "counter" {
                return Err(format!("unknown receptacle {receptacle}"));
            }
            self.counter
                .bind_any(iface)
                .map_err(|id| format!("type mismatch for {id}"))
        }
        fn unbind(&self, receptacle: &ReceptacleId) -> Result<(), String> {
            if receptacle.as_str() != "counter" {
                return Err(format!("unknown receptacle {receptacle}"));
            }
            self.counter.unbind();
            Ok(())
        }
    }

    fn setup() -> (Kernel, ComponentId, ComponentId, Arc<Consumer>) {
        let kernel = Kernel::new();
        let provider = kernel
            .load(Arc::new(Provider(Arc::new(
                CounterImpl(Default::default()),
            ))))
            .unwrap();
        let consumer_arc = Arc::new(Consumer {
            counter: Receptacle::new(),
        });
        let consumer = kernel.load(consumer_arc.clone()).unwrap();
        (kernel, provider, consumer, consumer_arc)
    }

    #[test]
    fn bind_and_call_through() {
        let (kernel, provider, consumer, consumer_arc) = setup();
        let bid = kernel
            .bind(
                consumer,
                &ReceptacleId::of("counter"),
                provider,
                &InterfaceId::of("ICounter"),
            )
            .unwrap();
        assert_eq!(consumer_arc.counter.get().unwrap().incr(), 1);
        kernel.unbind(bid).unwrap();
        assert!(consumer_arc.counter.get().is_none());
    }

    #[test]
    fn bind_unknown_interface_fails() {
        let (kernel, provider, consumer, _) = setup();
        let err = kernel
            .bind(
                consumer,
                &ReceptacleId::of("counter"),
                provider,
                &InterfaceId::of("IBogus"),
            )
            .unwrap_err();
        assert!(matches!(err, ComponentError::InterfaceNotProvided { .. }));
    }

    #[test]
    fn bind_unknown_receptacle_fails() {
        let (kernel, provider, consumer, _) = setup();
        let err = kernel
            .bind(
                consumer,
                &ReceptacleId::of("bogus"),
                provider,
                &InterfaceId::of("ICounter"),
            )
            .unwrap_err();
        assert!(matches!(err, ComponentError::BindRejected { .. }));
        assert_eq!(kernel.binding_count(), 0, "failed bind leaves no record");
    }

    #[test]
    fn unload_blocked_while_bound() {
        let (kernel, provider, consumer, _) = setup();
        let bid = kernel
            .bind(
                consumer,
                &ReceptacleId::of("counter"),
                provider,
                &InterfaceId::of("ICounter"),
            )
            .unwrap();
        assert!(matches!(
            kernel.unload(provider),
            Err(ComponentError::StillBound(_))
        ));
        kernel.unbind(bid).unwrap();
        kernel.unload(provider).unwrap();
        assert_eq!(kernel.component_count(), 1);
    }

    #[test]
    fn lifecycle_ordering_enforced() {
        let (kernel, provider, _, _) = setup();
        assert!(matches!(
            kernel.lifecycle(provider, Lifecycle::Start),
            Err(ComponentError::BadLifecycle { .. })
        ));
        kernel.init_and_start(provider).unwrap();
        assert_eq!(
            kernel.lifecycle_state(provider),
            Some(LifecycleState::Running)
        );
        assert!(matches!(
            kernel.unload(provider),
            Err(ComponentError::BadLifecycle { .. }),
        ));
        kernel.lifecycle(provider, Lifecycle::Stop).unwrap();
        kernel.unload(provider).unwrap();
    }

    #[test]
    fn factories_instantiate_by_name() {
        let kernel = Kernel::new();
        kernel.register_factory("provider", || {
            Arc::new(Provider(Arc::new(CounterImpl(Default::default()))))
        });
        let id = kernel.instantiate("provider").unwrap();
        assert_eq!(kernel.component(id).unwrap().name(), "provider");
        assert!(matches!(
            kernel.instantiate("nope"),
            Err(ComponentError::NoSuchPlugin(_))
        ));
    }

    #[test]
    fn architecture_snapshot_reflects_graph() {
        let (kernel, provider, consumer, _) = setup();
        kernel
            .bind(
                consumer,
                &ReceptacleId::of("counter"),
                provider,
                &InterfaceId::of("ICounter"),
            )
            .unwrap();
        let arch = kernel.architecture();
        assert_eq!(arch.components.len(), 2);
        assert_eq!(arch.bindings.len(), 1);
        let b = &arch.bindings[0];
        assert_eq!(b.from, consumer);
        assert_eq!(b.to, provider);
        assert_eq!(
            arch.providers_of(&InterfaceId::of("ICounter")),
            vec![provider]
        );
    }

    #[test]
    fn find_by_name() {
        let (kernel, provider, _, _) = setup();
        assert_eq!(kernel.find_by_name("provider"), vec![provider]);
        assert!(kernel.find_by_name("ghost").is_empty());
    }
}
