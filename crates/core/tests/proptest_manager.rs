//! Property-based tests of the Framework Manager's routing invariants:
//! whatever tuples protocols declare, loop avoidance, exclusivity and
//! interposer-chain termination must hold.

use manetkit::event::EventType;
use manetkit::manager::FrameworkManager;
use manetkit::registry::EventTuple;
use proptest::prelude::*;

const TYPES: [&str; 4] = ["A_OUT", "B_OUT", "C_IN", "D_CHANGE"];

#[derive(Debug, Clone)]
struct UnitSpec {
    required: Vec<usize>,
    provided: Vec<usize>,
    exclusive: Vec<usize>,
}

fn arb_unit() -> impl Strategy<Value = UnitSpec> {
    (
        proptest::collection::vec(0..TYPES.len(), 0..4),
        proptest::collection::vec(0..TYPES.len(), 0..4),
        proptest::collection::vec(0..TYPES.len(), 0..2),
    )
        .prop_map(|(required, provided, exclusive)| UnitSpec {
            required,
            provided,
            exclusive,
        })
}

fn build_manager(units: &[UnitSpec]) -> FrameworkManager {
    let mut m = FrameworkManager::new();
    for (i, u) in units.iter().enumerate() {
        let mut t = EventTuple::new();
        for r in &u.required {
            t = t.requires(EventType::named(TYPES[*r]));
        }
        for p in &u.provided {
            t = t.provides(EventType::named(TYPES[*p]));
        }
        for x in &u.exclusive {
            t = t.requires_exclusive(EventType::named(TYPES[*x]));
        }
        m.register(format!("u{i}"), t);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An emitter never receives its own event (loop avoidance).
    #[test]
    fn never_routes_back_to_origin(units in proptest::collection::vec(arb_unit(), 1..8)) {
        let m = build_manager(&units);
        for ty in TYPES {
            let ty = EventType::named(ty);
            for origin in 0..units.len() {
                let recipients = m.route(&ty, Some(origin));
                prop_assert!(!recipients.contains(&origin), "{ty} routed back to {origin}");
            }
        }
    }

    /// Recipients always actually require the type.
    #[test]
    fn recipients_require_the_type(units in proptest::collection::vec(arb_unit(), 1..8)) {
        let m = build_manager(&units);
        for ty in TYPES {
            let ty = EventType::named(ty);
            for origin in 0..units.len() {
                for r in m.route(&ty, Some(origin)) {
                    prop_assert!(
                        m.tuple(r).unwrap().is_required(&ty),
                        "unit {r} got {ty} without requiring it"
                    );
                }
            }
        }
    }

    /// Following the routing repeatedly always terminates: an event can
    /// visit each unit at most once along an interposer chain.
    #[test]
    fn interposer_chains_terminate(units in proptest::collection::vec(arb_unit(), 1..8)) {
        let m = build_manager(&units);
        for ty in TYPES {
            let ty = EventType::named(ty);
            for start in 0..units.len() {
                let mut origin = Some(start);
                let mut hops = 0;
                loop {
                    let next = m.route(&ty, origin);
                    // Chain step: single interposer recipient that provides
                    // the type again.
                    match next.as_slice() {
                        [one] if m.tuple(*one).unwrap().is_interposer(&ty) => {
                            origin = Some(*one);
                            hops += 1;
                            prop_assert!(
                                hops <= units.len(),
                                "interposer chain for {ty} did not terminate"
                            );
                        }
                        _ => break,
                    }
                }
            }
        }
    }

    /// With no interposers for a type, an exclusive consumer receives alone.
    #[test]
    fn exclusivity_is_exclusive(units in proptest::collection::vec(arb_unit(), 1..8)) {
        let m = build_manager(&units);
        for ty in TYPES {
            let ty = EventType::named(ty);
            let has_interposer =
                (0..units.len()).any(|i| m.tuple(i).unwrap().is_interposer(&ty));
            if has_interposer {
                continue;
            }
            let exclusives: Vec<usize> = (0..units.len())
                .filter(|i| m.tuple(*i).unwrap().is_exclusive(&ty))
                .collect();
            if exclusives.is_empty() {
                continue;
            }
            for origin in 0..units.len() {
                if exclusives.contains(&origin) {
                    // The exclusive consumer emitting the type itself passes
                    // it onward to the plain consumers (loop avoidance only
                    // excludes the origin).
                    continue;
                }
                let recipients = m.route(&ty, Some(origin));
                if recipients.is_empty() {
                    continue;
                }
                prop_assert_eq!(
                    recipients.len(),
                    1,
                    "exclusive consumer for {} must receive alone",
                    ty
                );
                prop_assert!(exclusives.contains(&recipients[0]));
            }
        }
    }

    /// Deactivate/reactivate round-trips the wiring exactly.
    #[test]
    fn deactivation_round_trips(units in proptest::collection::vec(arb_unit(), 2..8)) {
        let mut m = build_manager(&units);
        let snapshot: Vec<Vec<usize>> = TYPES
            .iter()
            .map(|t| m.route(&EventType::named(t), Some(0)))
            .collect();
        m.deactivate(1);
        m.reactivate(1);
        let after: Vec<Vec<usize>> = TYPES
            .iter()
            .map(|t| m.route(&EventType::named(t), Some(0)))
            .collect();
        prop_assert_eq!(snapshot, after);
    }
}
