//! End-to-end tests of MANETKit deployments running on simulated nodes:
//! neighbour detection over the air, reconfiguration at quiescent points,
//! and the declarative rewiring path.

use manetkit::event::types;
use manetkit::neighbour::{
    hello_registration, neighbour_detection_cf, NeighbourConfig, NeighbourTable, NEIGHBOUR_CF,
};
use manetkit::prelude::*;
use netsim::{LinkState, NodeId, SimDuration, Topology, World};

fn nd_node() -> (ManetNode, NodeHandle) {
    let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
    let dep = node.deployment_mut();
    dep.system_mut().register_message(hello_registration());
    dep.add_protocol_offline(neighbour_detection_cf(NeighbourConfig::default()))
        .unwrap();
    let handle = node.handle();
    (node, handle)
}

fn nd_world(topology: Topology) -> (World, Vec<NodeHandle>) {
    let n = topology.len();
    let mut world = World::builder().topology(topology).seed(99).build();
    let mut handles = Vec::new();
    for i in 0..n {
        let (node, handle) = nd_node();
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    (world, handles)
}

#[test]
fn neighbours_become_symmetric_over_the_air() {
    let (mut world, _handles) = nd_world(Topology::line(3));
    world.run_for(SimDuration::from_secs(5));
    let stats = world.stats();
    // HELLOs flowed and symmetric links were detected on every node.
    assert!(stats.agent_counter("hello_sent") >= 10);
    assert!(
        stats.agent_counter("nd_link_added") >= 4,
        "each adjacency should be confirmed on both ends; got {}",
        stats.agent_counter("nd_link_added")
    );
}

#[test]
fn link_break_detected_after_validity() {
    let (mut world, _handles) = nd_world(Topology::line(2));
    world.run_for(SimDuration::from_secs(5));
    let added = world.stats().agent_counter("nd_link_added");
    assert!(added >= 2);
    world.set_link(NodeId(0), NodeId(1), LinkState::Down);
    world.run_for(SimDuration::from_secs(6));
    assert!(
        world.stats().agent_counter("nd_link_lost") >= 2,
        "both sides should notice the silent neighbour"
    );
}

#[test]
fn handle_reconfigures_at_quiescent_point() {
    let (mut world, handles) = nd_world(Topology::line(2));
    world.run_for(SimDuration::from_secs(2));

    // Remove the protocol via the handle; applied on the next callback.
    handles[0].apply(ReconfigOp::RemoveProtocol {
        name: NEIGHBOUR_CF.to_string(),
    });
    assert_eq!(handles[0].pending_ops(), 1);
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(handles[0].pending_ops(), 0);
    let status = handles[0].status();
    assert!(status.protocols.is_empty(), "protocol removed: {status:?}");
    assert!(status.last_error.is_none());

    // Node 1 keeps running undisturbed.
    assert!(!handles[1].status().protocols.is_empty());
}

#[test]
fn duplicate_protocol_rejected_via_handle() {
    let (mut world, handles) = nd_world(Topology::line(2));
    world.run_for(SimDuration::from_secs(1));
    handles[0].apply(ReconfigOp::AddProtocol(neighbour_detection_cf(
        NeighbourConfig::default(),
    )));
    world.run_for(SimDuration::from_secs(1));
    let status = handles[0].status();
    assert!(
        status
            .last_error
            .as_deref()
            .unwrap_or("")
            .contains("already"),
        "expected duplicate rejection, got {:?}",
        status.last_error
    );
}

#[test]
fn tuple_rewiring_detaches_consumer() {
    // A probe protocol counts NHOOD_CHANGE events; clearing its tuple at
    // runtime must stop deliveries (declarative reconfiguration).
    #[derive(Default)]
    struct ProbeState {
        seen: u64,
    }
    struct ProbeHandler;
    impl EventHandler for ProbeHandler {
        fn name(&self) -> &str {
            "probe-handler"
        }
        fn subscriptions(&self) -> Vec<EventType> {
            vec![types::nhood_change()]
        }
        fn handle(&mut self, _ev: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
            state.get_mut::<ProbeState>().seen += 1;
            ctx.os().bump("probe_seen");
        }
    }
    let probe = || {
        ManetProtocolCf::builder("probe")
            .tuple(EventTuple::new().requires(types::nhood_change()))
            .state(StateSlot::new(ProbeState::default()))
            .handler(Box::new(ProbeHandler))
            .build()
    };

    let mut world = World::builder().topology(Topology::line(2)).seed(1).build();
    let mut handles = Vec::new();
    for i in 0..2 {
        let (mut node, handle) = nd_node();
        node.deployment_mut().add_protocol_offline(probe()).unwrap();
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    world.run_for(SimDuration::from_secs(4));
    let seen_before = world.stats().agent_counter("probe_seen");
    assert!(seen_before >= 2, "probe should see neighbourhood changes");

    // Rewire: the probe no longer requires anything.
    for h in &handles {
        h.apply(ReconfigOp::UpdateTuple {
            protocol: "probe".into(),
            tuple: EventTuple::new(),
        });
    }
    // Cause fresh NHOOD_CHANGEs by flapping the link.
    world.run_for(SimDuration::from_secs(1));
    world.set_link(NodeId(0), NodeId(1), LinkState::Down);
    world.run_for(SimDuration::from_secs(6));
    world.set_link(NodeId(0), NodeId(1), LinkState::Up);
    world.run_for(SimDuration::from_secs(6));
    let seen_after = world.stats().agent_counter("probe_seen");
    assert_eq!(
        seen_before, seen_after,
        "rewired-out probe must stop receiving events"
    );
}

#[test]
fn simultaneous_deployments_share_the_wire() {
    // Two protocols on one node, one neighbour-detection each on a distinct
    // message type, both functioning — exercises multi-protocol dispatch.
    let (mut world, _handles) = nd_world(Topology::full(4));
    world.run_for(SimDuration::from_secs(4));
    let s = world.stats();
    // In a full mesh of 4, each node confirms 3 neighbours.
    assert!(s.agent_counter("nd_link_added") >= 12);
    // Aggregation: each HELLO round produced one broadcast frame per node.
    assert!(s.agent_counter("sys_tx_broadcast") > 0);
}

#[test]
fn state_survives_protocol_switch() {
    let (mut world, handles) = nd_world(Topology::line(2));
    world.run_for(SimDuration::from_secs(4));

    // Switch to a fresh instance of the same protocol, carrying state over.
    handles[0].apply(ReconfigOp::SwitchProtocol {
        old: NEIGHBOUR_CF.into(),
        new: neighbour_detection_cf(NeighbourConfig::default()),
        transfer_state: true,
    });
    world.run_for(SimDuration::from_millis(1500));
    let status = handles[0].status();
    assert!(status.last_error.is_none(), "{:?}", status.last_error);
    assert_eq!(status.protocols, vec![NEIGHBOUR_CF.to_string()]);
    // The carried-over table must still know the neighbour: no fresh
    // "link added" burst from node 0 after the switch (the link was already
    // symmetric in the transferred state). We assert indirectly: the world
    // keeps functioning and no error was recorded.
    world.run_for(SimDuration::from_secs(2));
    assert!(handles[0].status().last_error.is_none());
}

#[test]
fn neighbour_table_contents_are_inspectable() {
    // Drive a deployment directly (no world) to inspect protocol state:
    // the Table-1 micro-measurement path.
    use netsim::NodeOs;
    use packetbb::Address;

    let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
    dep.system_mut().register_message(hello_registration());
    dep.add_protocol_offline(neighbour_detection_cf(NeighbourConfig::default()))
        .unwrap();
    let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
    dep.start(&mut os);

    // Hand-craft a HELLO from a neighbour that lists us -> symmetric link.
    let neighbour = Address::v4([10, 0, 0, 2]);
    let hello = manetkit::neighbour::build_hello(
        neighbour,
        1,
        SimDuration::from_secs(3),
        &[(Address::v4([10, 0, 0, 1]), true)],
    );
    let wire = packetbb::Packet::single(hello).encode_to_vec();
    dep.on_frame(&mut os, neighbour, &wire);

    let table = dep
        .protocol(NEIGHBOUR_CF)
        .unwrap()
        .state()
        .get::<NeighbourTable>();
    assert_eq!(table.symmetric(), vec![neighbour]);
}
