//! Piggybacking: messages emitted within one dispatch round toward the
//! same destination share one PacketBB packet — the vertical-stacking
//! benefit the CFS pattern and the PacketBB format were chosen for.

use std::sync::{Arc, Mutex};

use manetkit::event::{types, Event, EventType};
use manetkit::prelude::*;
use netsim::{NodeId, NodeOs, SimDuration};
use packetbb::{Address, MessageBuilder, Packet};

/// A protocol that emits `count` distinct messages from a single timer
/// firing.
struct BurstSource {
    count: usize,
}

impl manetkit::protocol::EventSource for BurstSource {
    fn name(&self) -> &str {
        "burst-source"
    }
    fn period(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }
    fn fire(&mut self, _state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        for i in 0..self.count {
            let msg = MessageBuilder::new(42).seq_num(i as u16).build();
            ctx.emit(Event::message_out(EventType::named("BURST_OUT"), msg));
        }
    }
}

fn burst_protocol(count: usize) -> ManetProtocolCf {
    ManetProtocolCf::builder("burst")
        .tuple(EventTuple::new().provides(EventType::named("BURST_OUT")))
        .source(Box::new(BurstSource { count }))
        .build()
}

#[test]
fn same_round_broadcasts_share_one_packet() {
    // Drive a deployment directly and capture what hits the wire through a
    // probe world? Simpler: use a 2-node world and count frames.
    let mut world = netsim::World::builder()
        .topology(netsim::Topology::full(2))
        .seed(80)
        .build();
    let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
    let dep = node.deployment_mut();
    dep.system_mut().register_in_out(
        42,
        EventType::named("BURST_IN"),
        EventType::named("BURST_OUT"),
    );
    dep.add_protocol_offline(burst_protocol(5)).unwrap();
    world.install_agent(NodeId(0), Box::new(node));

    // A receiver that decodes arriving frames and counts messages/frame.
    struct Probe {
        seen: Arc<Mutex<Vec<usize>>>,
    }
    impl netsim::RoutingAgent for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn start(&mut self, _os: &mut NodeOs) {}
        fn on_frame(&mut self, _os: &mut NodeOs, _from: Address, bytes: &[u8]) {
            let packet = Packet::decode(bytes).expect("well-formed frame");
            self.seen.lock().unwrap().push(packet.messages().len());
        }
        fn on_timer(&mut self, _os: &mut NodeOs, _token: u64) {}
        fn on_filter_event(&mut self, _os: &mut NodeOs, _event: netsim::FilterEvent) {}
    }
    let seen = Arc::new(Mutex::new(Vec::new()));
    world.install_agent(NodeId(1), Box::new(Probe { seen: seen.clone() }));

    world.run_for(SimDuration::from_millis(3_500));
    let frames = seen.lock().unwrap().clone();
    assert_eq!(
        frames.len(),
        3,
        "three burst rounds, three frames: {frames:?}"
    );
    assert!(
        frames.iter().all(|n| *n == 5),
        "each frame carries the round's five messages piggybacked: {frames:?}"
    );
}

#[test]
fn cross_protocol_piggybacking_on_one_node() {
    // Two independent protocols firing in the same round also share the
    // frame (e.g. OLSR HELLO + TC in the paper's deployments).
    let mut world = netsim::World::builder()
        .topology(netsim::Topology::full(2))
        .seed(81)
        .build();
    let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
    let dep = node.deployment_mut();
    dep.system_mut().register_in_out(
        42,
        EventType::named("BURST_IN"),
        EventType::named("BURST_OUT"),
    );
    dep.system_mut().register_in_out(
        43,
        EventType::named("OTHER_IN"),
        EventType::named("OTHER_OUT"),
    );
    dep.add_protocol_offline(burst_protocol(1)).unwrap();

    struct OtherSource;
    impl manetkit::protocol::EventSource for OtherSource {
        fn name(&self) -> &str {
            "other-source"
        }
        fn period(&self) -> SimDuration {
            SimDuration::from_secs(1)
        }
        fn fire(&mut self, _state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
            let msg = MessageBuilder::new(43).build();
            ctx.emit(Event::message_out(EventType::named("OTHER_OUT"), msg));
        }
    }
    let other = ManetProtocolCf::builder("other")
        .tuple(EventTuple::new().provides(EventType::named("OTHER_OUT")))
        .source(Box::new(OtherSource))
        .build();
    dep.add_protocol_offline(other).unwrap();
    world.install_agent(NodeId(0), Box::new(node));
    world.run_for(SimDuration::from_millis(1_500));
    // Both protocols fired once at t=1s; timers fire as separate events, so
    // each round flushes its own frame — but each frame is a well-formed
    // packet. Count frames on the wire.
    let s = world.stats();
    assert!(
        s.control_frames >= 1 && s.control_frames <= 2,
        "one or two frames for the two sources: {s:?}"
    );
    let _ = types::hello_out(); // silence unused import paths in some cfgs
}
