//! Property-based tests of transactional reconfiguration: a transaction
//! that aborts at ANY failure point must leave the composition — the
//! architecture meta-model, every protocol's tuple/plug-ins, the exported
//! protocol state bytes and the System CF configuration — exactly as the
//! checkpoint recorded it. The same holds for an explicit rollback of a
//! successfully prepared transaction, and for a transaction doomed by a
//! node crash between prepare and commit.

use std::time::Duration;

use manetkit::event::EventType;
use manetkit::neighbour::{hello_registration, neighbour_detection_cf};
use manetkit::prelude::*;
use manetkit::protocol::StateSlot;
use manetkit::system::MessageRegistration;
use manetkit::txn;
use manetkit::TxnPhase;
use netsim::fault::FaultPlan;
use netsim::{NodeId, NodeOs, SimDuration, SimTime, Topology, World};
use packetbb::Address;
use proptest::prelude::*;

/// A protocol CF with a state codec, so rollback exactness is checked down
/// to the exported state bytes.
fn stateful_cf(name: String, state: u64) -> ManetProtocolCf {
    ManetProtocolCf::builder(name)
        .tuple(
            EventTuple::new()
                .requires(EventType::named("TXN_A"))
                .provides(EventType::named("TXN_B")),
        )
        .state(StateSlot::new(state))
        .state_codec(|slot| {
            slot.try_get::<u64>()
                .map(|v| v.to_le_bytes().to_vec())
                .unwrap_or_default()
        })
        .build()
}

fn registration(msg_type: u8) -> MessageRegistration {
    MessageRegistration {
        msg_type,
        in_event: EventType::named("TXN_MSG_IN"),
        out_event: None,
    }
}

/// The fixed starting composition: two stateful protocols and one message
/// registration.
fn base_deployment(os: &mut NodeOs) -> Deployment {
    let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
    dep.system_mut().register_message(registration(42));
    dep.add_protocol_offline(stateful_cf("alpha".into(), 7))
        .unwrap();
    dep.add_protocol_offline(stateful_cf("gamma".into(), 9))
        .unwrap();
    dep.start(os);
    dep
}

/// Builds op `i` of a batch from a generated code. Codes deliberately mix
/// ops that succeed, ops that must fail (unknown/duplicate protocols) and
/// a non-undoable `Mutate` — every mix exercises a different abort point.
fn build_op(code: u8, i: usize) -> ReconfigOp {
    match code {
        0 => ReconfigOp::AddProtocol(stateful_cf(format!("p{i}"), i as u64)),
        1 => ReconfigOp::AddProtocol(stateful_cf("alpha".into(), 1)),
        2 => ReconfigOp::RemoveProtocol {
            name: "alpha".into(),
        },
        3 => ReconfigOp::RemoveProtocol {
            name: "ghost".into(),
        },
        4 => ReconfigOp::UpdateTuple {
            protocol: "gamma".into(),
            tuple: EventTuple::new()
                .requires(EventType::named("TXN_B"))
                .provides(EventType::named("TXN_C")),
        },
        5 => ReconfigOp::Mutate {
            protocol: "gamma".into(),
            op: Box::new(|_| {}),
        },
        6 => ReconfigOp::RegisterMessage(registration(50 + (i as u8 % 100))),
        7 => ReconfigOp::SwitchProtocol {
            old: "alpha".into(),
            new: stateful_cf(format!("s{i}"), 100 + i as u64),
            transfer_state: true,
        },
        _ => ReconfigOp::MutateSystem {
            op: Box::new(|sys| sys.enable_netlink()),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever mix of valid, failing and non-undoable ops a transaction
    /// carries, an abort at any injected failure point — or an explicit
    /// rollback of a fully prepared batch — restores the composition
    /// fingerprint byte-identically to the checkpoint.
    #[test]
    fn abort_at_any_failure_point_restores_the_checkpoint(
        codes in proptest::collection::vec(0u8..9, 1..10),
    ) {
        let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
        let mut dep = base_deployment(&mut os);
        let before = txn::fingerprint(&dep);
        let ops: Vec<ReconfigOp> = codes
            .iter()
            .enumerate()
            .map(|(i, c)| build_op(*c, i))
            .collect();
        match txn::prepare(&mut dep, 1, ops, Duration::from_millis(50), &mut os) {
            Ok(prepared) => {
                // The batch applied cleanly; roll it back anyway (the
                // coordinator-abort path) and demand exactness.
                let clean = txn::rollback(&mut dep, prepared, &mut os);
                prop_assert!(clean, "rollback fingerprint mismatch");
                prop_assert_eq!(txn::fingerprint(&dep), before);
            }
            Err(aborted) => {
                prop_assert!(
                    aborted.rollback_clean,
                    "abort ({}) left a dirty rollback: {}",
                    aborted.reason,
                    aborted.detail
                );
                prop_assert_eq!(txn::fingerprint(&dep), before);
            }
        }
    }

    /// A committed-then-reverted transaction (the health-gate back-out)
    /// also lands exactly on the checkpoint.
    #[test]
    fn revert_after_commit_restores_the_checkpoint(
        codes in proptest::collection::vec(prop_oneof![
            Just(0u8), Just(4u8), Just(6u8), Just(7u8), Just(8u8)
        ], 1..6),
    ) {
        let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
        let mut dep = base_deployment(&mut os);
        let before = txn::fingerprint(&dep);
        // Code 7 switches "alpha" away, so only its first occurrence can
        // succeed; downgrade repeats to plain adds to keep the batch
        // infallible.
        let mut switched = false;
        let ops: Vec<ReconfigOp> = codes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let c = if *c == 7 && std::mem::replace(&mut switched, true) {
                    0
                } else {
                    *c
                };
                build_op(c, i)
            })
            .collect();
        // These op codes never fail on the base composition, so prepare
        // must succeed.
        let prepared = match txn::prepare(&mut dep, 2, ops, Duration::from_millis(50), &mut os) {
            Ok(p) => p,
            Err(e) => panic!("unexpected abort: {e}"),
        };
        txn::commit(&mut dep, &prepared, &mut os);
        prop_assert_ne!(txn::fingerprint(&dep), before.clone(),
            "every generated batch changes the composition");
        let clean = txn::revert(&mut dep, prepared, &mut os);
        prop_assert!(clean, "revert fingerprint mismatch");
        prop_assert_eq!(txn::fingerprint(&dep), before);
    }
}

/// A non-undoable `Mutate` op aborts the transaction with the dedicated
/// reason, even when every other op in the batch is valid.
#[test]
fn mutate_ops_abort_as_non_undoable() {
    let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
    let mut dep = base_deployment(&mut os);
    let before = txn::fingerprint(&dep);
    let ops = vec![
        ReconfigOp::RegisterMessage(registration(60)),
        ReconfigOp::Mutate {
            protocol: "alpha".into(),
            op: Box::new(|_| {}),
        },
    ];
    let aborted = txn::prepare(&mut dep, 3, ops, Duration::from_millis(50), &mut os)
        .expect_err("Mutate must abort the transaction");
    assert_eq!(aborted.reason, "non_undoable");
    assert!(aborted.rollback_clean);
    assert_eq!(txn::fingerprint(&dep), before);
}

/// A quiescence timeout (activity still in flight past the deadline)
/// aborts the prepare without touching the composition, instead of
/// blocking forever.
#[test]
fn quiesce_timeout_aborts_without_blocking() {
    let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
    let mut dep = base_deployment(&mut os);
    let before = txn::fingerprint(&dep);
    // Hold an activity (read) guard, as an in-flight event shepherd would.
    // QuiescenceLock clones share the same lock, which sidesteps borrowing
    // `dep` while `prepare` needs it mutably.
    let quiescence = dep.meta().quiescence().clone();
    let _activity = quiescence.activity();
    let started = std::time::Instant::now();
    let aborted = txn::prepare(
        &mut dep,
        4,
        vec![ReconfigOp::RegisterMessage(registration(61))],
        Duration::from_millis(30),
        &mut os,
    )
    .expect_err("prepare must time out under activity");
    assert!(started.elapsed() < Duration::from_secs(2), "bounded wait");
    assert_eq!(aborted.reason, "quiesce_timeout");
    assert_eq!(txn::fingerprint(&dep), before);
    assert_eq!(os.counter("txn.quiesce_timeout"), 1);
}

/// Crash between prepare and commit: the node reboots with the transaction
/// doomed, and its first post-reboot quiescent point rolls back to the
/// checkpoint — the composition is never left half-wired.
#[test]
fn crash_between_prepare_and_commit_rolls_back_on_reboot() {
    let ms = |n: u64| SimTime::ZERO + SimDuration::from_millis(n);
    let plan = FaultPlan::builder(7)
        .crash_for(ms(2_500), NodeId(1), SimDuration::from_millis(2_500))
        .build();
    let mut world = World::builder()
        .topology(Topology::full(2))
        .seed(11)
        .fault_plan(plan)
        .build();
    let mut handles = Vec::new();
    for i in 0..2 {
        let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
        node.deployment_mut()
            .system_mut()
            .register_message(hello_registration());
        node.deployment_mut()
            .add_protocol_offline(neighbour_detection_cf(Default::default()))
            .unwrap();
        handles.push(node.handle());
        world.install_agent(NodeId(i), Box::new(node));
    }
    world.run_until(ms(1_000));
    let stack_before = handles[1].status().protocols.clone();

    // Prepare a transaction on node 1 and never commit it: the crash at
    // 2.5 s arrives first.
    handles[1].txn_ctl(manetkit::TxnCtl::Prepare {
        id: 9,
        ops: vec![ReconfigOp::AddProtocol(stateful_cf("extra".into(), 1))],
        requested: Some(world.now()),
        deadline: None,
        quiesce_within: Duration::from_millis(50),
    });
    world.run_until(ms(2_400));
    let report = handles[1].status().txn.expect("node reached prepare");
    assert_eq!(report.phase, TxnPhase::Prepared);
    assert_eq!(
        handles[1].status().protocols.len(),
        stack_before.len() + 1,
        "prepared composition is live while the txn is open"
    );

    // Crash at 2.5 s, reboot at 5 s; the doomed transaction must roll back
    // at the first post-reboot quiescent point.
    world.run_until(ms(7_000));
    let status = handles[1].status();
    assert!(status.alive);
    let report = status.txn.expect("rollback reported");
    assert_eq!(report.phase, TxnPhase::RolledBack);
    assert_eq!(status.protocols, stack_before, "checkpoint composition");
    let stats = world.stats();
    assert_eq!(stats.agent_counter("txn.rolled_back"), 1);
    assert_eq!(stats.agent_counter("txn.committed"), 0);
    // The ledger the model checker audits at every state holds at the
    // end of the fault run too: no transaction is open any more.
    manetkit::assert_fleet_conservation(&stats, 0);
}
