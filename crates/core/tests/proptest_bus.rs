//! Property-based tests of the unified event bus: per-protocol FIFO
//! ordering must hold under every [`ConcurrencyModel`], the three models
//! must deliver identical per-protocol event sequences, and a seeded
//! simulation must produce byte-identical [`WorldStats`](netsim::WorldStats)
//! run after run (the determinism guard for the dispatch telemetry).

use std::sync::{Arc, Mutex};

use manetkit::event::{ContextValue, Event, EventType, Payload};
use manetkit::neighbour::{hello_registration, neighbour_detection_cf, NeighbourConfig};
use manetkit::prelude::*;
use manetkit::protocol::{EventHandler, ManetProtocolCf, ProtoCtx, StateSlot};
use manetkit::registry::EventTuple;
use netsim::{NodeId, NodeOs, SimDuration, Topology, World};
use packetbb::Address;
use proptest::prelude::*;

const TYPES: [&str; 3] = ["BUS_A", "BUS_B", "BUS_C"];

/// Appends the sequence number of every delivered event to a shared log.
struct LogHandler {
    subs: Vec<EventType>,
    log: Arc<Mutex<Vec<u64>>>,
}

impl EventHandler for LogHandler {
    fn name(&self) -> &str {
        "log-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        self.subs.clone()
    }
    fn handle(&mut self, event: &Event, _state: &mut StateSlot, _ctx: &mut ProtoCtx<'_>) {
        if let Payload::Context(ContextValue::Custom(_, seq)) = &event.payload {
            self.log.lock().unwrap().push(*seq as u64);
        }
    }
}

/// Builds a deployment of logging consumer protocols; `subs[i]` lists the
/// indices into [`TYPES`] protocol `i` requires. Returns per-protocol logs.
fn logging_deployment(
    model: ConcurrencyModel,
    subs: &[Vec<usize>],
) -> (Deployment, Vec<Arc<Mutex<Vec<u64>>>>) {
    let mut dep = Deployment::new(model);
    let mut logs = Vec::new();
    for (i, type_idxs) in subs.iter().enumerate() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let types: Vec<EventType> = type_idxs
            .iter()
            .map(|t| EventType::named(TYPES[*t]))
            .collect();
        let mut tuple = EventTuple::new();
        for ty in &types {
            tuple = tuple.requires(*ty);
        }
        let cf = ManetProtocolCf::builder(format!("consumer{i}"))
            .tuple(tuple)
            .state(StateSlot::new(()))
            .handler(Box::new(LogHandler {
                subs: types,
                log: log.clone(),
            }))
            .build();
        dep.add_protocol_offline(cf).unwrap();
        logs.push(log);
    }
    (dep, logs)
}

fn seq_event(type_idx: usize, seq: u64) -> Event {
    Event {
        ty: EventType::named(TYPES[type_idx]),
        payload: Payload::Context(ContextValue::Custom("bus_seq", seq as f64)),
        meta: Default::default(),
    }
}

const MODELS: [ConcurrencyModel; 3] = [
    ConcurrencyModel::SingleThreaded,
    ConcurrencyModel::ThreadPerMessage { pool: 4 },
    ConcurrencyModel::ThreadPerProtocol,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the subscription sets and emission sequence, every protocol
    /// receives its events in emission order under every concurrency model.
    #[test]
    fn per_protocol_fifo_under_all_models(
        subs in proptest::collection::vec(
            proptest::collection::vec(0..TYPES.len(), 1..3), 1..4),
        emissions in proptest::collection::vec(0..TYPES.len(), 1..48),
    ) {
        for model in MODELS {
            let (mut dep, logs) = logging_deployment(model, &subs);
            let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
            dep.start(&mut os);
            let events: Vec<Event> = emissions
                .iter()
                .enumerate()
                .map(|(seq, t)| seq_event(*t, seq as u64))
                .collect();
            dep.dispatch(&mut os, events, None);
            for (i, log) in logs.iter().enumerate() {
                let seen = log.lock().unwrap();
                prop_assert!(
                    seen.windows(2).all(|w| w[0] < w[1]),
                    "{model:?}: consumer{i} saw out-of-order events: {seen:?}"
                );
                // Completeness: it saw exactly the emissions of its types.
                let expected: Vec<u64> = emissions
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| subs[i].contains(t))
                    .map(|(seq, _)| seq as u64)
                    .collect();
                prop_assert_eq!(
                    &*seen, &expected,
                    "{:?}: consumer{} log mismatch", model, i
                );
            }
        }
    }

    /// Reconfiguring between dispatch batches (the quiescent-point
    /// discipline: ops apply only when no event is mid-flight) never drops
    /// or reorders the surviving consumers' event streams — whatever the
    /// batch shapes and whatever transient protocols come and go.
    #[test]
    fn reconfig_between_batches_preserves_fifo_and_completeness(
        batches in proptest::collection::vec(
            proptest::collection::vec(0..TYPES.len(), 1..16), 2..5),
    ) {
        let subs = vec![vec![0, 1, 2], vec![1]];
        let (mut dep, logs) = logging_deployment(ConcurrencyModel::SingleThreaded, &subs);
        let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
        dep.start(&mut os);
        let mut seq = 0u64;
        let mut emitted: Vec<usize> = Vec::new();
        for (round, batch) in batches.iter().enumerate() {
            let events: Vec<Event> = batch
                .iter()
                .map(|t| {
                    emitted.push(*t);
                    let e = seq_event(*t, seq);
                    seq += 1;
                    e
                })
                .collect();
            dep.dispatch(&mut os, events, None);
            // Structural churn between batches: deploy a transient consumer
            // of TYPES[0] and retire it again. Neither op may disturb the
            // established consumers' routing.
            let name = format!("transient{round}");
            let cf = ManetProtocolCf::builder(name.clone())
                .tuple(EventTuple::new().requires(EventType::named(TYPES[0])))
                .state(StateSlot::new(()))
                .handler(Box::new(LogHandler {
                    subs: vec![EventType::named(TYPES[0])],
                    log: Arc::new(Mutex::new(Vec::new())),
                }))
                .build();
            dep.apply(ReconfigOp::AddProtocol(cf), &mut os).unwrap();
            dep.apply(ReconfigOp::RemoveProtocol { name }, &mut os).unwrap();
        }
        for (i, log) in logs.iter().enumerate() {
            let seen = log.lock().unwrap();
            let expected: Vec<u64> = emitted
                .iter()
                .enumerate()
                .filter(|(_, t)| subs[i].contains(t))
                .map(|(s, _)| s as u64)
                .collect();
            prop_assert_eq!(
                &*seen, &expected,
                "consumer{} dropped or reordered events across reconfigs", i
            );
        }
    }

    /// The fan-out never rebuilds the routing table: dispatching any event
    /// load leaves the rewire count where deployment-time wiring put it.
    #[test]
    fn dispatch_never_rewires(
        emissions in proptest::collection::vec(0..TYPES.len(), 1..32),
    ) {
        let subs = vec![vec![0], vec![0, 1], vec![2]];
        let (mut dep, _logs) = logging_deployment(ConcurrencyModel::SingleThreaded, &subs);
        let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
        dep.start(&mut os);
        let rewires = dep.manager().rewire_count();
        let events: Vec<Event> = emissions
            .iter()
            .enumerate()
            .map(|(seq, t)| seq_event(*t, seq as u64))
            .collect();
        dep.dispatch(&mut os, events, None);
        prop_assert_eq!(dep.manager().rewire_count(), rewires);
    }
}

/// One seeded neighbour-detection run; returns the stats snapshot.
fn seeded_run(seed: u64, model: ConcurrencyModel) -> netsim::WorldStats {
    let mut world = World::builder()
        .topology(Topology::line(3))
        .seed(seed)
        .build();
    for i in 0..3 {
        let mut node = ManetNode::new(model);
        let dep = node.deployment_mut();
        dep.system_mut().register_message(hello_registration());
        dep.add_protocol_offline(neighbour_detection_cf(NeighbourConfig::default()))
            .unwrap();
        world.install_agent(NodeId(i), Box::new(node));
    }
    world.run_for(SimDuration::from_secs(8));
    world.stats()
}

/// Determinism guard: a fixed seed yields byte-identical `WorldStats` —
/// including the `bus.*` telemetry counters — on every run and under every
/// concurrency model (the queue disciplines are deterministic).
#[test]
fn seeded_world_stats_are_identical_across_runs() {
    for seed in [7, 42, 99] {
        for model in MODELS {
            let a = seeded_run(seed, model);
            let b = seeded_run(seed, model);
            assert_eq!(a, b, "seed {seed} under {model:?} diverged");
        }
    }
}

/// The bus telemetry actually surfaces in `WorldStats::agent_counters`.
#[test]
fn bus_telemetry_reaches_world_stats() {
    let stats = seeded_run(7, ConcurrencyModel::SingleThreaded);
    assert!(stats.agent_counter("bus.dispatch_rounds") > 0);
    assert!(stats.agent_counter("bus.queue_depth_hwm") > 0);
    assert!(stats.agent_counter("bus.neighbour-detection.events_in") > 0);
    assert!(stats.agent_counter("bus.neighbour-detection.events_out") > 0);
}
