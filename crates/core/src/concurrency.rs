//! Pluggable concurrency models (§4.4).
//!
//! MANETKit keeps concurrency strictly orthogonal to protocol structure:
//! protocols are critical sections, and the *model* decides how events
//! originating from below are shepherded to them.
//!
//! Two artefacts live here:
//!
//! * [`ConcurrencyModel`] + [`DispatchQueue`] — the queue discipline used by
//!   a [`Deployment`](crate::node::Deployment) in the deterministic
//!   simulation: a single global FIFO (single-threaded and
//!   thread-per-message semantics) or per-protocol FIFO queues drained
//!   round-robin (thread-per-ManetProtocol semantics). Both preserve the
//!   paper's per-protocol FIFO ordering guarantee.
//! * [`ThroughputLab`] — a real-thread harness (crossbeam channels, one OS
//!   thread per worker) used by the concurrency benchmark to measure the
//!   throughput/latency trade-off among the three models outside the
//!   simulator.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use crate::event::Event;
use crate::manager::UnitId;

/// How events from below are shepherded to protocol CFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConcurrencyModel {
    /// One thread for the whole deployment; lowest overhead, lowest
    /// throughput, zero race conditions.
    #[default]
    SingleThreaded,
    /// A pool thread shepherds each event up the graph; highest throughput
    /// and overhead. FIFO order is still preserved per protocol.
    ThreadPerMessage {
        /// Number of shepherd threads in the pool.
        pool: usize,
    },
    /// Each protocol owns a dedicated thread and FIFO queue; intermediate
    /// overhead and throughput.
    ThreadPerProtocol,
}

/// Deterministic queue discipline for a deployment under a given model.
///
/// Events are queued as `Arc<Event>` so fanning one event out to N
/// subscribers shares a single allocation — [`DispatchQueue::push`] clones
/// the `Arc` (a reference-count bump), never the event.
#[derive(Debug)]
pub enum DispatchQueue {
    /// One global FIFO (single-threaded / thread-per-message semantics).
    Global(VecDeque<(UnitId, Arc<Event>)>),
    /// Per-unit FIFOs drained round-robin (thread-per-protocol semantics).
    PerUnit {
        /// One FIFO per unit id.
        queues: Vec<VecDeque<Arc<Event>>>,
        /// Round-robin cursor.
        cursor: usize,
    },
}

impl DispatchQueue {
    /// An empty queue for the given model.
    #[must_use]
    pub fn for_model(model: ConcurrencyModel) -> Self {
        match model {
            ConcurrencyModel::SingleThreaded | ConcurrencyModel::ThreadPerMessage { .. } => {
                DispatchQueue::Global(VecDeque::new())
            }
            ConcurrencyModel::ThreadPerProtocol => DispatchQueue::PerUnit {
                queues: Vec::new(),
                cursor: 0,
            },
        }
    }

    /// Enqueues an event for a unit (a reference-count bump per subscriber,
    /// not a deep clone).
    pub fn push(&mut self, unit: UnitId, event: Arc<Event>) {
        match self {
            DispatchQueue::Global(q) => q.push_back((unit, event)),
            DispatchQueue::PerUnit { queues, .. } => {
                if queues.len() <= unit {
                    queues.resize_with(unit + 1, VecDeque::new);
                }
                queues[unit].push_back(event);
            }
        }
    }

    /// Dequeues the next `(unit, event)` pair, or `None` when drained.
    pub fn pop(&mut self) -> Option<(UnitId, Arc<Event>)> {
        match self {
            DispatchQueue::Global(q) => q.pop_front(),
            DispatchQueue::PerUnit { queues, cursor } => {
                let n = queues.len();
                for step in 0..n {
                    let i = (*cursor + step) % n;
                    if let Some(ev) = queues[i].pop_front() {
                        *cursor = (i + 1) % n;
                        return Some((i, ev));
                    }
                }
                None
            }
        }
    }

    /// Whether any event is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            DispatchQueue::Global(q) => q.is_empty(),
            DispatchQueue::PerUnit { queues, .. } => queues.iter().all(VecDeque::is_empty),
        }
    }

    /// Number of pending `(unit, event)` deliveries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            DispatchQueue::Global(q) => q.len(),
            DispatchQueue::PerUnit { queues, .. } => queues.iter().map(VecDeque::len).sum(),
        }
    }
}

/// Result of one [`ThroughputLab`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct LabReport {
    /// Model measured.
    pub model: ConcurrencyModel,
    /// Wall time for the batch.
    pub elapsed: Duration,
    /// Messages per second.
    pub throughput: f64,
    /// Whether per-stage FIFO order was preserved (must always be true).
    pub order_preserved: bool,
    /// OS threads the run used (including the driver).
    pub threads_used: usize,
}

/// A real-thread harness comparing the three concurrency models on a
/// synthetic protocol pipeline.
///
/// Each of `stages` protocols applies `work_per_message` rounds of mixing
/// to a 64-bit token; messages must traverse every stage in FIFO order.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputLab {
    /// Number of protocol stages in the pipeline.
    pub stages: usize,
    /// Number of messages pushed through.
    pub messages: usize,
    /// Synthetic per-stage work (mixing rounds).
    pub work_per_message: u32,
}

impl Default for ThroughputLab {
    fn default() -> Self {
        ThroughputLab {
            stages: 3,
            messages: 10_000,
            work_per_message: 64,
        }
    }
}

fn mix(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
    }
    x
}

/// Admits waiters strictly in ticket order (blocking, not spinning).
struct Turnstile {
    turn: Mutex<usize>,
    cv: parking_lot::Condvar,
}

impl Turnstile {
    fn new() -> Self {
        Turnstile {
            turn: Mutex::new(0),
            cv: parking_lot::Condvar::new(),
        }
    }

    fn enter(&self, ticket: usize) {
        let mut turn = self.turn.lock();
        while *turn != ticket {
            self.cv.wait(&mut turn);
        }
    }

    fn leave(&self) {
        let mut turn = self.turn.lock();
        *turn += 1;
        self.cv.notify_all();
    }
}

/// One synthetic protocol: a critical section over an order log.
struct Stage {
    seen: Mutex<Vec<u64>>,
}

impl Stage {
    fn new() -> Self {
        Stage {
            seen: Mutex::new(Vec::new()),
        }
    }

    fn process(&self, seq: u64, work: u32) -> u64 {
        // The lock models the paper's "protocol is a critical section".
        let mut seen = self.seen.lock();
        seen.push(seq);
        // black_box keeps the synthetic work from being optimised away.
        std::hint::black_box(mix(std::hint::black_box(seq), work))
    }

    fn in_order(&self) -> bool {
        let seen = self.seen.lock();
        seen.windows(2).all(|w| w[0] < w[1])
    }
}

impl ThroughputLab {
    /// Runs the lab under one model.
    #[must_use]
    pub fn run(&self, model: ConcurrencyModel) -> LabReport {
        match model {
            ConcurrencyModel::SingleThreaded => self.run_single(),
            ConcurrencyModel::ThreadPerMessage { pool } => self.run_pool(pool.max(1)),
            ConcurrencyModel::ThreadPerProtocol => self.run_per_protocol(),
        }
    }

    fn stages_vec(&self) -> Vec<Arc<Stage>> {
        (0..self.stages).map(|_| Arc::new(Stage::new())).collect()
    }

    fn report(
        &self,
        model: ConcurrencyModel,
        start: Instant,
        stages: &[Arc<Stage>],
        threads_used: usize,
    ) -> LabReport {
        let elapsed = start.elapsed();
        LabReport {
            model,
            elapsed,
            throughput: self.messages as f64 / elapsed.as_secs_f64().max(1e-9),
            order_preserved: stages.iter().all(|s| s.in_order()),
            threads_used,
        }
    }

    fn run_single(&self) -> LabReport {
        let stages = self.stages_vec();
        let start = Instant::now();
        for seq in 0..self.messages as u64 {
            for s in &stages {
                s.process(seq, self.work_per_message);
            }
        }
        self.report(ConcurrencyModel::SingleThreaded, start, &stages, 1)
    }

    fn run_pool(&self, pool: usize) -> LabReport {
        let stages = self.stages_vec();
        let (tx, rx) = channel::unbounded::<u64>();
        // FIFO order under a pool requires per-stage sequencing: workers
        // claim messages in order and a turnstile per stage admits them in
        // that order — exactly like shepherd threads queueing on the
        // protocol's critical section in arrival order.
        let turnstiles: Arc<Vec<Turnstile>> =
            Arc::new((0..self.stages).map(|_| Turnstile::new()).collect());
        let start = Instant::now();
        let work = self.work_per_message;
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let rx = rx.clone();
                let stages = stages.clone();
                let turnstiles = turnstiles.clone();
                scope.spawn(move || {
                    while let Ok(seq) = rx.recv() {
                        for (i, s) in stages.iter().enumerate() {
                            turnstiles[i].enter(seq as usize);
                            s.process(seq, work);
                            turnstiles[i].leave();
                        }
                    }
                });
            }
            for seq in 0..self.messages as u64 {
                tx.send(seq).expect("workers alive");
            }
            drop(tx);
        });
        self.report(
            ConcurrencyModel::ThreadPerMessage { pool },
            start,
            &stages,
            pool + 1,
        )
    }

    fn run_per_protocol(&self) -> LabReport {
        let stages = self.stages_vec();
        // Chain of channels: driver -> stage0 -> stage1 -> ... Each stage
        // thread owns its FIFO queue, the thread-per-ManetProtocol model.
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..self.stages {
            let (tx, rx) = channel::unbounded::<u64>();
            txs.push(tx);
            rxs.push(rx);
        }
        let start = Instant::now();
        let work = self.work_per_message;
        std::thread::scope(|scope| {
            for (i, rx) in rxs.into_iter().enumerate() {
                let stage = stages[i].clone();
                let next_tx = txs.get(i + 1).cloned();
                scope.spawn(move || {
                    while let Ok(seq) = rx.recv() {
                        stage.process(seq, work);
                        if let Some(tx) = &next_tx {
                            let _ = tx.send(seq);
                        }
                    }
                });
            }
            let first = txs[0].clone();
            drop(txs);
            for seq in 0..self.messages as u64 {
                first.send(seq).expect("stage thread alive");
            }
            drop(first);
        });
        self.report(
            ConcurrencyModel::ThreadPerProtocol,
            start,
            &stages,
            self.stages + 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::types;

    #[test]
    fn global_queue_is_fifo() {
        let mut q = DispatchQueue::for_model(ConcurrencyModel::SingleThreaded);
        q.push(1, Arc::new(Event::signal(types::tc_in())));
        q.push(2, Arc::new(Event::signal(types::hello_in())));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().0, 1);
        assert_eq!(q.pop().unwrap().0, 2);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn per_unit_queue_round_robins_but_keeps_per_unit_order() {
        let mut q = DispatchQueue::for_model(ConcurrencyModel::ThreadPerProtocol);
        q.push(0, Arc::new(Event::signal(types::tc_in())));
        q.push(0, Arc::new(Event::signal(types::tc_out())));
        q.push(1, Arc::new(Event::signal(types::hello_in())));
        assert_eq!(q.len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 3);
        // Per-unit order preserved.
        let unit0: Vec<_> = order.iter().filter(|(u, _)| *u == 0).collect();
        assert_eq!(unit0[0].1.ty, types::tc_in());
        assert_eq!(unit0[1].1.ty, types::tc_out());
    }

    #[test]
    fn fan_out_shares_one_allocation() {
        let mut q = DispatchQueue::for_model(ConcurrencyModel::SingleThreaded);
        let ev = Arc::new(Event::signal(types::nhood_change()));
        for unit in 0..8 {
            q.push(unit, Arc::clone(&ev));
        }
        // One allocation, nine handles (ours + eight queued).
        assert_eq!(Arc::strong_count(&ev), 9);
        while let Some((_, popped)) = q.pop() {
            assert!(Arc::ptr_eq(&popped, &ev));
        }
    }

    #[test]
    fn lab_all_models_preserve_fifo_order() {
        let lab = ThroughputLab {
            stages: 3,
            messages: 2_000,
            work_per_message: 8,
        };
        for model in [
            ConcurrencyModel::SingleThreaded,
            ConcurrencyModel::ThreadPerMessage { pool: 4 },
            ConcurrencyModel::ThreadPerProtocol,
        ] {
            let report = lab.run(model);
            assert!(report.order_preserved, "{model:?} violated FIFO order");
            assert!(report.throughput > 0.0);
        }
    }

    #[test]
    fn lab_thread_counts_match_model() {
        let lab = ThroughputLab {
            stages: 2,
            messages: 100,
            work_per_message: 1,
        };
        assert_eq!(lab.run(ConcurrencyModel::SingleThreaded).threads_used, 1);
        assert_eq!(
            lab.run(ConcurrencyModel::ThreadPerMessage { pool: 3 })
                .threads_used,
            4
        );
        assert_eq!(lab.run(ConcurrencyModel::ThreadPerProtocol).threads_used, 3);
    }
}
