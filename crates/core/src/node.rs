//! Per-node MANETKit deployments: the MANETKit CF itself.
//!
//! A [`Deployment`] composes the [`SystemCf`], any number of
//! [`ManetProtocolCf`]s and the [`FrameworkManager`] into one node-resident
//! framework instance, and drives event dispatch under the configured
//! [`ConcurrencyModel`]. [`ManetNode`] adapts a deployment to
//! [`netsim::RoutingAgent`] so it can live on a simulated node, and exposes
//! a [`NodeHandle`] through which external software enacts runtime
//! reconfiguration at quiescent points (§4.5).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use netsim::{ContextSample, FilterEvent, NodeOs};
use opencom::{
    AnyInterface, Component, ComponentFramework, ComponentId, IntegrityRule, InterfaceId,
    PendingChange,
};
use packetbb::Address;
use parking_lot::Mutex;

use crate::concurrency::{ConcurrencyModel, DispatchQueue};
use crate::event::{ContextValue, Event, EventType, Payload};
use crate::manager::{FrameworkManager, UnitId};
use crate::protocol::{CtxOutputs, ManetProtocolCf, ProtoCtx, ProtocolError, ProtocolStats};
use crate::registry::EventTuple;
use crate::system::{MessageRegistration, SystemCf};
use crate::telemetry::{intern_name, BusTelemetry};

/// Interface id a reactive protocol's reflective adapter exposes; the
/// default integrity rules key on it.
pub const REACTIVE_IFACE: &str = "IReactiveRouting";

/// Errors from deployment operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum DeployError {
    /// The reflective meta-CF (integrity rules) vetoed the change.
    Integrity(opencom::ComponentError),
    /// A fine-grained protocol operation failed.
    Protocol(ProtocolError),
    /// No protocol with the given name is deployed.
    NoSuchProtocol(String),
    /// A protocol with the given name is already deployed.
    DuplicateProtocol(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Integrity(e) => write!(f, "integrity veto: {e}"),
            DeployError::Protocol(e) => write!(f, "protocol operation failed: {e}"),
            DeployError::NoSuchProtocol(n) => write!(f, "no protocol named {n:?}"),
            DeployError::DuplicateProtocol(n) => {
                write!(f, "protocol {n:?} already deployed")
            }
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Integrity(e) => Some(e),
            DeployError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<opencom::ComponentError> for DeployError {
    fn from(e: opencom::ComponentError) -> Self {
        DeployError::Integrity(e)
    }
}

impl From<ProtocolError> for DeployError {
    fn from(e: ProtocolError) -> Self {
        DeployError::Protocol(e)
    }
}

/// A runtime reconfiguration request, enacted at the next quiescent point.
pub enum ReconfigOp {
    /// Deploy an additional protocol (started immediately).
    AddProtocol(ManetProtocolCf),
    /// Undeploy a protocol (stopped, timers cancelled).
    RemoveProtocol {
        /// Name of the protocol to remove.
        name: String,
    },
    /// Replace one protocol with another, optionally carrying the S element
    /// over.
    SwitchProtocol {
        /// Protocol to retire.
        old: String,
        /// Replacement protocol.
        new: ManetProtocolCf,
        /// Whether to transplant the old protocol's state slot.
        transfer_state: bool,
    },
    /// Replace a protocol's event tuple (declarative rewiring).
    UpdateTuple {
        /// Target protocol.
        protocol: String,
        /// New tuple.
        tuple: EventTuple,
    },
    /// Run an arbitrary fine-grained mutation against a protocol CF
    /// (replace handlers/forwarder/state); the wiring is re-derived
    /// afterwards.
    Mutate {
        /// Target protocol.
        protocol: String,
        /// The mutation, run at the quiescent point.
        op: Box<dyn FnOnce(&mut ManetProtocolCf) + Send>,
    },
    /// Add or replace a System CF message registration.
    RegisterMessage(MessageRegistration),
    /// Run an arbitrary mutation against the System CF (load plug-ins such
    /// as NetLink or PowerStatus); the System tuple is re-derived
    /// afterwards.
    MutateSystem {
        /// The mutation, run at the quiescent point.
        op: Box<dyn FnOnce(&mut SystemCf) + Send>,
    },
}

impl fmt::Debug for ReconfigOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigOp::AddProtocol(cf) => write!(f, "AddProtocol({})", cf.name()),
            ReconfigOp::RemoveProtocol { name } => write!(f, "RemoveProtocol({name})"),
            ReconfigOp::SwitchProtocol { old, new, .. } => {
                write!(f, "SwitchProtocol({old} -> {})", new.name())
            }
            ReconfigOp::UpdateTuple { protocol, .. } => write!(f, "UpdateTuple({protocol})"),
            ReconfigOp::Mutate { protocol, .. } => write!(f, "Mutate({protocol})"),
            ReconfigOp::RegisterMessage(r) => write!(f, "RegisterMessage({})", r.msg_type),
            ReconfigOp::MutateSystem { .. } => write!(f, "MutateSystem"),
        }
    }
}

/// Aggregate counters of a deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeploymentStats {
    /// Events routed through the Framework Manager.
    pub events_routed: u64,
    /// Dispatch rounds (external stimuli processed).
    pub dispatch_rounds: u64,
    /// Reconfiguration operations applied.
    pub reconfigs_applied: u64,
    /// Per-protocol counters.
    pub protocols: Vec<(String, ProtocolStats)>,
}

/// Where a node stands in its most recent reconfiguration transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPhase {
    /// Ops applied, undo log live, awaiting commit or abort.
    Prepared,
    /// Committed; the undo log is retained for a possible health revert.
    Committed,
    /// Prepare failed (rollback, if any was needed, already ran).
    Aborted,
    /// A prepared transaction was rolled back on coordinator orders (or
    /// because the node crashed while it was open).
    RolledBack,
    /// A committed transaction was backed out by the health gate.
    Reverted,
}

impl fmt::Display for TxnPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnPhase::Prepared => "prepared",
            TxnPhase::Committed => "committed",
            TxnPhase::Aborted => "aborted",
            TxnPhase::RolledBack => "rolled_back",
            TxnPhase::Reverted => "reverted",
        })
    }
}

/// Outcome of the node's most recent transaction, surfaced through
/// [`NodeStatus::txn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnReport {
    /// Transaction id (coordinator-assigned).
    pub id: u64,
    /// Current phase.
    pub phase: TxnPhase,
    /// Reason/detail for aborts and rollbacks; empty otherwise.
    pub detail: String,
}

/// A status snapshot shared with [`NodeHandle`]s.
#[derive(Debug, Clone)]
pub struct NodeStatus {
    /// Deployed protocol names, in stack order.
    pub protocols: Vec<String>,
    /// Reconfiguration operations applied so far.
    pub reconfigs_applied: u64,
    /// Most recent reconfiguration failure, if any.
    pub last_error: Option<String>,
    /// Whether the node is running. Set to `false` when the simulated node
    /// crashes (fault injection); back to `true` once the rebooted node
    /// publishes its first status. Operations enqueued while dead stay
    /// pending and are applied at the first post-reboot quiescent point.
    pub alive: bool,
    /// The most recent transaction's outcome (`None` until the node first
    /// participates in one).
    pub txn: Option<TxnReport>,
    /// Deployment counters.
    pub stats: DeploymentStats,
    /// [`structural_hash`](crate::txn::structural_hash) of the live
    /// composition, published only when
    /// [`ManetNode::set_publish_composition`] is on (the hash walk is not
    /// free, and only the model checker compares compositions per step).
    pub composition_hash: Option<u64>,
}

impl Default for NodeStatus {
    fn default() -> Self {
        NodeStatus {
            protocols: Vec::new(),
            reconfigs_applied: 0,
            last_error: None,
            alive: true,
            txn: None,
            stats: DeploymentStats::default(),
            composition_hash: None,
        }
    }
}

struct Slot {
    cf: ManetProtocolCf,
    unit: UnitId,
    component: ComponentId,
    /// The protocol name, interned once so the delivery hot path can hand
    /// a `&'static str` to [`ProtoCtx`] without a per-event `String`.
    name: &'static str,
}

/// A per-node MANETKit framework instance.
pub struct Deployment {
    system: SystemCf,
    system_unit: UnitId,
    manager: FrameworkManager,
    slots: Vec<Slot>,
    meta: ComponentFramework,
    concurrency: ConcurrencyModel,
    timers: TimerTable,
    stats: DeploymentStats,
    telemetry: BusTelemetry,
    /// Telemetry state at the last [`flush_telemetry`](Self::flush_telemetry)
    /// call; flushing bumps OS counters by the delta since.
    telemetry_flushed: BusTelemetry,
    /// Interned `bus.<unit>.events_{in,out}` counter names, indexed by unit
    /// id and filled lazily on first flush.
    counter_names: Vec<Option<(&'static str, &'static str)>>,
    started: bool,
}

#[derive(Debug, Default)]
struct TimerTable {
    next_token: u64,
    by_token: HashMap<u64, (String, EventType)>,
    by_key: HashMap<(String, EventType), u64>,
}

impl TimerTable {
    fn arm(&mut self, protocol: &str, ty: EventType) -> (u64, Option<u64>) {
        self.next_token += 1;
        let token = self.next_token;
        let old = self.by_key.insert((protocol.to_string(), ty), token);
        if let Some(old_token) = old {
            self.by_token.remove(&old_token);
        }
        self.by_token.insert(token, (protocol.to_string(), ty));
        (token, old)
    }

    fn cancel(&mut self, protocol: &str, ty: &EventType) -> Option<u64> {
        let token = self.by_key.remove(&(protocol.to_string(), *ty))?;
        self.by_token.remove(&token);
        Some(token)
    }

    fn fire(&mut self, token: u64) -> Option<(String, EventType)> {
        let entry = self.by_token.remove(&token)?;
        self.by_key.remove(&(entry.0.clone(), entry.1));
        Some(entry)
    }

    fn drop_protocol(&mut self, protocol: &str) -> Vec<u64> {
        let tokens: Vec<u64> = self
            .by_key
            .iter()
            .filter(|((p, _), _)| p == protocol)
            .map(|(_, t)| *t)
            .collect();
        for t in &tokens {
            if let Some((p, ty)) = self.by_token.remove(t) {
                self.by_key.remove(&(p, ty));
            }
        }
        tokens
    }
}

impl Deployment {
    /// An empty deployment under the given concurrency model, with the
    /// default integrity rules ("at most one reactive protocol", unique
    /// protocol names) installed.
    #[must_use]
    pub fn new(concurrency: ConcurrencyModel) -> Self {
        let mut manager = FrameworkManager::new();
        let system_unit = manager.register("system", EventTuple::new());
        let meta = ComponentFramework::new("manetkit");
        meta.add_rule(IntegrityRule::new(
            "unique-protocol-names",
            |arch, change| match change {
                PendingChange::Load { name } if arch.count_named(name) >= 1 => {
                    Err(format!("a protocol named {name:?} is already deployed"))
                }
                _ => Ok(()),
            },
        ));
        Deployment {
            system: SystemCf::new(),
            system_unit,
            manager,
            slots: Vec::new(),
            meta,
            concurrency,
            timers: TimerTable::default(),
            stats: DeploymentStats::default(),
            telemetry: BusTelemetry::new(),
            telemetry_flushed: BusTelemetry::new(),
            counter_names: Vec::new(),
            started: false,
        }
    }

    /// The System CF (register messages, enable plug-ins) — changes take
    /// effect at the next [`refresh_system_tuple`](Self::refresh_system_tuple).
    #[must_use]
    pub fn system_mut(&mut self) -> &mut SystemCf {
        &mut self.system
    }

    /// Read access to the System CF.
    #[must_use]
    pub fn system(&self) -> &SystemCf {
        &self.system
    }

    /// Re-derives the System CF's tuple after plug-in changes.
    pub fn refresh_system_tuple(&mut self) {
        self.manager
            .update_tuple(self.system_unit, self.system.tuple());
    }

    /// The framework manager (wiring inspection, context concentrator).
    #[must_use]
    pub fn manager(&self) -> &FrameworkManager {
        &self.manager
    }

    /// The reflective meta-CF (architecture meta-model over deployed
    /// protocols).
    #[must_use]
    pub fn meta(&self) -> &ComponentFramework {
        &self.meta
    }

    /// The configured concurrency model.
    #[must_use]
    pub fn concurrency(&self) -> ConcurrencyModel {
        self.concurrency
    }

    /// Selects a different concurrency model (takes effect on the next
    /// dispatch round).
    pub fn set_concurrency(&mut self, model: ConcurrencyModel) {
        self.concurrency = model;
    }

    /// Names of deployed protocols in stack order.
    #[must_use]
    pub fn protocol_names(&self) -> Vec<String> {
        self.slots.iter().map(|s| s.cf.name().to_string()).collect()
    }

    /// Read access to a deployed protocol CF.
    #[must_use]
    pub fn protocol(&self, name: &str) -> Option<&ManetProtocolCf> {
        self.slots
            .iter()
            .find(|s| s.cf.name() == name)
            .map(|s| &s.cf)
    }

    /// Dispatch telemetry (per-unit event counters, queue high-water mark,
    /// wall-clock dispatch latency).
    #[must_use]
    pub fn telemetry(&self) -> &BusTelemetry {
        &self.telemetry
    }

    /// Flushes the deterministic telemetry counters into the OS counter
    /// table (surfacing them in `WorldStats::agent_counters` under `bus.*`
    /// names). Bumps by the delta since the previous flush, so calling after
    /// every callback is cheap and idempotent. Wall-clock dispatch latency
    /// is deliberately excluded: it would differ between otherwise identical
    /// runs.
    pub fn flush_telemetry(&mut self, os: &mut NodeOs) {
        let rounds = self.telemetry.dispatch_rounds - self.telemetry_flushed.dispatch_rounds;
        os.bump_by("bus.dispatch_rounds", rounds);
        let hwm = self.telemetry.queue_depth_hwm as u64;
        let flushed_hwm = self.telemetry_flushed.queue_depth_hwm as u64;
        os.bump_by("bus.queue_depth_hwm", hwm - flushed_hwm);
        for (unit, counters) in self.telemetry.units().iter().enumerate() {
            let previous = self.telemetry_flushed.unit(unit);
            let delta_in = counters.events_in - previous.events_in;
            let delta_out = counters.events_out - previous.events_out;
            if delta_in == 0 && delta_out == 0 {
                continue;
            }
            if self.counter_names.len() <= unit {
                self.counter_names.resize(unit + 1, None);
            }
            let (in_name, out_name) = match self.counter_names[unit] {
                Some(names) => names,
                None => {
                    let Some(name) = self.manager.unit_name(unit) else {
                        continue;
                    };
                    let names = (
                        intern_name(&format!("bus.{name}.events_in")),
                        intern_name(&format!("bus.{name}.events_out")),
                    );
                    self.counter_names[unit] = Some(names);
                    names
                }
            };
            os.bump_by(in_name, delta_in);
            os.bump_by(out_name, delta_out);
        }
        self.telemetry_flushed = self.telemetry.clone();
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> DeploymentStats {
        let mut s = self.stats.clone();
        s.protocols = self
            .slots
            .iter()
            .map(|slot| (slot.cf.name().to_string(), slot.cf.stats()))
            .collect();
        s
    }

    /// Deploys a protocol. When the deployment is already started the
    /// protocol starts immediately (its source timers arm).
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, a second reactive protocol, or integrity
    /// rule veto.
    pub fn add_protocol(
        &mut self,
        cf: ManetProtocolCf,
        os: &mut NodeOs,
    ) -> Result<(), DeployError> {
        self.add_protocol_offline(cf)?;
        if self.started {
            let idx = self.slots.len() - 1;
            self.start_protocol(idx, os);
            self.drain(os);
        }
        Ok(())
    }

    /// Deploys a protocol before the node has access to an OS (pre-install
    /// assembly). The protocol starts when the deployment starts.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`add_protocol`](Self::add_protocol).
    pub fn add_protocol_offline(&mut self, cf: ManetProtocolCf) -> Result<(), DeployError> {
        self.try_add_protocol_offline(cf).map_err(|(_, e)| e)
    }

    /// Like [`add_protocol_offline`](Self::add_protocol_offline), but hands
    /// the protocol CF back on failure instead of dropping it — the
    /// transactional path, where a rejected CF (and the state it may carry)
    /// must survive the abort.
    ///
    /// # Errors
    ///
    /// Returns the untouched CF alongside the failure.
    // The Err variant is deliberately the full CF: the caller re-owns it to
    // reinstate carried state on abort, so boxing would only move the cost.
    #[allow(clippy::result_large_err)]
    pub fn try_add_protocol_offline(
        &mut self,
        cf: ManetProtocolCf,
    ) -> Result<(), (ManetProtocolCf, DeployError)> {
        let at = self.slots.len();
        self.try_insert_protocol_offline(at, cf)
    }

    /// Inserts a protocol at stack position `at` (used by transactional
    /// rollback to reinstate a removed protocol in its original position),
    /// returning the CF on failure.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_insert_protocol_offline(
        &mut self,
        at: usize,
        cf: ManetProtocolCf,
    ) -> Result<(), (ManetProtocolCf, DeployError)> {
        if self.slots.iter().any(|s| s.cf.name() == cf.name()) {
            let err = DeployError::DuplicateProtocol(cf.name().to_string());
            return Err((cf, err));
        }
        if cf.is_reactive() && self.slots.iter().any(|s| s.cf.is_reactive()) {
            let err = DeployError::Integrity(opencom::ComponentError::IntegrityViolation {
                rule: "one-reactive-protocol".into(),
                reason: "a reactive routing protocol is already deployed".into(),
            });
            return Err((cf, err));
        }
        let adapter = ProtocolAdapter::from_cf(&cf);
        let component = match self.meta.insert(Arc::new(adapter)) {
            Ok(id) => id,
            Err(e) => return Err((cf, e.into())),
        };
        let unit = self
            .manager
            .register(cf.name().to_string(), cf.tuple().clone());
        let name = intern_name(cf.name());
        let at = at.min(self.slots.len());
        self.slots.insert(
            at,
            Slot {
                cf,
                unit,
                component,
                name,
            },
        );
        Ok(())
    }

    /// Online variant of [`try_insert_protocol_offline`]: the protocol
    /// starts immediately when the deployment is running.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_insert_protocol(
        &mut self,
        at: usize,
        cf: ManetProtocolCf,
        os: &mut NodeOs,
    ) -> Result<(), (ManetProtocolCf, DeployError)> {
        let at = at.min(self.slots.len());
        self.try_insert_protocol_offline(at, cf)?;
        if self.started {
            self.start_protocol(at, os);
            self.drain(os);
        }
        Ok(())
    }

    /// Stack position of the named protocol.
    pub(crate) fn protocol_position(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.cf.name() == name)
    }

    /// Replaces a protocol's tuple, returning the previous one (the undo
    /// artefact for transactional rollback).
    pub(crate) fn swap_protocol_tuple(
        &mut self,
        protocol: &str,
        tuple: EventTuple,
    ) -> Result<EventTuple, DeployError> {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.cf.name() == protocol)
            .ok_or_else(|| DeployError::NoSuchProtocol(protocol.to_string()))?;
        let old = slot.cf.tuple().clone();
        slot.cf.set_tuple(tuple.clone());
        self.manager.update_tuple(slot.unit, tuple);
        Ok(old)
    }

    /// Undeploys a protocol, cancelling its timers.
    ///
    /// # Errors
    ///
    /// Fails when the protocol is unknown or the meta-CF vetoes removal.
    pub fn remove_protocol(
        &mut self,
        name: &str,
        os: &mut NodeOs,
    ) -> Result<ManetProtocolCf, DeployError> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.cf.name() == name)
            .ok_or_else(|| DeployError::NoSuchProtocol(name.to_string()))?;
        self.meta.remove(self.slots[idx].component)?;
        // Give the protocol its shutdown hook (kernel-route cleanup etc.).
        {
            let proto_name = self.slots[idx].cf.name().to_string();
            let mut ctx = ProtoCtx::new(os, &proto_name);
            self.slots[idx].cf.stop(&mut ctx);
            let out = ctx.take_outputs();
            drop(ctx);
            // Emitted events are dropped (the protocol is leaving); direct
            // sends still flush so goodbye messages could go out.
            for (dst, msg) in out.sends {
                self.system.send_direct(msg, dst);
            }
            self.system.flush(os);
        }
        for token in self.timers.drop_protocol(name) {
            os.cancel_timer(token);
        }
        let slot = self.slots.remove(idx);
        self.manager.deactivate(slot.unit);
        Ok(slot.cf)
    }

    /// Applies one reconfiguration operation (at a quiescent point — no
    /// event is in flight when this is called).
    ///
    /// # Errors
    ///
    /// Propagates failures of the underlying operation; the deployment is
    /// left unchanged on error.
    pub fn apply(&mut self, op: ReconfigOp, os: &mut NodeOs) -> Result<(), DeployError> {
        match op {
            ReconfigOp::AddProtocol(cf) => {
                self.add_protocol(cf, os)?;
                os.trace_reconfig_apply("add_protocol");
            }
            ReconfigOp::RemoveProtocol { name } => {
                self.remove_protocol(&name, os)?;
                os.trace_reconfig_apply("remove_protocol");
            }
            ReconfigOp::SwitchProtocol {
                old,
                new,
                transfer_state,
            } => {
                let mut old_cf = self.remove_protocol(&old, os)?;
                let mut new = new;
                if transfer_state {
                    new.replace_state(old_cf.take_state());
                }
                os.trace_state_transfer("switch_protocol", transfer_state);
                self.add_protocol(new, os)?;
                os.trace_rebind("switch_protocol");
            }
            ReconfigOp::UpdateTuple { protocol, tuple } => {
                let slot = self
                    .slots
                    .iter_mut()
                    .find(|s| s.cf.name() == protocol)
                    .ok_or(DeployError::NoSuchProtocol(protocol))?;
                slot.cf.set_tuple(tuple.clone());
                self.manager.update_tuple(slot.unit, tuple);
                os.trace_rebind("update_tuple");
            }
            ReconfigOp::Mutate { protocol, op } => {
                let slot = self
                    .slots
                    .iter_mut()
                    .find(|s| s.cf.name() == protocol)
                    .ok_or_else(|| DeployError::NoSuchProtocol(protocol.clone()))?;
                op(&mut slot.cf);
                // The mutation may have changed the tuple; re-derive wiring.
                let tuple = slot.cf.tuple().clone();
                self.manager.update_tuple(slot.unit, tuple);
                // Re-arm timers so sources added by the mutation run.
                if self.started {
                    let idx = self
                        .slots
                        .iter()
                        .position(|s| s.cf.name() == protocol)
                        .expect("slot still present");
                    self.start_protocol(idx, os);
                }
                os.trace_rebind("mutate");
            }
            ReconfigOp::RegisterMessage(reg) => {
                self.system.register_message(reg);
                self.refresh_system_tuple();
                os.trace_rebind("register_message");
            }
            ReconfigOp::MutateSystem { op } => {
                op(&mut self.system);
                self.refresh_system_tuple();
                os.trace_rebind("mutate_system");
            }
        }
        self.stats.reconfigs_applied += 1;
        Ok(())
    }

    // ---- lifecycle & stimuli ----------------------------------------------

    /// Starts the deployment: derives the System tuple and starts every
    /// protocol.
    pub fn start(&mut self, os: &mut NodeOs) {
        self.refresh_system_tuple();
        self.started = true;
        for idx in 0..self.slots.len() {
            self.start_protocol(idx, os);
        }
        self.drain(os);
    }

    /// Stops every protocol (cancels timers).
    pub fn stop(&mut self, os: &mut NodeOs) {
        for idx in 0..self.slots.len() {
            let name = self.slots[idx].name;
            let mut ctx = ProtoCtx::new(os, name);
            self.slots[idx].cf.stop(&mut ctx);
            let out = ctx.take_outputs();
            drop(ctx);
            self.apply_outputs(idx, out, os);
        }
        self.started = false;
    }

    fn start_protocol(&mut self, idx: usize, os: &mut NodeOs) {
        let name = self.slots[idx].name;
        let mut ctx = ProtoCtx::new(os, name);
        self.slots[idx].cf.start(&mut ctx);
        let out = ctx.take_outputs();
        drop(ctx);
        self.apply_outputs(idx, out, os);
    }

    /// A control frame arrived.
    pub fn on_frame(&mut self, os: &mut NodeOs, from: Address, bytes: &[u8]) {
        let events = self.system.rx(from, bytes);
        self.dispatch(os, events, Some(self.system_unit));
    }

    /// A timer token fired.
    pub fn on_timer(&mut self, os: &mut NodeOs, token: u64) {
        let Some((protocol, ty)) = self.timers.fire(token) else {
            return; // stale timer of a removed protocol
        };
        let Some(idx) = self.slots.iter().position(|s| s.cf.name() == protocol) else {
            return;
        };
        let mut ctx = ProtoCtx::new(os, &protocol);
        self.slots[idx].cf.on_timer(&ty, &mut ctx);
        let out = ctx.take_outputs();
        drop(ctx);
        self.apply_outputs(idx, out, os);
        self.drain(os);
    }

    /// A netfilter / link-layer event arrived.
    pub fn on_filter_event(&mut self, os: &mut NodeOs, event: &FilterEvent) {
        let events = self.system.filter_event(event);
        self.dispatch(os, events, Some(self.system_unit));
    }

    /// A context sample arrived.
    pub fn on_context(&mut self, os: &mut NodeOs, sample: &ContextSample) {
        let events = self.system.context_event(sample);
        self.dispatch(os, events, Some(self.system_unit));
    }

    // ---- dispatch core -----------------------------------------------------

    /// Routes `events` (emitted by `origin`) and processes the resulting
    /// queue to quiescence, then flushes aggregated transmissions.
    pub fn dispatch(&mut self, os: &mut NodeOs, events: Vec<Event>, origin: Option<UnitId>) {
        self.stats.dispatch_rounds += 1;
        let started = std::time::Instant::now();
        let mut queue = DispatchQueue::for_model(self.concurrency);
        for ev in events {
            self.route_event(&mut queue, ev, origin);
        }
        while let Some((unit, event)) = queue.pop() {
            self.deliver_one(&mut queue, unit, &event, os);
        }
        self.system.flush(os);
        self.telemetry.record_round(started.elapsed());
    }

    fn drain(&mut self, os: &mut NodeOs) {
        self.dispatch(os, Vec::new(), None);
    }

    fn route_event(&mut self, queue: &mut DispatchQueue, mut event: Event, origin: Option<UnitId>) {
        // Feed the context concentrator.
        if let Payload::Context(value) = &event.payload {
            let key = match value {
                ContextValue::Battery(_) => "battery",
                ContextValue::LinkQuality(..) => "link_quality",
                ContextValue::PacketLoss(_) => "packet_loss",
                ContextValue::Custom(name, _) => name,
            };
            self.manager.record_context(key, value.clone());
        }
        if event.meta.origin.is_none() {
            event.meta.origin = origin
                .and_then(|o| self.manager.unit_name(o))
                .map(str::to_string);
        }
        if let Some(o) = origin {
            self.telemetry.record_out(o);
        }
        // Wrap once; every subscriber shares this allocation. Routing walks
        // the precomputed table without allocating a recipient list.
        let shared = Arc::new(event);
        let Deployment { manager, stats, .. } = self;
        manager.route_for_each(shared.ty, origin, |target| {
            stats.events_routed += 1;
            queue.push(target, Arc::clone(&shared));
        });
        self.telemetry.observe_queue_depth(queue.len());
    }

    fn deliver_one(
        &mut self,
        queue: &mut DispatchQueue,
        unit: UnitId,
        event: &Event,
        os: &mut NodeOs,
    ) {
        self.telemetry.record_in(unit);
        os.trace_bus_deliver(event.ty.as_str(), unit as u64, queue.len() as u64);
        if unit == self.system_unit {
            self.system.consume(event, os);
            return;
        }
        let Some(idx) = self.slots.iter().position(|s| s.unit == unit) else {
            return; // unit removed while event in flight
        };
        let name = self.slots[idx].name;
        let mut ctx = ProtoCtx::new(os, name);
        self.slots[idx].cf.deliver(event, &mut ctx);
        let out = ctx.take_outputs();
        drop(ctx);
        let origin_unit = self.slots[idx].unit;
        for ev in out.emitted {
            self.route_event(queue, ev, Some(origin_unit));
        }
        self.apply_side_effects(idx, out.sends, out.timer_sets, out.timer_cancels, os);
    }

    /// Applies non-event outputs and routes emitted events through a fresh
    /// dispatch (used outside an active queue, e.g. timer handling).
    fn apply_outputs(&mut self, idx: usize, out: CtxOutputs, os: &mut NodeOs) {
        let started = std::time::Instant::now();
        let origin_unit = self.slots[idx].unit;
        let mut queue = DispatchQueue::for_model(self.concurrency);
        for ev in out.emitted {
            self.route_event(&mut queue, ev, Some(origin_unit));
        }
        while let Some((unit, event)) = queue.pop() {
            self.deliver_one(&mut queue, unit, &event, os);
        }
        self.apply_side_effects(idx, out.sends, out.timer_sets, out.timer_cancels, os);
        self.system.flush(os);
        self.telemetry.record_round(started.elapsed());
    }

    /// Credits `n` reconfiguration ops to the counters (the transactional
    /// path applies ops itself and reports them here on commit).
    pub(crate) fn note_reconfigs(&mut self, n: u64) {
        self.stats.reconfigs_applied += n;
    }

    fn apply_side_effects(
        &mut self,
        idx: usize,
        sends: Vec<(Option<Address>, packetbb::Message)>,
        timer_sets: Vec<(netsim::SimDuration, EventType)>,
        timer_cancels: Vec<EventType>,
        os: &mut NodeOs,
    ) {
        for (dst, msg) in sends {
            self.system.send_direct(msg, dst);
        }
        let name = self.slots[idx].name;
        for ty in timer_cancels {
            if let Some(token) = self.timers.cancel(name, &ty) {
                os.cancel_timer(token);
            }
        }
        for (delay, ty) in timer_sets {
            let (token, old) = self.timers.arm(name, ty);
            if let Some(old_token) = old {
                os.cancel_timer(old_token);
            }
            os.set_timer(delay, token);
        }
    }
}

impl fmt::Debug for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("protocols", &self.protocol_names())
            .field("concurrency", &self.concurrency)
            .finish()
    }
}

/// Reflective adapter exposing a protocol CF in the meta-CF's architecture
/// meta-model.
struct ProtocolAdapter {
    name: String,
    provided: Vec<InterfaceId>,
    required: Vec<opencom::ReceptacleId>,
}

impl ProtocolAdapter {
    fn from_cf(cf: &ManetProtocolCf) -> Self {
        let mut provided: Vec<InterfaceId> = cf
            .tuple()
            .provided
            .iter()
            .map(|t| InterfaceId::from_string(format!("event:{t}")))
            .collect();
        if cf.is_reactive() {
            provided.push(InterfaceId::of(REACTIVE_IFACE));
        }
        let required = cf
            .tuple()
            .required
            .iter()
            .map(|t| opencom::ReceptacleId::from_string(format!("event:{t}")))
            .collect();
        ProtocolAdapter {
            name: cf.name().to_string(),
            provided,
            required,
        }
    }
}

impl Component for ProtocolAdapter {
    fn name(&self) -> &str {
        &self.name
    }
    fn provided(&self) -> Vec<InterfaceId> {
        self.provided.clone()
    }
    fn required(&self) -> Vec<opencom::ReceptacleId> {
        self.required.clone()
    }
    fn query_interface(&self, id: &InterfaceId) -> Option<AnyInterface> {
        self.provided
            .contains(id)
            .then(|| AnyInterface::new(id.clone(), Arc::new(())))
    }
}

// ---- ManetNode: the netsim adapter -----------------------------------------

/// Pending reconfiguration ops, each optionally stamped with the virtual
/// time it was requested at (feeds the flight recorder's quiesce-wait).
type PendingOps = Arc<Mutex<Vec<(ReconfigOp, Option<netsim::SimTime>)>>>;

/// A transaction control verb delivered through a [`NodeHandle`], processed
/// FIFO at the node's next quiescent point. The fleet coordinator drives
/// two-phase commit with these.
pub enum TxnCtl {
    /// Checkpoint and apply `ops`; hold the undo log open.
    Prepare {
        /// Transaction id.
        id: u64,
        /// The batch to apply atomically.
        ops: Vec<ReconfigOp>,
        /// Virtual time of the request (feeds quiesce-wait tracing).
        requested: Option<netsim::SimTime>,
        /// Virtual-time deadline: a node that reaches its quiescent point
        /// later than this refuses the prepare (`quiesce_timeout`) instead
        /// of preparing into a transaction the coordinator gave up on.
        deadline: Option<netsim::SimTime>,
        /// Wall-clock budget for the quiescence-lock probe.
        quiesce_within: std::time::Duration,
    },
    /// Make a prepared transaction permanent (undo log retained for a
    /// possible health revert).
    Commit {
        /// Transaction id.
        id: u64,
    },
    /// Roll a prepared transaction back to its checkpoint.
    Abort {
        /// Transaction id.
        id: u64,
        /// Why the coordinator aborted (trace tag).
        reason: &'static str,
    },
    /// Back out a *committed* transaction (health gate tripped).
    Revert {
        /// Transaction id.
        id: u64,
    },
}

impl fmt::Debug for TxnCtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnCtl::Prepare { id, ops, .. } => write!(f, "Prepare(#{id}, {} ops)", ops.len()),
            TxnCtl::Commit { id } => write!(f, "Commit(#{id})"),
            TxnCtl::Abort { id, reason } => write!(f, "Abort(#{id}, {reason})"),
            TxnCtl::Revert { id } => write!(f, "Revert(#{id})"),
        }
    }
}

type TxnCtlQueue = Arc<Mutex<Vec<TxnCtl>>>;

/// External control handle over a running [`ManetNode`].
///
/// Reconfiguration requests enqueue here and are enacted at the node's next
/// quiescent point (the start of its next callback) — the paper's safe
/// reconfiguration discipline.
#[derive(Clone)]
pub struct NodeHandle {
    ops: PendingOps,
    txns: TxnCtlQueue,
    status: Arc<Mutex<NodeStatus>>,
}

impl NodeHandle {
    /// Enqueues a reconfiguration operation.
    pub fn apply(&self, op: ReconfigOp) {
        self.ops.lock().push((op, None));
    }

    /// Enqueues a reconfiguration operation stamped with the virtual time
    /// of the request. The stamp feeds the flight recorder: the node's
    /// quiesce-begin record reports how long the oldest stamped op waited
    /// for the quiescent point.
    pub fn apply_at(&self, op: ReconfigOp, now: netsim::SimTime) {
        self.ops.lock().push((op, Some(now)));
    }

    /// The most recent status snapshot.
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        self.status.lock().clone()
    }

    /// Number of operations still waiting for a quiescent point.
    #[must_use]
    pub fn pending_ops(&self) -> usize {
        self.ops.lock().len()
    }

    /// Discards every operation still waiting for a quiescent point and
    /// returns how many were dropped (give-up path for nodes that will not
    /// come back).
    pub fn clear_pending(&self) -> usize {
        let mut ops = self.ops.lock();
        let dropped = ops.len();
        ops.clear();
        dropped
    }

    /// Whether the node last reported itself running (see
    /// [`NodeStatus::alive`]).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.status.lock().alive
    }

    /// Enqueues a transaction control verb (see [`TxnCtl`]). Verbs are
    /// processed FIFO at the next quiescent point, so a `Prepare`
    /// immediately followed by an `Abort` resolves deterministically even
    /// when the node only wakes after both were enqueued.
    pub fn txn_ctl(&self, ctl: TxnCtl) {
        self.txns.lock().push(ctl);
    }

    /// Number of transaction control verbs still waiting for a quiescent
    /// point.
    #[must_use]
    pub fn pending_txn_ctl(&self) -> usize {
        self.txns.lock().len()
    }
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle")
            .field("pending_ops", &self.pending_ops())
            .finish()
    }
}

/// A MANETKit deployment living on a netsim node.
pub struct ManetNode {
    deployment: Deployment,
    ops: PendingOps,
    txns: TxnCtlQueue,
    status: Arc<Mutex<NodeStatus>>,
    /// A prepared transaction awaiting commit or abort. While one is open,
    /// plain pending ops stay queued (they would contaminate the undo log's
    /// checkpoint).
    prepared: Option<crate::txn::PreparedTxn>,
    /// A committed transaction whose undo log is retained for a possible
    /// health-gated revert. Finalised (dropped) when the next transaction
    /// prepares.
    committed: Option<crate::txn::PreparedTxn>,
    /// Set when the node crashed while a transaction was prepared: the
    /// first post-reboot quiescent point rolls it back before anything
    /// else, so a reboot can never resurrect a half-committed composition.
    txn_doomed: bool,
    /// Publish [`structural_hash`](crate::txn::structural_hash) into
    /// [`NodeStatus::composition_hash`] on every status refresh. Off by
    /// default: only the model checker needs a per-step composition digest.
    publish_composition: bool,
    /// **Fault-injection hook for the model checker** — when set, the
    /// doomed-transaction path after a crash reports the transaction rolled
    /// back but skips the actual unwind, deliberately breaking both the
    /// counter-conservation and rollback-exactness invariants. Exists so
    /// `mcheck` can prove it would catch the bug; never set in production.
    skip_doomed_rollback: bool,
}

impl ManetNode {
    /// A node with an empty deployment.
    #[must_use]
    pub fn new(concurrency: ConcurrencyModel) -> Self {
        ManetNode {
            deployment: Deployment::new(concurrency),
            ops: Arc::new(Mutex::new(Vec::new())),
            txns: Arc::new(Mutex::new(Vec::new())),
            status: Arc::new(Mutex::new(NodeStatus::default())),
            prepared: None,
            committed: None,
            txn_doomed: false,
            publish_composition: false,
            skip_doomed_rollback: false,
        }
    }

    /// Publish the composition's structural hash with every status refresh
    /// (see [`NodeStatus::composition_hash`]).
    pub fn set_publish_composition(&mut self, on: bool) {
        self.publish_composition = on;
    }

    /// Arms the seeded doomed-rollback mutation (see the field doc on
    /// `skip_doomed_rollback`). Test/model-checker use only.
    pub fn set_skip_doomed_rollback(&mut self, on: bool) {
        self.skip_doomed_rollback = on;
    }

    /// The deployment (pre-installation configuration).
    #[must_use]
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.deployment
    }

    /// Read access to the deployment.
    #[must_use]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// A control handle that stays valid after the node is installed into a
    /// world.
    #[must_use]
    pub fn handle(&self) -> NodeHandle {
        NodeHandle {
            ops: self.ops.clone(),
            txns: self.txns.clone(),
            status: self.status.clone(),
        }
    }

    fn set_txn_report(&self, id: u64, phase: TxnPhase, detail: String) {
        self.status.lock().txn = Some(TxnReport { id, phase, detail });
    }

    /// Processes queued transaction control verbs (FIFO). Runs before plain
    /// pending ops so 2PC outcomes resolve first.
    fn txn_point(&mut self, os: &mut NodeOs) {
        // A crash while a transaction was prepared dooms it: the
        // coordinator cannot have committed (it never saw us prepared, or
        // saw us die), so roll back before anything else runs.
        if self.txn_doomed {
            self.txn_doomed = false;
            if let Some(txn) = self.prepared.take() {
                let id = txn.id;
                os.trace_txn_abort(id, "crashed");
                os.bump("txn.aborted");
                if self.skip_doomed_rollback {
                    // Seeded mutation: claim the rollback happened without
                    // unwinding (and without bumping `txn.rolled_back`).
                    // The half-applied prepare survives the reboot — the
                    // exact bug the invariants exist to catch.
                    drop(txn);
                    self.set_txn_report(
                        id,
                        TxnPhase::RolledBack,
                        "crashed while prepared".to_string(),
                    );
                } else {
                    let clean = crate::txn::rollback(&mut self.deployment, txn, os);
                    let detail = if clean {
                        "crashed while prepared".to_string()
                    } else {
                        "crashed while prepared; rollback mismatch".to_string()
                    };
                    self.set_txn_report(id, TxnPhase::RolledBack, detail);
                }
            }
        }
        let ctls: Vec<TxnCtl> = std::mem::take(&mut *self.txns.lock());
        for ctl in ctls {
            match ctl {
                TxnCtl::Prepare {
                    id,
                    ops,
                    requested,
                    deadline,
                    quiesce_within,
                } => {
                    // A new transaction finalises any undo log retained
                    // from the previous committed one.
                    self.committed = None;
                    if self.prepared.is_some() {
                        os.bump("txn.aborted");
                        os.trace_txn_abort(id, "busy");
                        self.set_txn_report(
                            id,
                            TxnPhase::Aborted,
                            "a transaction is already prepared".to_string(),
                        );
                        continue;
                    }
                    let now = os.now();
                    if let Some(dl) = deadline {
                        if now > dl {
                            // The coordinator's prepare window has passed:
                            // it has already counted us out. Refusing here
                            // keeps a late-waking node from preparing into
                            // a transaction that was resolved without it.
                            os.bump("txn.prepare_expired");
                            os.bump("txn.aborted");
                            os.trace_txn_abort(id, "quiesce_timeout");
                            self.set_txn_report(
                                id,
                                TxnPhase::Aborted,
                                format!(
                                    "quiescent point reached at {}us, after the prepare deadline {}us",
                                    now.as_micros(),
                                    dl.as_micros()
                                ),
                            );
                            continue;
                        }
                    }
                    let waited = requested.map_or(0, |t| now.since(t).as_micros());
                    os.trace_quiesce_begin(ops.len() as u64, waited);
                    match crate::txn::prepare(&mut self.deployment, id, ops, quiesce_within, os) {
                        Ok(txn) => {
                            self.set_txn_report(id, TxnPhase::Prepared, String::new());
                            self.prepared = Some(txn);
                        }
                        Err(aborted) => {
                            self.status.lock().last_error = Some(aborted.to_string());
                            self.set_txn_report(
                                id,
                                TxnPhase::Aborted,
                                format!("{}: {}", aborted.reason, aborted.detail),
                            );
                        }
                    }
                }
                TxnCtl::Commit { id } => {
                    if self.prepared.as_ref().is_some_and(|t| t.id == id) {
                        let txn = self.prepared.take().expect("checked above");
                        crate::txn::commit(&mut self.deployment, &txn, os);
                        self.committed = Some(txn);
                        self.set_txn_report(id, TxnPhase::Committed, String::new());
                    }
                }
                TxnCtl::Abort { id, reason } => {
                    if self.prepared.as_ref().is_some_and(|t| t.id == id) {
                        let txn = self.prepared.take().expect("checked above");
                        os.trace_txn_abort(id, reason);
                        os.bump("txn.aborted");
                        let clean = crate::txn::rollback(&mut self.deployment, txn, os);
                        let detail = if clean {
                            reason.to_string()
                        } else {
                            format!("{reason}; rollback mismatch")
                        };
                        self.set_txn_report(id, TxnPhase::RolledBack, detail);
                    }
                }
                TxnCtl::Revert { id } => {
                    if self.committed.as_ref().is_some_and(|t| t.id == id) {
                        let txn = self.committed.take().expect("checked above");
                        let clean = crate::txn::revert(&mut self.deployment, txn, os);
                        let detail = if clean {
                            String::new()
                        } else {
                            "rollback mismatch".to_string()
                        };
                        self.set_txn_report(id, TxnPhase::Reverted, detail);
                    }
                }
            }
        }
    }

    fn quiescent_point(&mut self, os: &mut NodeOs) {
        self.txn_point(os);
        if self.prepared.is_some() {
            // Plain ops wait until the open transaction resolves: applying
            // them now would change the composition underneath the undo
            // log's checkpoint.
            return;
        }
        let ops: Vec<(ReconfigOp, Option<netsim::SimTime>)> = std::mem::take(&mut *self.ops.lock());
        if ops.is_empty() {
            return;
        }
        let now = os.now();
        let waited = ops
            .iter()
            .filter_map(|(_, at)| at.map(|t| now.since(t).as_micros()))
            .max()
            .unwrap_or(0);
        os.trace_quiesce_begin(ops.len() as u64, waited);
        let mut applied = 0u64;
        for (op, _) in ops {
            match self.deployment.apply(op, os) {
                Ok(()) => {
                    applied += 1;
                    os.bump("reconfig.ops_applied");
                }
                Err(e) => {
                    os.bump("reconfig.ops_failed");
                    self.status.lock().last_error = Some(e.to_string());
                }
            }
        }
        os.trace_resume(applied, self.deployment.stats().reconfigs_applied);
    }

    fn publish_status(&self) {
        let hash = self
            .publish_composition
            .then(|| crate::txn::structural_hash(&self.deployment));
        let mut status = self.status.lock();
        status.protocols = self.deployment.protocol_names();
        status.stats = self.deployment.stats();
        status.reconfigs_applied = status.stats.reconfigs_applied;
        status.alive = true;
        status.composition_hash = hash;
    }
}

impl fmt::Debug for ManetNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManetNode")
            .field("deployment", &self.deployment)
            .finish()
    }
}

impl netsim::RoutingAgent for ManetNode {
    fn name(&self) -> &str {
        "manetkit"
    }

    fn start(&mut self, os: &mut NodeOs) {
        self.quiescent_point(os);
        self.deployment.start(os);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn on_frame(&mut self, os: &mut NodeOs, from: Address, bytes: &[u8]) {
        self.quiescent_point(os);
        self.deployment.on_frame(os, from, bytes);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn on_timer(&mut self, os: &mut NodeOs, token: u64) {
        self.quiescent_point(os);
        self.deployment.on_timer(os, token);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn on_filter_event(&mut self, os: &mut NodeOs, event: FilterEvent) {
        self.quiescent_point(os);
        self.deployment.on_filter_event(os, &event);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn on_context(&mut self, os: &mut NodeOs, sample: ContextSample) {
        self.quiescent_point(os);
        self.deployment.on_context(os, &sample);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn stop(&mut self, os: &mut NodeOs) {
        self.deployment.stop(os);
        self.deployment.flush_telemetry(os);
        self.publish_status();
    }

    fn on_crash(&mut self, _os: &mut NodeOs) {
        // The node goes dark without a clean shutdown. Pending handle ops
        // deliberately survive: they drain at the first post-reboot
        // quiescent point, which is how the fleet coordinator's deferred
        // reconfigurations eventually apply. A transaction that was open
        // when the lights went out is doomed — the first post-reboot
        // quiescent point rolls it back to the checkpoint.
        if self.prepared.is_some() {
            self.txn_doomed = true;
        }
        self.status.lock().alive = false;
    }
}
