//! ManetProtocol CFs: the Control–Forward–State pattern.
//!
//! A protocol is a composition of fine-grained plug-ins (§4.2, fine-grained
//! level):
//!
//! * **C** — [`EventHandler`]s (process events, may emit more) and
//!   [`EventSource`]s (emit events periodically, timer-driven), the demux
//!   and the event registry;
//! * **F** — an optional [`Forwarder`] encapsulating the forwarding
//!   strategy (e.g. MPR flooding);
//! * **S** — a [`StateSlot`] holding the protocol state as a replaceable,
//!   transferable unit.
//!
//! Each plug-in can be replaced at runtime ([`ManetProtocolCf::replace_handler`],
//! [`ManetProtocolCf::replace_forwarder`], [`ManetProtocolCf::replace_state`])
//! — that is how the paper derives power-aware OLSR, fisheye OLSR and
//! multipath DYMO from the base protocols. Handlers run atomically: the
//! deployment never re-enters a protocol CF.

use std::any::Any;
use std::fmt;

use netsim::{NodeOs, SimDuration};
use packetbb::{Address, Message, Packet};

use crate::event::{Event, EventType};
use crate::registry::EventTuple;

/// The S element: protocol state as a reified, transferable unit.
///
/// Handlers downcast to their concrete state type with [`StateSlot::get`].
/// When a protocol (or one of its elements) is replaced, the slot can be
/// carried over wholesale or mapped into a new representation
/// ([`ManetProtocolCf::map_state`]) — the paper's state-transfer story.
pub struct StateSlot(Box<dyn Any + Send>);

impl StateSlot {
    /// Wraps a concrete state value.
    #[must_use]
    pub fn new<T: Any + Send>(state: T) -> Self {
        StateSlot(Box::new(state))
    }

    /// An empty slot (unit state).
    #[must_use]
    pub fn empty() -> Self {
        StateSlot(Box::new(()))
    }

    /// Borrows the state as `T`.
    ///
    /// # Panics
    ///
    /// Panics when the slot holds a different type — that is a wiring bug
    /// (a handler composed with the wrong S element), not a runtime
    /// condition.
    #[must_use]
    pub fn get<T: Any>(&self) -> &T {
        self.0
            .downcast_ref::<T>()
            .expect("protocol state slot holds a different type")
    }

    /// Mutably borrows the state as `T`.
    ///
    /// # Panics
    ///
    /// Panics when the slot holds a different type.
    #[must_use]
    pub fn get_mut<T: Any>(&mut self) -> &mut T {
        self.0
            .downcast_mut::<T>()
            .expect("protocol state slot holds a different type")
    }

    /// Attempts to borrow the state as `T`.
    #[must_use]
    pub fn try_get<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Consumes the slot, recovering the concrete state.
    ///
    /// # Errors
    ///
    /// Returns the slot unchanged when the type does not match.
    pub fn into_inner<T: Any>(self) -> Result<T, StateSlot> {
        match self.0.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(b) => Err(StateSlot(b)),
        }
    }
}

impl fmt::Debug for StateSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateSlot").finish_non_exhaustive()
    }
}

/// Per-delivery context handed to protocol plug-ins.
///
/// Gives access to the node's simulated OS (route table, clock, counters)
/// and collects the plug-in's outputs: emitted events, direct sends and
/// timer requests, applied by the deployment after the plug-in returns.
pub struct ProtoCtx<'a> {
    os: &'a mut NodeOs,
    protocol: &'a str,
    pub(crate) emitted: Vec<Event>,
    pub(crate) sends: Vec<(Option<Address>, Message)>,
    pub(crate) timer_sets: Vec<(SimDuration, EventType)>,
    pub(crate) timer_cancels: Vec<EventType>,
}

impl<'a> ProtoCtx<'a> {
    /// Creates a context for one delivery. Normally only the deployment
    /// calls this; exposed for protocol unit tests.
    #[must_use]
    pub fn new(os: &'a mut NodeOs, protocol: &'a str) -> Self {
        ProtoCtx {
            os,
            protocol,
            emitted: Vec::new(),
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
        }
    }

    /// The node's simulated OS.
    #[must_use]
    pub fn os(&mut self) -> &mut NodeOs {
        self.os
    }

    /// This node's address.
    #[must_use]
    pub fn local_addr(&self) -> Address {
        self.os.addr()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> netsim::SimTime {
        self.os.now()
    }

    /// The name of the protocol this context belongs to.
    #[must_use]
    pub fn protocol(&self) -> &str {
        self.protocol
    }

    /// Emits an event into the framework (routed by the Framework Manager
    /// after this plug-in returns; the origin is stamped automatically).
    pub fn emit(&mut self, event: Event) {
        self.emitted.push(event);
    }

    /// Sends a message directly on the wire (the System CF's `IForward`
    /// direct-call path): broadcast when `dst` is `None`.
    pub fn send_message(&mut self, msg: Message, dst: Option<Address>) {
        self.sends.push((dst, msg));
    }

    /// Arms (or re-arms) this protocol's named timer; when it fires the
    /// protocol receives `Event::signal(ty)` locally (not routed to other
    /// protocols).
    pub fn set_timer(&mut self, delay: SimDuration, ty: EventType) {
        self.timer_sets.push((delay, ty));
    }

    /// Cancels this protocol's named timer.
    pub fn cancel_timer(&mut self, ty: EventType) {
        self.timer_cancels.push(ty);
    }

    /// Drains the collected outputs (deployment internals and tests).
    #[must_use]
    pub fn take_outputs(&mut self) -> CtxOutputs {
        CtxOutputs {
            emitted: std::mem::take(&mut self.emitted),
            sends: std::mem::take(&mut self.sends),
            timer_sets: std::mem::take(&mut self.timer_sets),
            timer_cancels: std::mem::take(&mut self.timer_cancels),
        }
    }
}

/// Outputs collected by a [`ProtoCtx`] during one delivery.
#[derive(Debug, Default)]
pub struct CtxOutputs {
    /// Events to route.
    pub emitted: Vec<Event>,
    /// Direct wire sends `(dst, message)`.
    pub sends: Vec<(Option<Address>, Message)>,
    /// Timer arm requests `(delay, type)`.
    pub timer_sets: Vec<(SimDuration, EventType)>,
    /// Timer cancellations.
    pub timer_cancels: Vec<EventType>,
}

/// A C-element plug-in: processes events, may emit further events.
pub trait EventHandler: Send {
    /// Plug-in name (unique within its protocol; used for replacement).
    fn name(&self) -> &str;

    /// Event types this handler wants delivered.
    fn subscriptions(&self) -> Vec<EventType>;

    /// Processes one event. Runs atomically per protocol.
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>);
}

/// A C-element plug-in that emits events periodically (timer-driven).
pub trait EventSource: Send {
    /// Plug-in name (unique within its protocol).
    fn name(&self) -> &str;

    /// Firing period.
    fn period(&self) -> SimDuration;

    /// Produces this round's events.
    fn fire(&mut self, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>);
}

/// The F element: a forwarding strategy over the protocol's topology.
pub trait Forwarder: Send {
    /// Plug-in name.
    fn name(&self) -> &str;

    /// Event types whose messages this forwarder transmits/relays.
    fn subscriptions(&self) -> Vec<EventType>;

    /// Transmits or relays the event's message.
    fn forward(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>);
}

/// Counters a protocol CF keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Events delivered to this CF.
    pub events_delivered: u64,
    /// Events handled by at least one handler.
    pub events_handled: u64,
    /// Messages passed to the F element.
    pub messages_forwarded: u64,
    /// Source firings.
    pub source_firings: u64,
}

/// Errors from protocol CF reconfiguration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// No plug-in with the given name exists.
    NoSuchPlugin(String),
    /// A plug-in with the given name already exists.
    DuplicatePlugin(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NoSuchPlugin(n) => write!(f, "no plug-in named {n:?}"),
            ProtocolError::DuplicatePlugin(n) => {
                write!(f, "a plug-in named {n:?} already exists")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

struct SourceSlot {
    source: Box<dyn EventSource>,
    timer: EventType,
}

/// A handler plus its subscription set, sampled when the handler is
/// installed so the delivery hot path never re-asks (each
/// [`EventHandler::subscriptions`] call allocates a fresh `Vec`).
struct HandlerSlot {
    handler: Box<dyn EventHandler>,
    subs: Vec<EventType>,
}

impl HandlerSlot {
    fn new(handler: Box<dyn EventHandler>) -> Self {
        let subs = handler.subscriptions();
        HandlerSlot { handler, subs }
    }
}

/// A ManetProtocol CF: a named, tuple-declared composition of handlers,
/// sources, an optional forwarder and a state slot.
///
/// Built with [`ManetProtocolCf::builder`]; hosted by a
/// [`Deployment`](crate::node::Deployment).
pub struct ManetProtocolCf {
    name: String,
    tuple: EventTuple,
    handlers: Vec<HandlerSlot>,
    sources: Vec<SourceSlot>,
    forwarder: Option<Box<dyn Forwarder>>,
    /// Cached `forwarder.subscriptions()` (same rationale as
    /// [`HandlerSlot::subs`]).
    forwarder_subs: Vec<EventType>,
    state: StateSlot,
    /// Optional state codec: exports the S element to deterministic bytes
    /// so transactional checkpoints can fingerprint it (see
    /// [`export_state`](Self::export_state)).
    state_codec: Option<StateCodec>,
    stats: ProtocolStats,
    /// Named timers armed when the protocol starts (e.g. expiry sweeps).
    startup_timers: Vec<(SimDuration, EventType)>,
    /// Message kinds this protocol treats as *reactive* route discovery —
    /// used by deployment-level integrity rules ("at most one reactive
    /// protocol").
    reactive: bool,
}

impl ManetProtocolCf {
    /// Starts building a protocol CF.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ManetProtocolBuilder {
        ManetProtocolBuilder {
            cf: ManetProtocolCf {
                name: name.into(),
                tuple: EventTuple::new(),
                handlers: Vec::new(),
                sources: Vec::new(),
                forwarder: None,
                forwarder_subs: Vec::new(),
                state: StateSlot::empty(),
                state_codec: None,
                stats: ProtocolStats::default(),
                startup_timers: Vec::new(),
                reactive: false,
            },
        }
    }

    /// The protocol's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol's current event tuple.
    #[must_use]
    pub fn tuple(&self) -> &EventTuple {
        &self.tuple
    }

    /// Replaces the event tuple (the deployment rewires on the next safe
    /// point).
    pub fn set_tuple(&mut self, tuple: EventTuple) {
        self.tuple = tuple;
    }

    /// Whether this protocol is reactive (route discovery on demand).
    #[must_use]
    pub fn is_reactive(&self) -> bool {
        self.reactive
    }

    /// The protocol's self-observed counters.
    #[must_use]
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    /// Names of all plug-ins (handlers, sources, forwarder).
    #[must_use]
    pub fn plugin_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .handlers
            .iter()
            .map(|h| h.handler.name().to_string())
            .collect();
        names.extend(self.sources.iter().map(|s| s.source.name().to_string()));
        if let Some(f) = &self.forwarder {
            names.push(f.name().to_string());
        }
        names
    }

    // ---- lifecycle & delivery (called by the deployment) ------------------

    /// Arms the source and startup timers. Call once when the protocol
    /// starts.
    pub fn start(&mut self, ctx: &mut ProtoCtx<'_>) {
        for slot in &self.sources {
            ctx.set_timer(slot.source.period(), slot.timer);
        }
        for (delay, ty) in &self.startup_timers {
            ctx.set_timer(*delay, *ty);
        }
    }

    /// Stops the protocol: delivers the [`PROTO_STOP_EVENT`] signal to the
    /// handlers (so they can clean up OS state such as kernel routes) and
    /// cancels the source timers.
    pub fn stop(&mut self, ctx: &mut ProtoCtx<'_>) {
        let stop = Event::signal(proto_stop_event());
        self.deliver(&stop, ctx);
        for slot in &self.sources {
            ctx.cancel_timer(slot.timer);
        }
        for (_, ty) in &self.startup_timers {
            ctx.cancel_timer(*ty);
        }
    }

    /// Delivers an event to the matching handlers and the forwarder.
    pub fn deliver(&mut self, event: &Event, ctx: &mut ProtoCtx<'_>) {
        self.stats.events_delivered += 1;
        let mut handled = false;
        for h in &mut self.handlers {
            if h.subs.contains(&event.ty) {
                h.handler.handle(event, &mut self.state, ctx);
                handled = true;
            }
        }
        if let Some(f) = &mut self.forwarder {
            if self.forwarder_subs.contains(&event.ty) {
                f.forward(event, &mut self.state, ctx);
                self.stats.messages_forwarded += 1;
                handled = true;
            }
        }
        if handled {
            self.stats.events_handled += 1;
        }
    }

    /// Handles one of this protocol's named timers firing.
    ///
    /// Source timers fire their source and re-arm; any other name is
    /// redelivered to the handlers as a local signal event.
    pub fn on_timer(&mut self, ty: &EventType, ctx: &mut ProtoCtx<'_>) {
        if let Some(slot) = self.sources.iter_mut().find(|s| &s.timer == ty) {
            slot.source.fire(&mut self.state, ctx);
            ctx.set_timer(slot.source.period(), slot.timer);
            self.stats.source_firings += 1;
            return;
        }
        let ev = Event::signal(*ty);
        self.deliver(&ev, ctx);
    }

    // ---- fine-grained reconfiguration -------------------------------------

    /// Adds a handler. Its subscription set is sampled now — handlers
    /// declare static interests (the tuples are declarative); to change
    /// them, replace the handler.
    ///
    /// # Errors
    ///
    /// Fails when a plug-in with the same name exists.
    pub fn add_handler(&mut self, handler: Box<dyn EventHandler>) -> Result<(), ProtocolError> {
        if self.plugin_names().iter().any(|n| n == handler.name()) {
            return Err(ProtocolError::DuplicatePlugin(handler.name().to_string()));
        }
        self.handlers.push(HandlerSlot::new(handler));
        Ok(())
    }

    /// Removes the handler named `name`, returning it.
    ///
    /// # Errors
    ///
    /// Fails when no handler has that name.
    pub fn remove_handler(&mut self, name: &str) -> Result<Box<dyn EventHandler>, ProtocolError> {
        let idx = self
            .handlers
            .iter()
            .position(|h| h.handler.name() == name)
            .ok_or_else(|| ProtocolError::NoSuchPlugin(name.to_string()))?;
        Ok(self.handlers.remove(idx).handler)
    }

    /// Replaces the handler named `name` in place (same position), returning
    /// the old one.
    ///
    /// # Errors
    ///
    /// Fails when no handler has that name.
    pub fn replace_handler(
        &mut self,
        name: &str,
        new: Box<dyn EventHandler>,
    ) -> Result<Box<dyn EventHandler>, ProtocolError> {
        let idx = self
            .handlers
            .iter()
            .position(|h| h.handler.name() == name)
            .ok_or_else(|| ProtocolError::NoSuchPlugin(name.to_string()))?;
        let old = std::mem::replace(&mut self.handlers[idx], HandlerSlot::new(new));
        Ok(old.handler)
    }

    /// Adds a periodic source (its timer arms when the protocol is next
    /// (re)started — the deployment re-arms timers after `Mutate` ops).
    ///
    /// # Errors
    ///
    /// Fails when a plug-in with the same name exists.
    pub fn add_source(&mut self, source: Box<dyn EventSource>) -> Result<(), ProtocolError> {
        if self.plugin_names().iter().any(|n| n == source.name()) {
            return Err(ProtocolError::DuplicatePlugin(source.name().to_string()));
        }
        let timer = EventType::named(&format!("__src:{}", source.name()));
        self.sources.push(SourceSlot { source, timer });
        Ok(())
    }

    /// Removes the source named `name`, returning it. The deployment
    /// cancels its timer at the next safe point.
    ///
    /// # Errors
    ///
    /// Fails when no source has that name.
    pub fn remove_source(&mut self, name: &str) -> Result<Box<dyn EventSource>, ProtocolError> {
        let idx = self
            .sources
            .iter()
            .position(|s| s.source.name() == name)
            .ok_or_else(|| ProtocolError::NoSuchPlugin(name.to_string()))?;
        Ok(self.sources.remove(idx).source)
    }

    /// Replaces the source named `name` in place, returning the old one.
    ///
    /// # Errors
    ///
    /// Fails when no source has that name.
    pub fn replace_source(
        &mut self,
        name: &str,
        new: Box<dyn EventSource>,
    ) -> Result<Box<dyn EventSource>, ProtocolError> {
        let slot = self
            .sources
            .iter_mut()
            .find(|s| s.source.name() == name)
            .ok_or_else(|| ProtocolError::NoSuchPlugin(name.to_string()))?;
        Ok(std::mem::replace(&mut slot.source, new))
    }

    /// Replaces the F element, returning the old one.
    pub fn replace_forwarder(&mut self, new: Box<dyn Forwarder>) -> Option<Box<dyn Forwarder>> {
        self.forwarder_subs = new.subscriptions();
        self.forwarder.replace(new)
    }

    /// Replaces the S element wholesale, returning the old state.
    pub fn replace_state(&mut self, new: StateSlot) -> StateSlot {
        std::mem::replace(&mut self.state, new)
    }

    /// Maps the current state into a new representation (state transfer
    /// with conversion — e.g. standard route table → multipath route table).
    pub fn map_state(&mut self, f: impl FnOnce(StateSlot) -> StateSlot) {
        let old = std::mem::replace(&mut self.state, StateSlot::empty());
        self.state = f(old);
    }

    /// Takes the S element out (for carry-over into a replacement
    /// protocol), leaving unit state.
    pub fn take_state(&mut self) -> StateSlot {
        std::mem::replace(&mut self.state, StateSlot::empty())
    }

    /// Installs (or replaces) the state codec used by
    /// [`export_state`](Self::export_state).
    pub fn set_state_codec(&mut self, codec: StateCodec) {
        self.state_codec = Some(codec);
    }

    /// Exports the S element as deterministic bytes through the protocol's
    /// state codec, or `None` when no codec is installed. Two exports are
    /// byte-identical exactly when the codec considers the states equal —
    /// the fingerprint the transactional reconfiguration engine compares
    /// across checkpoint/rollback.
    #[must_use]
    pub fn export_state(&self) -> Option<Vec<u8>> {
        self.state_codec.as_ref().map(|codec| codec(&self.state))
    }

    /// Read access to the state slot.
    #[must_use]
    pub fn state(&self) -> &StateSlot {
        &self.state
    }

    /// Write access to the state slot.
    #[must_use]
    pub fn state_mut(&mut self) -> &mut StateSlot {
        &mut self.state
    }
}

impl fmt::Debug for ManetProtocolCf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManetProtocolCf")
            .field("name", &self.name)
            .field("handlers", &self.handlers.len())
            .field("sources", &self.sources.len())
            .field("has_forwarder", &self.forwarder.is_some())
            .finish()
    }
}

/// Exports a protocol's S element as deterministic bytes (any stable
/// encoding works — `Debug` text of an ordered structure is fine; the bytes
/// are compared, never decoded).
pub type StateCodec = Box<dyn Fn(&StateSlot) -> Vec<u8> + Send>;

/// Builder for [`ManetProtocolCf`].
pub struct ManetProtocolBuilder {
    cf: ManetProtocolCf,
}

impl ManetProtocolBuilder {
    /// Declares the protocol's event tuple.
    #[must_use]
    pub fn tuple(mut self, tuple: EventTuple) -> Self {
        self.cf.tuple = tuple;
        self
    }

    /// Marks the protocol reactive (route discovery on demand).
    #[must_use]
    pub fn reactive(mut self) -> Self {
        self.cf.reactive = true;
        self
    }

    /// Adds a handler.
    ///
    /// # Panics
    ///
    /// Panics on duplicate plug-in names (a composition bug).
    #[must_use]
    pub fn handler(mut self, handler: Box<dyn EventHandler>) -> Self {
        self.cf
            .add_handler(handler)
            .expect("duplicate plug-in name");
        self
    }

    /// Adds a periodic source.
    #[must_use]
    pub fn source(mut self, source: Box<dyn EventSource>) -> Self {
        let timer = EventType::named(&format!("__src:{}", source.name()));
        self.cf.sources.push(SourceSlot { source, timer });
        self
    }

    /// Sets the F element.
    #[must_use]
    pub fn forwarder(mut self, forwarder: Box<dyn Forwarder>) -> Self {
        self.cf.forwarder_subs = forwarder.subscriptions();
        self.cf.forwarder = Some(forwarder);
        self
    }

    /// Sets the S element.
    #[must_use]
    pub fn state(mut self, state: StateSlot) -> Self {
        self.cf.state = state;
        self
    }

    /// Installs a state codec (deterministic byte export of the S element)
    /// used by transactional checkpoints to prove rollback exactness.
    #[must_use]
    pub fn state_codec(mut self, codec: impl Fn(&StateSlot) -> Vec<u8> + Send + 'static) -> Self {
        self.cf.state_codec = Some(Box::new(codec));
        self
    }

    /// Arms a named timer when the protocol starts; on firing, the
    /// protocol's handlers receive `Event::signal(ty)` locally.
    #[must_use]
    pub fn startup_timer(mut self, delay: SimDuration, ty: EventType) -> Self {
        self.cf.startup_timers.push((delay, ty));
        self
    }

    /// Finalizes the protocol CF.
    #[must_use]
    pub fn build(self) -> ManetProtocolCf {
        self.cf
    }
}

/// Name of the signal event delivered to a protocol's handlers when the
/// protocol stops (undeploy/switch): handlers that installed kernel routes
/// or other OS state clean it up on receipt.
pub const PROTO_STOP_EVENT: &str = "__PROTO_STOP";

crate::cached_event_type! {
    /// The interned [`PROTO_STOP_EVENT`] type.
    pub fn proto_stop_event => PROTO_STOP_EVENT;
}

/// Serializes a message into a single-message PacketBB packet — the
/// encoding every protocol in this workspace sends on the wire.
#[must_use]
pub fn message_to_wire(msg: &Message) -> Vec<u8> {
    Packet::single(msg.clone()).encode_to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::types;
    use netsim::NodeId;

    fn test_os() -> NodeOs {
        NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]))
    }

    #[derive(Default)]
    struct CounterState {
        seen: u32,
    }

    struct CountingHandler;
    impl EventHandler for CountingHandler {
        fn name(&self) -> &str {
            "counter"
        }
        fn subscriptions(&self) -> Vec<EventType> {
            vec![types::hello_in()]
        }
        fn handle(&mut self, _ev: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
            state.get_mut::<CounterState>().seen += 1;
            ctx.emit(Event::signal(types::nhood_change()));
        }
    }

    struct TickSource;
    impl EventSource for TickSource {
        fn name(&self) -> &str {
            "tick"
        }
        fn period(&self) -> SimDuration {
            SimDuration::from_secs(2)
        }
        fn fire(&mut self, _state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
            ctx.emit(Event::signal(types::hello_out()));
        }
    }

    fn sample_cf() -> ManetProtocolCf {
        ManetProtocolCf::builder("test")
            .tuple(
                EventTuple::new()
                    .requires(types::hello_in())
                    .provides(types::nhood_change()),
            )
            .state(StateSlot::new(CounterState::default()))
            .handler(Box::new(CountingHandler))
            .source(Box::new(TickSource))
            .build()
    }

    #[test]
    fn state_slot_typed_access() {
        let mut s = StateSlot::new(5u32);
        assert_eq!(*s.get::<u32>(), 5);
        *s.get_mut::<u32>() += 1;
        assert_eq!(s.try_get::<u32>(), Some(&6));
        assert!(s.try_get::<u64>().is_none());
        assert_eq!(s.into_inner::<u32>().unwrap(), 6);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn state_slot_wrong_type_panics() {
        let s = StateSlot::new(5u32);
        let _ = s.get::<String>();
    }

    #[test]
    fn delivery_routes_to_subscribed_handlers() {
        let mut cf = sample_cf();
        let mut os = test_os();
        let mut ctx = ProtoCtx::new(&mut os, "test");
        let ev = Event::signal(types::hello_in());
        cf.deliver(&ev, &mut ctx);
        assert_eq!(cf.state().get::<CounterState>().seen, 1);
        let out = ctx.take_outputs();
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].ty, types::nhood_change());

        // Unsubscribed events do nothing.
        let mut ctx = ProtoCtx::new(&mut os, "test");
        cf.deliver(&Event::signal(types::tc_in()), &mut ctx);
        assert_eq!(cf.state().get::<CounterState>().seen, 1);
        assert_eq!(cf.stats().events_delivered, 2);
        assert_eq!(cf.stats().events_handled, 1);
    }

    #[test]
    fn start_arms_source_timers_and_fire_rearms() {
        let mut cf = sample_cf();
        let mut os = test_os();
        let mut ctx = ProtoCtx::new(&mut os, "test");
        cf.start(&mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.timer_sets.len(), 1);
        let (delay, ty) = &out.timer_sets[0];
        assert_eq!(*delay, SimDuration::from_secs(2));

        // Fire the source timer: emits HELLO_OUT and re-arms.
        let mut ctx = ProtoCtx::new(&mut os, "test");
        cf.on_timer(ty, &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.emitted[0].ty, types::hello_out());
        assert_eq!(out.timer_sets.len(), 1);
        assert_eq!(cf.stats().source_firings, 1);
    }

    #[test]
    fn non_source_timer_becomes_local_signal() {
        let mut cf = sample_cf();
        let mut os = test_os();
        let mut ctx = ProtoCtx::new(&mut os, "test");
        // "hello_in" doubles as a timer name here; the signal reaches the
        // subscribed handler.
        cf.on_timer(&types::hello_in(), &mut ctx);
        assert_eq!(cf.state().get::<CounterState>().seen, 1);
    }

    #[test]
    fn handler_replacement_in_place() {
        struct Negator;
        impl EventHandler for Negator {
            fn name(&self) -> &str {
                "counter"
            }
            fn subscriptions(&self) -> Vec<EventType> {
                vec![types::hello_in()]
            }
            fn handle(&mut self, _ev: &Event, state: &mut StateSlot, _ctx: &mut ProtoCtx<'_>) {
                state.get_mut::<CounterState>().seen += 100;
            }
        }
        let mut cf = sample_cf();
        cf.replace_handler("counter", Box::new(Negator)).unwrap();
        let mut os = test_os();
        let mut ctx = ProtoCtx::new(&mut os, "test");
        cf.deliver(&Event::signal(types::hello_in()), &mut ctx);
        assert_eq!(cf.state().get::<CounterState>().seen, 100);

        assert!(matches!(
            cf.replace_handler("ghost", Box::new(Negator)),
            Err(ProtocolError::NoSuchPlugin(_))
        ));
    }

    #[test]
    fn duplicate_plugin_rejected() {
        let mut cf = sample_cf();
        let err = cf.add_handler(Box::new(CountingHandler)).unwrap_err();
        assert!(matches!(err, ProtocolError::DuplicatePlugin(_)));
    }

    #[test]
    fn state_transfer() {
        let mut cf = sample_cf();
        cf.state_mut().get_mut::<CounterState>().seen = 7;
        let carried = cf.take_state();
        assert_eq!(carried.get::<CounterState>().seen, 7);

        // Map-based transfer converts representation.
        let mut cf2 = sample_cf();
        cf2.replace_state(carried);
        cf2.map_state(|slot| {
            let old = slot.into_inner::<CounterState>().unwrap();
            StateSlot::new(old.seen as u64 * 2)
        });
        assert_eq!(*cf2.state().get::<u64>(), 14);
    }

    #[test]
    fn plugin_inventory() {
        let cf = sample_cf();
        let names = cf.plugin_names();
        assert!(names.contains(&"counter".to_string()));
        assert!(names.contains(&"tick".to_string()));
    }
}
