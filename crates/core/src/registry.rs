//! Event tuples: the declarative `<required-events, provided-events>`
//! interface of a CFS unit.

use crate::event::EventType;

/// The declarative event interface of a protocol CF.
///
/// The Framework Manager derives all inter-protocol wiring from these
/// declarations (§4.2 of the paper): if an event type appears in one unit's
/// `provided` set and another's `required` set, events of that type flow
/// between them.
///
/// Three refinements from the paper are supported:
///
/// * **exclusive receive** — a type in `exclusive` is delivered to this unit
///   *only*, even if other units also require it;
/// * **interposition** — a unit that both provides and requires a type is
///   interposed in the path of that type (e.g. the fisheye component on
///   `TC_OUT`);
/// * **loop avoidance** — a unit never receives an event it emitted itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTuple {
    /// Event types this unit wants to receive.
    pub required: Vec<EventType>,
    /// Event types this unit can generate.
    pub provided: Vec<EventType>,
    /// Subset of `required` this unit wants exclusively.
    pub exclusive: Vec<EventType>,
}

impl EventTuple {
    /// An empty tuple.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a required event type.
    #[must_use]
    pub fn requires(mut self, ty: EventType) -> Self {
        if !self.required.contains(&ty) {
            self.required.push(ty);
        }
        self
    }

    /// Adds a provided event type.
    #[must_use]
    pub fn provides(mut self, ty: EventType) -> Self {
        if !self.provided.contains(&ty) {
            self.provided.push(ty);
        }
        self
    }

    /// Adds an exclusively-required event type (implies `requires`).
    #[must_use]
    pub fn requires_exclusive(mut self, ty: EventType) -> Self {
        if !self.exclusive.contains(&ty) {
            self.exclusive.push(ty);
        }
        self.requires(ty)
    }

    /// Whether this unit requires `ty`.
    #[must_use]
    pub fn is_required(&self, ty: &EventType) -> bool {
        self.required.contains(ty)
    }

    /// Whether this unit provides `ty`.
    #[must_use]
    pub fn is_provided(&self, ty: &EventType) -> bool {
        self.provided.contains(ty)
    }

    /// Whether this unit requires `ty` exclusively.
    #[must_use]
    pub fn is_exclusive(&self, ty: &EventType) -> bool {
        self.exclusive.contains(ty)
    }

    /// Whether this unit is an interposer for `ty` (provides *and*
    /// requires it).
    #[must_use]
    pub fn is_interposer(&self, ty: &EventType) -> bool {
        self.is_required(ty) && self.is_provided(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::types;

    #[test]
    fn builder_dedupes() {
        let t = EventTuple::new()
            .requires(types::tc_in())
            .requires(types::tc_in())
            .provides(types::tc_out())
            .provides(types::tc_out());
        assert_eq!(t.required.len(), 1);
        assert_eq!(t.provided.len(), 1);
    }

    #[test]
    fn exclusive_implies_required() {
        let t = EventTuple::new().requires_exclusive(types::tc_out());
        assert!(t.is_required(&types::tc_out()));
        assert!(t.is_exclusive(&types::tc_out()));
        assert!(!t.is_exclusive(&types::tc_in()));
    }

    #[test]
    fn interposer_detection() {
        let t = EventTuple::new()
            .requires(types::tc_out())
            .provides(types::tc_out());
        assert!(t.is_interposer(&types::tc_out()));
        assert!(!t.is_interposer(&types::tc_in()));
    }
}
