//! A small-vector of `Copy` values with inline storage.
//!
//! Routing fan-out lists are short — one or two units for most event types —
//! so the routing table stores them in a [`SmallVec`] that keeps up to `N`
//! elements inline and only touches the heap beyond that. Implemented in
//! safe Rust (the crate forbids `unsafe`): spilling copies the inline buffer
//! into a `Vec` once, after which the `Vec` is authoritative.

use std::fmt;

#[derive(Clone)]
enum Repr<T, const N: usize> {
    Inline([T; N]),
    Heap(Vec<T>),
}

/// A growable vector storing up to `N` elements inline.
///
/// `T` must be `Copy + Default` so the inline buffer can be materialised
/// without `unsafe` (unused slots hold `T::default()`).
#[derive(Clone)]
pub struct SmallVec<T, const N: usize> {
    len: usize,
    repr: Repr<T, N>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty vector (no heap allocation).
    #[must_use]
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            repr: Repr::Inline([T::default(); N]),
        }
    }

    /// Appends `value`, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline(buf) if self.len < N => {
                buf[self.len] = value;
                self.len += 1;
            }
            Repr::Inline(buf) => {
                let mut spilled = Vec::with_capacity(N * 2);
                spilled.extend_from_slice(&buf[..self.len]);
                spilled.push(value);
                self.len += 1;
                self.repr = Repr::Heap(spilled);
            }
            Repr::Heap(vec) => {
                vec.push(value);
                self.len += 1;
            }
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline(buf) => &buf[..self.len],
            Repr::Heap(vec) => vec,
        }
    }

    /// Whether the elements still live in the inline buffer.
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<usize, 4> = SmallVec::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_preserving_order() {
        let mut v: SmallVec<usize, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i * 10);
        }
        assert!(!v.is_inline());
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_slice(), &[0, 10, 20, 30, 40]);
    }

    #[test]
    fn collect_and_iterate() {
        let v: SmallVec<u32, 3> = (0..3).collect();
        assert!(v.is_inline());
        let doubled: Vec<u32> = v.into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4]);
        let w: SmallVec<u32, 3> = (0..3).collect();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[0, 1, 2]");
    }
}
