//! The Neighbour Detection CF (§4.3): HELLO-based 1-hop / 2-hop
//! neighbourhood sensing, reusable by any protocol that needs
//! `NHOOD_CHANGE` notifications (DYMO uses it for route invalidation; the
//! optimised-flooding variant replaces it with the richer MPR CF).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use netsim::{SimDuration, SimTime};
use packetbb::registry::{link_status, msg_type, tlv_type};
use packetbb::{Address, AddressBlock, AddressTlv, Message, MessageBuilder, Tlv};

use crate::event::{types, Event, EventType, NeighbourhoodChange, Payload};
use crate::protocol::{EventHandler, EventSource, ManetProtocolCf, ProtoCtx, StateSlot};
use crate::registry::EventTuple;
use crate::system::MessageRegistration;

/// Configuration of the Neighbour Detection CF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighbourConfig {
    /// HELLO emission period (default 1 s).
    pub hello_interval: SimDuration,
    /// How long a silent neighbour stays valid (default 3.5 × interval).
    pub validity: SimDuration,
}

impl Default for NeighbourConfig {
    fn default() -> Self {
        NeighbourConfig {
            hello_interval: SimDuration::from_secs(1),
            validity: SimDuration::from_millis(3_500),
        }
    }
}

/// Per-neighbour record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighbourInfo {
    /// Last time a HELLO was heard from this neighbour.
    pub last_heard: SimTime,
    /// Whether bidirectionality has been confirmed.
    pub symmetric: bool,
    /// The neighbour's own symmetric neighbours (our 2-hop set through it).
    pub two_hop: BTreeSet<Address>,
}

/// The S element: the neighbour table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighbourTable {
    /// All currently known neighbours.
    pub neighbours: BTreeMap<Address, NeighbourInfo>,
}

impl NeighbourTable {
    /// Addresses of currently symmetric neighbours.
    #[must_use]
    pub fn symmetric(&self) -> Vec<Address> {
        self.neighbours
            .iter()
            .filter(|(_, i)| i.symmetric)
            .map(|(a, _)| *a)
            .collect()
    }

    /// `(neighbour, two_hop)` pairs reachable through symmetric neighbours.
    #[must_use]
    pub fn two_hop_pairs(&self, local: Address) -> Vec<(Address, Address)> {
        let sym: BTreeSet<Address> = self.symmetric().into_iter().collect();
        let mut pairs = Vec::new();
        for (nb, info) in &self.neighbours {
            if !info.symmetric {
                continue;
            }
            for th in &info.two_hop {
                if *th != local && !sym.contains(th) {
                    pairs.push((*nb, *th));
                }
            }
        }
        pairs
    }

    fn change_event(&self, local: Address, added: Vec<Address>, lost: Vec<Address>) -> Event {
        Event {
            ty: types::nhood_change(),
            payload: Payload::Neighbourhood(Arc::new(NeighbourhoodChange {
                sym_neighbours: self.symmetric(),
                two_hop: self.two_hop_pairs(local),
                added,
                lost,
            })),
            meta: Default::default(),
        }
    }
}

/// Builds a HELLO message advertising `neighbours` with their link status.
#[must_use]
pub fn build_hello(
    local: Address,
    seq: u16,
    validity: SimDuration,
    neighbours: &[(Address, bool)],
) -> Message {
    let mut b = MessageBuilder::new(msg_type::HELLO)
        .originator(local)
        .hop_limit(1)
        .seq_num(seq)
        .push_tlv(Tlv::with_value(
            tlv_type::VALIDITY_TIME,
            vec![packetbb::time::encode_time(validity.as_millis())],
        ));
    if !neighbours.is_empty() {
        let addrs: Vec<Address> = neighbours.iter().map(|(a, _)| *a).collect();
        let mut block = AddressBlock::new(addrs).expect("non-empty, single family");
        for (i, (_, sym)) in neighbours.iter().enumerate() {
            let status = if *sym {
                link_status::SYMMETRIC
            } else {
                link_status::ASYMMETRIC
            };
            block.add_tlv(AddressTlv::single(
                Tlv::with_value(tlv_type::LINK_STATUS, vec![status]),
                i as u8,
            ));
        }
        b = b.push_address_block(block);
    }
    b.build()
}

/// Parses the `(address, symmetric?)` pairs a HELLO advertises.
#[must_use]
pub fn parse_hello_neighbours(msg: &Message) -> Vec<(Address, bool)> {
    let mut out = Vec::new();
    for block in msg.address_blocks() {
        for (i, (addr, tlvs)) in block.iter_with_tlvs().enumerate() {
            let _ = i;
            let sym = tlvs.iter().any(|t| {
                t.tlv().tlv_type() == tlv_type::LINK_STATUS
                    && t.tlv().value_u8() == Some(link_status::SYMMETRIC)
            });
            out.push((addr, sym));
        }
    }
    out
}

const EXPIRY_TIMER: &str = "nd:expiry";

crate::cached_event_type! {
    /// The interned expiry-sweep timer type (cached, no per-call lookup).
    fn expiry_timer => EXPIRY_TIMER;
}

struct HelloSource {
    interval: SimDuration,
    validity: SimDuration,
}

impl EventSource for HelloSource {
    fn name(&self) -> &str {
        "hello-source"
    }
    fn period(&self) -> SimDuration {
        self.interval
    }
    fn fire(&mut self, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let table = state.get::<NeighbourTable>();
        let neighbours: Vec<(Address, bool)> = table
            .neighbours
            .iter()
            .map(|(a, i)| (*a, i.symmetric))
            .collect();
        let seq = ctx.os().next_seq();
        let msg = build_hello(ctx.local_addr(), seq, self.validity, &neighbours);
        ctx.os().bump("hello_sent");
        ctx.emit(Event::message_out(types::hello_out(), msg));
    }
}

struct HelloHandler {
    validity: SimDuration,
}

impl EventHandler for HelloHandler {
    fn name(&self) -> &str {
        "hello-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::hello_in()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(msg) = event.message() else { return };
        let sender = match msg.originator().or(event.meta.from) {
            Some(a) => a,
            None => return,
        };
        let local = ctx.local_addr();
        if sender == local {
            return;
        }
        let now = ctx.now();
        let advertised = parse_hello_neighbours(msg);
        // We are symmetric with the sender iff it lists us at all (it heard
        // our HELLO recently).
        let hears_us = advertised.iter().any(|(a, _)| *a == local);
        let two_hop: BTreeSet<Address> = advertised
            .iter()
            .filter(|(a, sym)| *sym && *a != local)
            .map(|(a, _)| *a)
            .collect();

        let table = state.get_mut::<NeighbourTable>();
        let was_symmetric = table
            .neighbours
            .get(&sender)
            .map(|i| i.symmetric)
            .unwrap_or(false);
        let entry = table.neighbours.entry(sender).or_insert(NeighbourInfo {
            last_heard: now,
            symmetric: false,
            two_hop: BTreeSet::new(),
        });
        entry.last_heard = now;
        entry.symmetric = hears_us;
        entry.two_hop = two_hop;
        let _ = self.validity;

        if hears_us && !was_symmetric {
            ctx.os().bump("nd_link_added");
            let ev = state
                .get::<NeighbourTable>()
                .change_event(local, vec![sender], vec![]);
            ctx.emit(ev);
        }
    }
}

struct ExpiryHandler {
    validity: SimDuration,
    sweep: SimDuration,
}

impl EventHandler for ExpiryHandler {
    fn name(&self) -> &str {
        "expiry-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![expiry_timer()]
    }
    fn handle(&mut self, _event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let now = ctx.now();
        let local = ctx.local_addr();
        let table = state.get_mut::<NeighbourTable>();
        let mut lost = Vec::new();
        table.neighbours.retain(|addr, info| {
            let alive = now.since(info.last_heard) <= self.validity;
            if !alive {
                lost.push(*addr);
            }
            alive
        });
        if !lost.is_empty() {
            ctx.os().bump("nd_link_lost");
            let ev = state
                .get::<NeighbourTable>()
                .change_event(local, vec![], lost);
            ctx.emit(ev);
        }
        ctx.set_timer(self.sweep, expiry_timer());
    }
}

/// The name under which the CF registers.
pub const NEIGHBOUR_CF: &str = "neighbour-detection";

/// Builds the Neighbour Detection CF.
#[must_use]
pub fn neighbour_detection_cf(config: NeighbourConfig) -> ManetProtocolCf {
    let sweep = SimDuration::from_micros(config.validity.as_micros() / 2);
    ManetProtocolCf::builder(NEIGHBOUR_CF)
        .tuple(
            EventTuple::new()
                .requires(types::hello_in())
                .provides(types::hello_out())
                .provides(types::nhood_change()),
        )
        .state(StateSlot::new(NeighbourTable::default()))
        .startup_timer(sweep, expiry_timer())
        .source(Box::new(HelloSource {
            interval: config.hello_interval,
            validity: config.validity,
        }))
        .handler(Box::new(HelloHandler {
            validity: config.validity,
        }))
        .handler(Box::new(ExpiryHandler {
            validity: config.validity,
            sweep,
        }))
        .build()
}

/// The System CF registration HELLO messages need.
#[must_use]
pub fn hello_registration() -> MessageRegistration {
    MessageRegistration {
        msg_type: msg_type::HELLO,
        in_event: types::hello_in(),
        out_event: Some(types::hello_out()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        let local = Address::v4([10, 0, 0, 1]);
        let nb1 = Address::v4([10, 0, 0, 2]);
        let nb2 = Address::v4([10, 0, 0, 3]);
        let msg = build_hello(
            local,
            5,
            SimDuration::from_secs(3),
            &[(nb1, true), (nb2, false)],
        );
        assert_eq!(msg.msg_type(), msg_type::HELLO);
        assert_eq!(msg.originator(), Some(local));
        let parsed = parse_hello_neighbours(&msg);
        assert_eq!(parsed, vec![(nb1, true), (nb2, false)]);

        // Wire round trip preserves the advertisement.
        let wire = packetbb::Packet::single(msg).encode_to_vec();
        let back = packetbb::Packet::decode(&wire).unwrap();
        assert_eq!(
            parse_hello_neighbours(&back.messages()[0]),
            vec![(nb1, true), (nb2, false)]
        );
    }

    #[test]
    fn empty_hello_is_valid() {
        let local = Address::v4([10, 0, 0, 1]);
        let msg = build_hello(local, 1, SimDuration::from_secs(3), &[]);
        assert!(parse_hello_neighbours(&msg).is_empty());
    }

    #[test]
    fn neighbour_table_queries() {
        let local = Address::v4([10, 0, 0, 1]);
        let nb = Address::v4([10, 0, 0, 2]);
        let far = Address::v4([10, 0, 0, 3]);
        let mut t = NeighbourTable::default();
        t.neighbours.insert(
            nb,
            NeighbourInfo {
                last_heard: SimTime::ZERO,
                symmetric: true,
                two_hop: [far, local].into_iter().collect(),
            },
        );
        assert_eq!(t.symmetric(), vec![nb]);
        // `local` must be filtered out of the 2-hop set.
        assert_eq!(t.two_hop_pairs(local), vec![(nb, far)]);
    }

    #[test]
    fn cf_composition_has_expected_plugins() {
        let cf = neighbour_detection_cf(NeighbourConfig::default());
        let names = cf.plugin_names();
        assert!(names.contains(&"hello-source".to_string()));
        assert!(names.contains(&"hello-handler".to_string()));
        assert!(names.contains(&"expiry-handler".to_string()));
        assert!(cf.tuple().is_provided(&types::nhood_change()));
        assert!(cf.tuple().is_required(&types::hello_in()));
        assert!(!cf.is_reactive());
    }
}
