//! The System CF: the base CFS unit abstracting over the (simulated) OS.
//!
//! Sits below every protocol CF (§4.3). Its **F** element sends and receives
//! protocol messages over the node's network device — including *message
//! registrations* that map PacketBB message types to `*_IN`/`*_OUT` events
//! (the "NetworkDriver" plug-in of the paper). Its **C** element surfaces
//! netfilter route-control events ("NetLink" plug-in) and context sensors
//! ("PowerStatus" plug-in). Its **S** element — the kernel routing table —
//! is reached directly through [`ProtoCtx::os`](crate::ProtoCtx::os).
//!
//! Outgoing messages emitted within one dispatch round toward the same
//! destination are aggregated into a single PacketBB packet
//! (piggybacking).

use std::sync::Arc;

use netsim::{ContextSample, FilterEvent, NodeOs};
use packetbb::{Address, Message, Packet};

use crate::event::{types, ContextValue, Event, EventType, Payload, RouteCtl};
use crate::registry::EventTuple;

/// Maps one PacketBB message type to the event names it travels under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRegistration {
    /// The PacketBB message type octet.
    pub msg_type: u8,
    /// Event type emitted when such a message arrives.
    pub in_event: EventType,
    /// Event type whose messages the driver transmits (`None` when a
    /// protocol's own F element transmits this message kind directly).
    pub out_event: Option<EventType>,
}

/// The System CF's *configuration* — the part of its identity that
/// reconfiguration operations mutate (message registrations and loaded
/// plug-ins), as a cloneable, comparable value.
///
/// Runtime artefacts (the tx aggregation buffer, sequence numbers,
/// observability counters) are deliberately excluded: a checkpoint/restore
/// pair around an aborted transaction must not rewind history, only undo
/// configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemConfig {
    /// NetworkDriver message registrations, in registration order.
    pub registrations: Vec<MessageRegistration>,
    /// Whether the NetLink plug-in is loaded.
    pub netlink: bool,
    /// Whether the PowerStatus plug-in is loaded.
    pub power_status: bool,
}

/// The System CF.
#[derive(Debug, Default)]
pub struct SystemCf {
    registrations: Vec<MessageRegistration>,
    netlink: bool,
    power_status: bool,
    /// Outgoing (dst, message) pairs aggregated within a dispatch round.
    tx_buffer: Vec<(Option<Address>, Message)>,
    /// Packet sequence number.
    pkt_seq: u16,
    /// Frames that failed to decode (observability).
    decode_errors: u64,
    /// Messages of unregistered types (observability).
    unknown_messages: u64,
}

impl SystemCf {
    /// A System CF with no plug-ins configured.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a NetworkDriver registration for one message type.
    pub fn register_message(&mut self, registration: MessageRegistration) {
        self.registrations
            .retain(|r| r.msg_type != registration.msg_type);
        self.registrations.push(registration);
    }

    /// Convenience: register `msg_type` with both in and out events.
    pub fn register_in_out(&mut self, msg_type: u8, in_event: EventType, out_event: EventType) {
        self.register_message(MessageRegistration {
            msg_type,
            in_event,
            out_event: Some(out_event),
        });
    }

    /// Convenience: register `msg_type` with an in event only (a protocol
    /// F element transmits this kind itself).
    pub fn register_in_only(&mut self, msg_type: u8, in_event: EventType) {
        self.register_message(MessageRegistration {
            msg_type,
            in_event,
            out_event: None,
        });
    }

    /// Loads the NetLink plug-in: netfilter events become routed events.
    pub fn enable_netlink(&mut self) {
        self.netlink = true;
    }

    /// Loads the PowerStatus plug-in: battery samples become
    /// `POWER_STATUS` events.
    pub fn enable_power_status(&mut self) {
        self.power_status = true;
    }

    /// Snapshots the reconfigurable configuration (registrations and
    /// plug-in flags) — the checkpoint half of transactional rollback.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        SystemConfig {
            registrations: self.registrations.clone(),
            netlink: self.netlink,
            power_status: self.power_status,
        }
    }

    /// Restores a configuration previously captured with
    /// [`config`](Self::config), leaving runtime state (tx buffer, packet
    /// sequence, counters) untouched. Callers re-derive the System tuple
    /// afterwards.
    pub fn restore_config(&mut self, config: SystemConfig) {
        self.registrations = config.registrations;
        self.netlink = config.netlink;
        self.power_status = config.power_status;
    }

    /// The System CF's event tuple, derived from its loaded plug-ins.
    #[must_use]
    pub fn tuple(&self) -> EventTuple {
        let mut t = EventTuple::new();
        for r in &self.registrations {
            t = t.provides(r.in_event);
            if let Some(out) = &r.out_event {
                t = t.requires(*out);
            }
        }
        if self.netlink {
            t = t
                .provides(types::no_route())
                .provides(types::route_update())
                .provides(types::send_route_err())
                .provides(types::tx_failed())
                .requires(types::route_found());
        }
        if self.power_status {
            t = t.provides(types::power_status());
        }
        t
    }

    /// Decodes an arriving frame into `*_IN` events.
    #[must_use]
    pub fn rx(&mut self, from: Address, bytes: &[u8]) -> Vec<Event> {
        let packet = match Packet::decode(bytes) {
            Ok(p) => p,
            Err(_) => {
                self.decode_errors += 1;
                return Vec::new();
            }
        };
        let mut events = Vec::new();
        for msg in packet.into_messages() {
            match self
                .registrations
                .iter()
                .find(|r| r.msg_type == msg.msg_type())
            {
                Some(reg) => {
                    events.push(Event::message_in(reg.in_event, Arc::new(msg), from));
                }
                None => self.unknown_messages += 1,
            }
        }
        events
    }

    /// Accepts a routed `*_OUT` event for transmission (buffered for
    /// aggregation until [`flush`](Self::flush)).
    pub fn tx(&mut self, event: &Event) {
        if let Payload::Message(msg) = &event.payload {
            self.tx_buffer.push((event.meta.dst, (**msg).clone()));
        }
    }

    /// Queues a message for transmission directly (the `IForward`
    /// direct-call path used by protocol F elements).
    pub fn send_direct(&mut self, msg: Message, dst: Option<Address>) {
        self.tx_buffer.push((dst, msg));
    }

    /// Handles a routed event the System CF requires (`ROUTE_FOUND`).
    pub fn consume(&mut self, event: &Event, os: &mut NodeOs) {
        if event.ty == types::route_found() {
            if let Some(RouteCtl::RouteFound { dst }) = event.route_ctl() {
                os.reinject(*dst);
            }
        } else if event.meta.dst.is_some() || event.message().is_some() {
            self.tx(event);
        }
    }

    /// Flushes buffered messages as packets: all broadcast messages of a
    /// round share one packet (piggybacking); unicasts are grouped per
    /// destination.
    pub fn flush(&mut self, os: &mut NodeOs) {
        if self.tx_buffer.is_empty() {
            return;
        }
        let buffer = std::mem::take(&mut self.tx_buffer);
        let mut broadcast: Vec<Message> = Vec::new();
        let mut unicast: Vec<(Address, Vec<Message>)> = Vec::new();
        for (dst, msg) in buffer {
            match dst {
                None => broadcast.push(msg),
                Some(addr) => match unicast.iter_mut().find(|(a, _)| *a == addr) {
                    Some((_, v)) => v.push(msg),
                    None => unicast.push((addr, vec![msg])),
                },
            }
        }
        if !broadcast.is_empty() {
            self.pkt_seq = self.pkt_seq.wrapping_add(1);
            let pkt = Packet::builder()
                .seq_num(self.pkt_seq)
                .messages(broadcast)
                .build();
            os.bump("sys_tx_broadcast");
            os.broadcast_control(pkt.encode_to_vec());
        }
        for (addr, msgs) in unicast {
            self.pkt_seq = self.pkt_seq.wrapping_add(1);
            let pkt = Packet::builder()
                .seq_num(self.pkt_seq)
                .messages(msgs)
                .build();
            os.bump("sys_tx_unicast");
            os.unicast_control(addr, pkt.encode_to_vec());
        }
    }

    /// Converts a netfilter event into routed events (NetLink plug-in).
    #[must_use]
    pub fn filter_event(&mut self, event: &FilterEvent) -> Vec<Event> {
        if !self.netlink {
            return Vec::new();
        }
        let (ty, ctl) = match event {
            FilterEvent::NoRoute { dst } => (types::no_route(), RouteCtl::NoRoute { dst: *dst }),
            FilterEvent::RouteUsed { dst, next_hop } => (
                types::route_update(),
                RouteCtl::RouteUsed {
                    dst: *dst,
                    next_hop: *next_hop,
                },
            ),
            FilterEvent::ForwardFailure { dst, src, next_hop } => (
                types::send_route_err(),
                RouteCtl::ForwardFailure {
                    dst: *dst,
                    src: *src,
                    next_hop: *next_hop,
                },
            ),
            FilterEvent::TxFailed { neighbour } => (
                types::tx_failed(),
                RouteCtl::TxFailed {
                    neighbour: *neighbour,
                },
            ),
            _ => return Vec::new(),
        };
        vec![Event {
            ty,
            payload: Payload::RouteCtl(ctl),
            meta: Default::default(),
        }]
    }

    /// Converts a context sample into routed events (PowerStatus plug-in).
    #[must_use]
    pub fn context_event(&mut self, sample: &ContextSample) -> Vec<Event> {
        if !self.power_status {
            return Vec::new();
        }
        match sample {
            ContextSample::Battery(level) => vec![Event {
                ty: types::power_status(),
                payload: Payload::Context(ContextValue::Battery(*level)),
                meta: Default::default(),
            }],
            _ => Vec::new(),
        }
    }

    /// Frames that failed to decode since start.
    #[must_use]
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Messages whose type had no registration.
    #[must_use]
    pub fn unknown_messages(&self) -> u64 {
        self.unknown_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;
    use packetbb::MessageBuilder;

    fn test_os() -> NodeOs {
        NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]))
    }

    fn hello_system() -> SystemCf {
        let mut sys = SystemCf::new();
        sys.register_in_out(0, types::hello_in(), types::hello_out());
        sys.register_in_only(1, types::tc_in());
        sys
    }

    #[test]
    fn tuple_derivation() {
        let mut sys = hello_system();
        sys.enable_netlink();
        sys.enable_power_status();
        let t = sys.tuple();
        assert!(t.is_provided(&types::hello_in()));
        assert!(t.is_required(&types::hello_out()));
        assert!(t.is_provided(&types::tc_in()));
        assert!(!t.is_required(&types::tc_out()), "TC is in-only");
        assert!(t.is_provided(&types::no_route()));
        assert!(t.is_required(&types::route_found()));
        assert!(t.is_provided(&types::power_status()));
    }

    #[test]
    fn rx_maps_messages_to_events() {
        let mut sys = hello_system();
        let from = Address::v4([10, 0, 0, 9]);
        let pkt = Packet::builder()
            .push_message(MessageBuilder::new(0).seq_num(1).build())
            .push_message(MessageBuilder::new(1).seq_num(2).build())
            .push_message(MessageBuilder::new(99).build())
            .build();
        let events = sys.rx(from, &pkt.encode_to_vec());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ty, types::hello_in());
        assert_eq!(events[1].ty, types::tc_in());
        assert_eq!(events[0].meta.from, Some(from));
        assert_eq!(sys.unknown_messages(), 1);
    }

    #[test]
    fn rx_tolerates_garbage() {
        let mut sys = hello_system();
        let events = sys.rx(Address::v4([1, 1, 1, 1]), &[0xFF, 0x00, 0x13]);
        assert!(events.is_empty());
        assert_eq!(sys.decode_errors(), 1);
    }

    #[test]
    fn flush_aggregates_broadcasts() {
        let mut sys = hello_system();
        let mut os = test_os();
        sys.send_direct(MessageBuilder::new(0).build(), None);
        sys.send_direct(MessageBuilder::new(1).build(), None);
        sys.send_direct(
            MessageBuilder::new(1).build(),
            Some(Address::v4([10, 0, 0, 2])),
        );
        sys.flush(&mut os);
        // One broadcast packet (2 piggybacked messages) + one unicast.
        assert_eq!(os.counter("sys_tx_broadcast"), 1);
        assert_eq!(os.counter("sys_tx_unicast"), 1);
        // Second flush is a no-op.
        sys.flush(&mut os);
        assert_eq!(os.counter("sys_tx_broadcast"), 1);
    }

    #[test]
    fn netlink_conversion() {
        let mut sys = hello_system();
        let dst = Address::v4([10, 0, 0, 7]);
        // Disabled: nothing.
        assert!(sys.filter_event(&FilterEvent::NoRoute { dst }).is_empty());
        sys.enable_netlink();
        let evs = sys.filter_event(&FilterEvent::NoRoute { dst });
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ty, types::no_route());
        assert_eq!(evs[0].route_ctl(), Some(&RouteCtl::NoRoute { dst }));
    }

    #[test]
    fn route_found_reinjects() {
        let mut sys = hello_system();
        sys.enable_netlink();
        let mut os = test_os();
        let dst = Address::v4([10, 0, 0, 7]);
        let ev = Event {
            ty: types::route_found(),
            payload: Payload::RouteCtl(RouteCtl::RouteFound { dst }),
            meta: Default::default(),
        };
        sys.consume(&ev, &mut os);
        // The reinject action was queued on the OS.
        // (NodeOs::actions is crate-private to netsim; observe indirectly by
        // asserting nothing panicked and the call is accepted. The
        // integration tests verify end-to-end reinjection.)
    }

    #[test]
    fn power_status_conversion() {
        let mut sys = hello_system();
        assert!(sys.context_event(&ContextSample::Battery(0.5)).is_empty());
        sys.enable_power_status();
        let evs = sys.context_event(&ContextSample::Battery(0.5));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ty, types::power_status());
    }

    #[test]
    fn reregistration_replaces() {
        let mut sys = SystemCf::new();
        sys.register_in_out(0, types::hello_in(), types::hello_out());
        sys.register_in_only(0, types::hello_in());
        let t = sys.tuple();
        assert!(!t.is_required(&types::hello_out()));
    }
}
