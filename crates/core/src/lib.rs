//! MANETKit: a runtime component framework for ad-hoc routing protocols.
//!
//! This crate reproduces the framework proposed in *"MANETKit: Supporting
//! the Dynamic Deployment and Reconfiguration of Ad-Hoc Routing Protocols"*
//! (Middleware 2009): protocols are built from fine-grained components
//! following the **Control–Forward–State** pattern, composed declaratively
//! through `<required-events, provided-events>` tuples, and reconfigured at
//! runtime — switching protocols, deploying several simultaneously, and
//! deriving variants by swapping individual handlers.
//!
//! # Architecture
//!
//! * [`event`] — the polymorphic event ontology (PacketBB message payloads,
//!   context readings, route-control signals).
//! * [`registry`] — [`EventTuple`]: a CFS unit's declarative event
//!   interface.
//! * [`manager`] — the [`FrameworkManager`]: derives event wiring from the
//!   tuples, with exclusive receive, interposition and loop avoidance; also
//!   the context concentrator.
//! * [`protocol`] — [`ManetProtocolCf`]: the CFS pattern with pluggable
//!   [`EventHandler`]s, [`EventSource`]s, a [`Forwarder`] and a
//!   transferable [`StateSlot`].
//! * [`system`] — the [`SystemCf`]: the OS surrogate (network driver,
//!   netlink, power status).
//! * [`neighbour`] — the reusable Neighbour Detection CF.
//! * [`concurrency`] — pluggable concurrency models.
//! * [`node`] — [`Deployment`] and [`ManetNode`]: one framework instance on
//!   a simulated node, with quiescent-point reconfiguration through
//!   [`NodeHandle`]s.
//!
//! # Example: a deployment with neighbour detection
//!
//! ```
//! use manetkit::prelude::*;
//! use netsim::{NodeId, SimDuration, Topology, World};
//!
//! let mut world = World::builder().topology(Topology::line(2)).seed(7).build();
//! for i in 0..2 {
//!     let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
//!     let dep = node.deployment_mut();
//!     dep.system_mut().register_message(manetkit::neighbour::hello_registration());
//!     let cf = manetkit::neighbour::neighbour_detection_cf(Default::default());
//!     dep.add_protocol_offline(cf).unwrap();
//!     world.install_agent(NodeId(i), Box::new(node));
//! }
//! world.run_for(SimDuration::from_secs(5));
//! assert!(world.stats().control_frames > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concurrency;
pub mod event;
pub mod manager;
pub mod neighbour;
pub mod node;
pub mod protocol;
pub mod reconfig;
pub mod registry;
pub mod smallvec;
pub mod system;
pub mod telemetry;
pub mod txn;

pub use concurrency::{ConcurrencyModel, DispatchQueue, LabReport, ThroughputLab};
pub use event::{Event, EventMeta, EventType, Payload};
pub use manager::FrameworkManager;
pub use node::{
    DeployError, Deployment, ManetNode, NodeHandle, NodeStatus, ReconfigOp, TxnCtl, TxnPhase,
    TxnReport,
};
pub use protocol::{
    EventHandler, EventSource, Forwarder, ManetProtocolCf, ProtoCtx, StateCodec, StateSlot,
};
pub use reconfig::{
    FleetCoordinator, FleetStatus, FleetTxnReport, HealthGate, ReconfigRequest, Strategy,
    TxnOptions, TxnVerdict,
};
pub use registry::EventTuple;
pub use smallvec::SmallVec;
pub use system::{SystemCf, SystemConfig};
pub use telemetry::{BusTelemetry, UnitCounters};
pub use txn::invariants::{
    assert_fleet_conservation, check_fleet_conservation, ConservationViolation, TxnCounters,
};
pub use txn::{structural_hash, CompositionFingerprint, ProtocolFingerprint, TxnAborted};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::concurrency::ConcurrencyModel;
    pub use crate::event::{types as event_types, Event, EventType, Payload};
    pub use crate::node::{Deployment, ManetNode, NodeHandle, ReconfigOp};
    pub use crate::protocol::{
        EventHandler, EventSource, Forwarder, ManetProtocolCf, ProtoCtx, StateSlot,
    };
    pub use crate::reconfig::{FleetCoordinator, ReconfigRequest, Strategy};
    pub use crate::registry::EventTuple;
}
