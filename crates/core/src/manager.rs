//! The Framework Manager: declarative event wiring between CFS units.
//!
//! Units (protocol CFs and the System CF) register their
//! [`EventTuple`]s; the manager derives the routing graph: for each event
//! type, which units receive it, honouring exclusive receive, interposition
//! chains and loop avoidance (§4.2). Changing a tuple at runtime re-derives
//! the wiring — the paper's "declarative automatic dynamic reconfiguration".
//!
//! The manager also hosts the *context concentrator*: a façade collecting
//! the most recent context readings for higher-level decision-making
//! software (§4.5).

use std::collections::HashMap;

use crate::event::{ContextValue, EventType};
use crate::registry::EventTuple;

/// Index of a registered unit (stable across rewires, not across
/// unregister).
pub type UnitId = usize;

#[derive(Debug, Clone)]
struct UnitDecl {
    name: String,
    tuple: EventTuple,
    active: bool,
}

#[derive(Debug, Clone, Default)]
struct Wiring {
    /// Units that provide-and-require the type, in registration order.
    interposers: Vec<UnitId>,
    /// The exclusive consumer, if any (first registered wins).
    exclusive: Option<UnitId>,
    /// Plain consumers in registration order (excluding interposers).
    consumers: Vec<UnitId>,
}

/// Derives and maintains the event routing graph from unit tuples.
#[derive(Debug, Default)]
pub struct FrameworkManager {
    units: Vec<UnitDecl>,
    wiring: HashMap<EventType, Wiring>,
    rewires: u64,
    context: HashMap<String, ContextValue>,
}

impl FrameworkManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a unit with its event tuple; returns its id.
    ///
    /// Registration order is stack order: earlier units are "lower" and win
    /// exclusive-consumer ties.
    pub fn register(&mut self, name: impl Into<String>, tuple: EventTuple) -> UnitId {
        let id = self.units.len();
        self.units.push(UnitDecl {
            name: name.into(),
            tuple,
            active: true,
        });
        self.rewire();
        id
    }

    /// Replaces a unit's tuple and rewires (declarative reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn update_tuple(&mut self, id: UnitId, tuple: EventTuple) {
        self.units[id].tuple = tuple;
        self.rewire();
    }

    /// Deactivates a unit (its wiring disappears; the id remains valid).
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn deactivate(&mut self, id: UnitId) {
        self.units[id].active = false;
        self.rewire();
    }

    /// Reactivates a previously deactivated unit.
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn reactivate(&mut self, id: UnitId) {
        self.units[id].active = true;
        self.rewire();
    }

    /// The unit's registered name.
    #[must_use]
    pub fn unit_name(&self, id: UnitId) -> Option<&str> {
        self.units.get(id).map(|u| u.name.as_str())
    }

    /// Finds a unit id by name.
    #[must_use]
    pub fn unit_named(&self, name: &str) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| u.active && u.name == name)
    }

    /// The unit's current tuple.
    #[must_use]
    pub fn tuple(&self, id: UnitId) -> Option<&EventTuple> {
        self.units.get(id).map(|u| &u.tuple)
    }

    /// How many times the wiring has been re-derived (observability).
    #[must_use]
    pub fn rewire_count(&self) -> u64 {
        self.rewires
    }

    /// Recomputes the routing graph from the current tuples.
    pub fn rewire(&mut self) {
        self.rewires += 1;
        let mut wiring: HashMap<EventType, Wiring> = HashMap::new();
        for (id, unit) in self.units.iter().enumerate() {
            if !unit.active {
                continue;
            }
            for ty in &unit.tuple.required {
                let w = wiring.entry(ty.clone()).or_default();
                if unit.tuple.is_interposer(ty) {
                    w.interposers.push(id);
                } else if unit.tuple.is_exclusive(ty) {
                    if w.exclusive.is_none() {
                        w.exclusive = Some(id);
                    }
                } else {
                    w.consumers.push(id);
                }
            }
        }
        self.wiring = wiring;
    }

    /// Computes the recipients of an event of type `ty` emitted by `origin`
    /// (`None` when the System CF or external code emitted it).
    ///
    /// Routing semantics:
    ///
    /// 1. Interposers for `ty` form a chain in registration order. An event
    ///    enters the chain at the start — or, when the origin is itself an
    ///    interposer, just after the origin's position — and is delivered to
    ///    the *next* interposer only.
    /// 2. Past the chain, an exclusive consumer (if any) receives the event
    ///    alone.
    /// 3. Otherwise all plain consumers receive it ("broadcast"
    ///    propagation), excluding the origin (loop avoidance).
    #[must_use]
    pub fn route(&self, ty: &EventType, origin: Option<UnitId>) -> Vec<UnitId> {
        let Some(w) = self.wiring.get(ty) else {
            return Vec::new();
        };
        // Position in the interposer chain to resume after.
        let chain_start = match origin {
            Some(o) => match w.interposers.iter().position(|i| *i == o) {
                Some(pos) => pos + 1,
                None => 0,
            },
            None => 0,
        };
        if let Some(next) = w.interposers.get(chain_start) {
            if Some(*next) != origin {
                return vec![*next];
            }
        }
        if let Some(x) = w.exclusive {
            if Some(x) != origin {
                return vec![x];
            }
        }
        w.consumers
            .iter()
            .copied()
            .filter(|c| Some(*c) != origin)
            .collect()
    }

    // ---- context concentrator ---------------------------------------------

    /// Records a context reading (called by the deployment as context events
    /// flow).
    pub fn record_context(&mut self, source: impl Into<String>, value: ContextValue) {
        self.context.insert(source.into(), value);
    }

    /// The most recent context reading from `source`, if any.
    #[must_use]
    pub fn latest_context(&self, source: &str) -> Option<&ContextValue> {
        self.context.get(source)
    }

    /// All current context readings (the façade for decision software).
    #[must_use]
    pub fn context_snapshot(&self) -> &HashMap<String, ContextValue> {
        &self.context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::types;

    fn manager_with(units: Vec<(&str, EventTuple)>) -> FrameworkManager {
        let mut m = FrameworkManager::new();
        for (name, tuple) in units {
            m.register(name, tuple);
        }
        m
    }

    #[test]
    fn provider_to_consumer() {
        let m = manager_with(vec![
            ("system", EventTuple::new().provides(types::tc_in())),
            ("olsr", EventTuple::new().requires(types::tc_in())),
        ]);
        assert_eq!(m.route(&types::tc_in(), Some(0)), vec![1]);
        assert!(m.route(&types::tc_out(), Some(0)).is_empty());
    }

    #[test]
    fn broadcast_to_multiple_consumers() {
        let m = manager_with(vec![
            ("system", EventTuple::new().provides(types::hello_in())),
            ("mpr", EventTuple::new().requires(types::hello_in())),
            ("sniffer", EventTuple::new().requires(types::hello_in())),
        ]);
        assert_eq!(m.route(&types::hello_in(), Some(0)), vec![1, 2]);
    }

    #[test]
    fn loop_avoidance_excludes_origin() {
        // Unit both provides and requires NHOOD_CHANGE but is not counted an
        // interposer for its own emissions.
        let m = manager_with(vec![
            ("a", EventTuple::new().provides(types::nhood_change())),
            ("b", EventTuple::new().requires(types::nhood_change())),
        ]);
        assert_eq!(m.route(&types::nhood_change(), Some(0)), vec![1]);
        // b emitting (hypothetically) must not deliver to itself.
        assert!(m.route(&types::nhood_change(), Some(1)).is_empty());
    }

    #[test]
    fn exclusive_consumer_wins() {
        let m = manager_with(vec![
            ("olsr", EventTuple::new().provides(types::tc_out())),
            ("mpr", EventTuple::new().requires_exclusive(types::tc_out())),
            ("driver", EventTuple::new().requires(types::tc_out())),
        ]);
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
    }

    #[test]
    fn interposer_chain() {
        let mut m = manager_with(vec![
            ("olsr", EventTuple::new().provides(types::tc_out())),
            ("mpr", EventTuple::new().requires_exclusive(types::tc_out())),
        ]);
        // Without the interposer, TC_OUT flows olsr -> mpr.
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
        // Insert fisheye: requires and provides TC_OUT.
        let fisheye = m.register(
            "fisheye",
            EventTuple::new()
                .requires(types::tc_out())
                .provides(types::tc_out()),
        );
        // Now olsr -> fisheye -> mpr.
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![fisheye]);
        assert_eq!(m.route(&types::tc_out(), Some(fisheye)), vec![1]);
    }

    #[test]
    fn two_interposers_chain_in_order() {
        let m = manager_with(vec![
            ("p", EventTuple::new().provides(types::tc_out())),
            (
                "i1",
                EventTuple::new()
                    .requires(types::tc_out())
                    .provides(types::tc_out()),
            ),
            (
                "i2",
                EventTuple::new()
                    .requires(types::tc_out())
                    .provides(types::tc_out()),
            ),
            ("sink", EventTuple::new().requires(types::tc_out())),
        ]);
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
        assert_eq!(m.route(&types::tc_out(), Some(1)), vec![2]);
        assert_eq!(m.route(&types::tc_out(), Some(2)), vec![3]);
    }

    #[test]
    fn tuple_update_rewires() {
        let mut m = manager_with(vec![
            ("p", EventTuple::new().provides(types::re_out())),
            ("sink", EventTuple::new().requires(types::re_out())),
        ]);
        let before = m.rewire_count();
        m.update_tuple(1, EventTuple::new());
        assert!(m.rewire_count() > before);
        assert!(m.route(&types::re_out(), Some(0)).is_empty());
    }

    #[test]
    fn deactivate_removes_from_wiring() {
        let mut m = manager_with(vec![
            ("p", EventTuple::new().provides(types::re_out())),
            ("sink", EventTuple::new().requires(types::re_out())),
        ]);
        m.deactivate(1);
        assert!(m.route(&types::re_out(), Some(0)).is_empty());
        assert_eq!(m.unit_named("sink"), None);
        m.reactivate(1);
        assert_eq!(m.route(&types::re_out(), Some(0)), vec![1]);
    }

    #[test]
    fn context_concentrator() {
        let mut m = FrameworkManager::new();
        assert!(m.latest_context("battery").is_none());
        m.record_context("battery", ContextValue::Battery(0.8));
        m.record_context("battery", ContextValue::Battery(0.7));
        assert_eq!(
            m.latest_context("battery"),
            Some(&ContextValue::Battery(0.7))
        );
        assert_eq!(m.context_snapshot().len(), 1);
    }
}
