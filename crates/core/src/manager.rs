//! The Framework Manager: declarative event wiring between CFS units.
//!
//! Units (protocol CFs and the System CF) register their
//! [`EventTuple`]s; the manager derives the routing graph: for each event
//! type, which units receive it, honouring exclusive receive, interposition
//! chains and loop avoidance (§4.2). Changing a tuple at runtime re-derives
//! the wiring — the paper's "declarative automatic dynamic reconfiguration".
//!
//! The manager also hosts the *context concentrator*: a façade collecting
//! the most recent context readings for higher-level decision-making
//! software (§4.5).

use std::collections::HashMap;

use crate::event::{ContextValue, EventType};
use crate::registry::EventTuple;
use crate::smallvec::SmallVec;

/// Index of a registered unit (stable across rewires, not across
/// unregister).
pub type UnitId = usize;

/// Inline capacity of per-type recipient lists: most event types have one or
/// two recipients, so four inline slots keep the whole routing table
/// allocation-free for typical deployments.
const INLINE_UNITS: usize = 4;

#[derive(Debug, Clone)]
struct UnitDecl {
    name: String,
    tuple: EventTuple,
    active: bool,
}

#[derive(Debug, Clone, Default)]
struct Wiring {
    /// Units that provide-and-require the type, in registration order.
    interposers: SmallVec<UnitId, INLINE_UNITS>,
    /// The exclusive consumer, if any (first registered wins).
    exclusive: Option<UnitId>,
    /// Plain consumers in registration order (excluding interposers).
    consumers: SmallVec<UnitId, INLINE_UNITS>,
}

impl Wiring {
    fn is_empty(&self) -> bool {
        self.interposers.is_empty() && self.exclusive.is_none() && self.consumers.is_empty()
    }
}

/// Derives and maintains the event routing graph from unit tuples.
///
/// The routing table is *dense*: `wiring[ty.id()]` holds the precomputed
/// recipient lists for event type `ty`. It is rebuilt only when the unit set
/// or a tuple changes ([`FrameworkManager::rewire`]) — per-dispatch routing
/// is a bounds-checked index, no hashing and no allocation
/// ([`FrameworkManager::route_for_each`]).
#[derive(Debug, Default)]
pub struct FrameworkManager {
    units: Vec<UnitDecl>,
    /// Dense routing table indexed by [`EventType::id`]. Types interned
    /// after the last rewire (or absent from every tuple) simply fall
    /// outside the table / hold an empty entry — both mean "no recipients".
    wiring: Vec<Wiring>,
    rewires: u64,
    context: HashMap<String, ContextValue>,
}

impl FrameworkManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a unit with its event tuple; returns its id.
    ///
    /// Registration order is stack order: earlier units are "lower" and win
    /// exclusive-consumer ties.
    pub fn register(&mut self, name: impl Into<String>, tuple: EventTuple) -> UnitId {
        let id = self.units.len();
        self.units.push(UnitDecl {
            name: name.into(),
            tuple,
            active: true,
        });
        self.rewire();
        id
    }

    /// Replaces a unit's tuple and rewires (declarative reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn update_tuple(&mut self, id: UnitId, tuple: EventTuple) {
        self.units[id].tuple = tuple;
        self.rewire();
    }

    /// Deactivates a unit (its wiring disappears; the id remains valid).
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn deactivate(&mut self, id: UnitId) {
        self.units[id].active = false;
        self.rewire();
    }

    /// Reactivates a previously deactivated unit.
    ///
    /// # Panics
    ///
    /// Panics when `id` was never registered.
    pub fn reactivate(&mut self, id: UnitId) {
        self.units[id].active = true;
        self.rewire();
    }

    /// The unit's registered name.
    #[must_use]
    pub fn unit_name(&self, id: UnitId) -> Option<&str> {
        self.units.get(id).map(|u| u.name.as_str())
    }

    /// Finds a unit id by name.
    #[must_use]
    pub fn unit_named(&self, name: &str) -> Option<UnitId> {
        self.units.iter().position(|u| u.active && u.name == name)
    }

    /// The unit's current tuple.
    #[must_use]
    pub fn tuple(&self, id: UnitId) -> Option<&EventTuple> {
        self.units.get(id).map(|u| &u.tuple)
    }

    /// How many times the wiring has been re-derived (observability).
    #[must_use]
    pub fn rewire_count(&self) -> u64 {
        self.rewires
    }

    /// Recomputes the dense routing table from the current tuples.
    ///
    /// This is the *only* place the table is built; dispatch never touches
    /// it mutably. Cost is O(units × tuple size) and is paid on register /
    /// update / (de)activate — i.e. on deployment and reconfiguration, not
    /// per event.
    pub fn rewire(&mut self) {
        self.rewires += 1;
        // Size the table to the highest required event id; ids are dense so
        // this is at most the process-wide intern count.
        let table_len = self
            .units
            .iter()
            .filter(|u| u.active)
            .flat_map(|u| u.tuple.required.iter())
            .map(|ty| ty.id() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut wiring = vec![Wiring::default(); table_len];
        for (id, unit) in self.units.iter().enumerate() {
            if !unit.active {
                continue;
            }
            for ty in &unit.tuple.required {
                let w = &mut wiring[ty.id() as usize];
                if unit.tuple.is_interposer(ty) {
                    w.interposers.push(id);
                } else if unit.tuple.is_exclusive(ty) {
                    if w.exclusive.is_none() {
                        w.exclusive = Some(id);
                    }
                } else {
                    w.consumers.push(id);
                }
            }
        }
        self.wiring = wiring;
    }

    /// Computes the recipients of an event of type `ty` emitted by `origin`
    /// (`None` when the System CF or external code emitted it).
    ///
    /// Routing semantics:
    ///
    /// 1. Interposers for `ty` form a chain in registration order. An event
    ///    enters the chain at the start — or, when the origin is itself an
    ///    interposer, just after the origin's position — and is delivered to
    ///    the *next* interposer only.
    /// 2. Past the chain, an exclusive consumer (if any) receives the event
    ///    alone.
    /// 3. Otherwise all plain consumers receive it ("broadcast"
    ///    propagation), excluding the origin (loop avoidance).
    #[must_use]
    pub fn route(&self, ty: &EventType, origin: Option<UnitId>) -> Vec<UnitId> {
        let mut out = Vec::new();
        self.route_for_each(*ty, origin, |id| out.push(id));
        out
    }

    /// Visits the recipients of an event of type `ty` emitted by `origin`
    /// without allocating — the hot-path variant of
    /// [`FrameworkManager::route`]. Recipients are visited in the same order
    /// `route` would return them.
    pub fn route_for_each(
        &self,
        ty: EventType,
        origin: Option<UnitId>,
        mut visit: impl FnMut(UnitId),
    ) {
        let Some(w) = self.wiring.get(ty.id() as usize) else {
            return;
        };
        if w.is_empty() {
            return;
        }
        // Position in the interposer chain to resume after.
        let chain_start = match origin {
            Some(o) => match w.interposers.iter().position(|i| *i == o) {
                Some(pos) => pos + 1,
                None => 0,
            },
            None => 0,
        };
        if let Some(next) = w.interposers.as_slice().get(chain_start) {
            if Some(*next) != origin {
                visit(*next);
                return;
            }
        }
        if let Some(x) = w.exclusive {
            if Some(x) != origin {
                visit(x);
                return;
            }
        }
        for c in &w.consumers {
            if Some(*c) != origin {
                visit(*c);
            }
        }
    }

    /// Number of recipients `route` would return, without allocating.
    #[must_use]
    pub fn route_count(&self, ty: EventType, origin: Option<UnitId>) -> usize {
        let mut n = 0;
        self.route_for_each(ty, origin, |_| n += 1);
        n
    }

    // ---- context concentrator ---------------------------------------------

    /// Records a context reading (called by the deployment as context events
    /// flow).
    pub fn record_context(&mut self, source: &str, value: ContextValue) {
        // Overwrite in place when the source is known: context events flow
        // on the dispatch hot path, and re-inserting would allocate a fresh
        // key `String` per reading.
        if let Some(slot) = self.context.get_mut(source) {
            *slot = value;
        } else {
            self.context.insert(source.to_string(), value);
        }
    }

    /// The most recent context reading from `source`, if any.
    #[must_use]
    pub fn latest_context(&self, source: &str) -> Option<&ContextValue> {
        self.context.get(source)
    }

    /// All current context readings (the façade for decision software).
    #[must_use]
    pub fn context_snapshot(&self) -> &HashMap<String, ContextValue> {
        &self.context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::types;

    fn manager_with(units: Vec<(&str, EventTuple)>) -> FrameworkManager {
        let mut m = FrameworkManager::new();
        for (name, tuple) in units {
            m.register(name, tuple);
        }
        m
    }

    #[test]
    fn provider_to_consumer() {
        let m = manager_with(vec![
            ("system", EventTuple::new().provides(types::tc_in())),
            ("olsr", EventTuple::new().requires(types::tc_in())),
        ]);
        assert_eq!(m.route(&types::tc_in(), Some(0)), vec![1]);
        assert!(m.route(&types::tc_out(), Some(0)).is_empty());
    }

    #[test]
    fn broadcast_to_multiple_consumers() {
        let m = manager_with(vec![
            ("system", EventTuple::new().provides(types::hello_in())),
            ("mpr", EventTuple::new().requires(types::hello_in())),
            ("sniffer", EventTuple::new().requires(types::hello_in())),
        ]);
        assert_eq!(m.route(&types::hello_in(), Some(0)), vec![1, 2]);
    }

    #[test]
    fn loop_avoidance_excludes_origin() {
        // Unit both provides and requires NHOOD_CHANGE but is not counted an
        // interposer for its own emissions.
        let m = manager_with(vec![
            ("a", EventTuple::new().provides(types::nhood_change())),
            ("b", EventTuple::new().requires(types::nhood_change())),
        ]);
        assert_eq!(m.route(&types::nhood_change(), Some(0)), vec![1]);
        // b emitting (hypothetically) must not deliver to itself.
        assert!(m.route(&types::nhood_change(), Some(1)).is_empty());
    }

    #[test]
    fn exclusive_consumer_wins() {
        let m = manager_with(vec![
            ("olsr", EventTuple::new().provides(types::tc_out())),
            ("mpr", EventTuple::new().requires_exclusive(types::tc_out())),
            ("driver", EventTuple::new().requires(types::tc_out())),
        ]);
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
    }

    #[test]
    fn interposer_chain() {
        let mut m = manager_with(vec![
            ("olsr", EventTuple::new().provides(types::tc_out())),
            ("mpr", EventTuple::new().requires_exclusive(types::tc_out())),
        ]);
        // Without the interposer, TC_OUT flows olsr -> mpr.
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
        // Insert fisheye: requires and provides TC_OUT.
        let fisheye = m.register(
            "fisheye",
            EventTuple::new()
                .requires(types::tc_out())
                .provides(types::tc_out()),
        );
        // Now olsr -> fisheye -> mpr.
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![fisheye]);
        assert_eq!(m.route(&types::tc_out(), Some(fisheye)), vec![1]);
    }

    #[test]
    fn two_interposers_chain_in_order() {
        let m = manager_with(vec![
            ("p", EventTuple::new().provides(types::tc_out())),
            (
                "i1",
                EventTuple::new()
                    .requires(types::tc_out())
                    .provides(types::tc_out()),
            ),
            (
                "i2",
                EventTuple::new()
                    .requires(types::tc_out())
                    .provides(types::tc_out()),
            ),
            ("sink", EventTuple::new().requires(types::tc_out())),
        ]);
        assert_eq!(m.route(&types::tc_out(), Some(0)), vec![1]);
        assert_eq!(m.route(&types::tc_out(), Some(1)), vec![2]);
        assert_eq!(m.route(&types::tc_out(), Some(2)), vec![3]);
    }

    #[test]
    fn tuple_update_rewires() {
        let mut m = manager_with(vec![
            ("p", EventTuple::new().provides(types::re_out())),
            ("sink", EventTuple::new().requires(types::re_out())),
        ]);
        let before = m.rewire_count();
        m.update_tuple(1, EventTuple::new());
        assert!(m.rewire_count() > before);
        assert!(m.route(&types::re_out(), Some(0)).is_empty());
    }

    #[test]
    fn deactivate_removes_from_wiring() {
        let mut m = manager_with(vec![
            ("p", EventTuple::new().provides(types::re_out())),
            ("sink", EventTuple::new().requires(types::re_out())),
        ]);
        m.deactivate(1);
        assert!(m.route(&types::re_out(), Some(0)).is_empty());
        assert_eq!(m.unit_named("sink"), None);
        m.reactivate(1);
        assert_eq!(m.route(&types::re_out(), Some(0)), vec![1]);
    }

    #[test]
    fn routing_is_read_only_between_rewires() {
        let m = manager_with(vec![
            ("system", EventTuple::new().provides(types::hello_in())),
            ("mpr", EventTuple::new().requires(types::hello_in())),
            ("sniffer", EventTuple::new().requires(types::hello_in())),
        ]);
        let rewires = m.rewire_count();
        // Routing — including for types the table has never seen — must not
        // rebuild anything.
        for _ in 0..100 {
            let mut seen = Vec::new();
            m.route_for_each(types::hello_in(), Some(0), |id| seen.push(id));
            assert_eq!(seen, vec![1, 2]);
            assert_eq!(m.route_count(types::hello_in(), Some(0)), 2);
            m.route_for_each(EventType::named("__NEVER_WIRED"), None, |_| {
                panic!("no recipients expected")
            });
        }
        assert_eq!(m.rewire_count(), rewires);
    }

    #[test]
    fn context_concentrator() {
        let mut m = FrameworkManager::new();
        assert!(m.latest_context("battery").is_none());
        m.record_context("battery", ContextValue::Battery(0.8));
        m.record_context("battery", ContextValue::Battery(0.7));
        assert_eq!(
            m.latest_context("battery"),
            Some(&ContextValue::Battery(0.7))
        );
        assert_eq!(m.context_snapshot().len(), 1);
    }
}
