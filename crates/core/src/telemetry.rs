//! Dispatch telemetry for the unified event bus.
//!
//! A [`Deployment`](crate::node::Deployment) keeps one [`BusTelemetry`]
//! updated as events flow: per-unit in/out counters, the dispatch-queue
//! high-water mark and wall-clock dispatch latency. The deterministic
//! counters are flushed into the node's
//! [`NodeOs`](netsim::NodeOs) counters so they surface in
//! [`WorldStats::agent_counters`](netsim::WorldStats) under `bus.*` names;
//! the wall-clock latency is deliberately *not* flushed (it would make
//! otherwise byte-identical simulation stats differ between runs) and is
//! read directly via [`Deployment::telemetry`](crate::node::Deployment::telemetry)
//! by the benchmarks.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::manager::UnitId;

/// Interns an arbitrary counter name, returning a `&'static str`.
///
/// Each distinct name is leaked at most once process-wide, so repeated
/// deployments (one per simulated node) can stamp per-unit counter names
/// without growing memory per deployment. Needed because
/// [`netsim::NodeOs`] counters key on `&'static str`.
#[must_use]
pub fn intern_name(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = NAMES
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Per-unit event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCounters {
    /// Events delivered *to* the unit.
    pub events_in: u64,
    /// Events emitted *by* the unit (before fan-out).
    pub events_out: u64,
}

/// Aggregate dispatch telemetry of one deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusTelemetry {
    units: Vec<UnitCounters>,
    /// Highest number of events ever pending in a dispatch queue.
    pub queue_depth_hwm: usize,
    /// Dispatch rounds timed.
    pub dispatch_rounds: u64,
    /// Total wall-clock time spent inside dispatch rounds, in microseconds.
    /// Nondeterministic — never merged into simulation statistics.
    pub dispatch_micros: u64,
}

impl BusTelemetry {
    /// Fresh, all-zero telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn unit_mut(&mut self, unit: UnitId) -> &mut UnitCounters {
        if self.units.len() <= unit {
            self.units.resize(unit + 1, UnitCounters::default());
        }
        &mut self.units[unit]
    }

    /// Records one event delivered to `unit`.
    pub fn record_in(&mut self, unit: UnitId) {
        self.unit_mut(unit).events_in += 1;
    }

    /// Records one event emitted by `unit`.
    pub fn record_out(&mut self, unit: UnitId) {
        self.unit_mut(unit).events_out += 1;
    }

    /// Raises the queue-depth high-water mark to `depth` if higher.
    pub fn observe_queue_depth(&mut self, depth: usize) {
        if depth > self.queue_depth_hwm {
            self.queue_depth_hwm = depth;
        }
    }

    /// Accounts one completed dispatch round of wall-clock length `elapsed`.
    pub fn record_round(&mut self, elapsed: Duration) {
        self.dispatch_rounds += 1;
        self.dispatch_micros += u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    }

    /// Counters of `unit` (zero when the unit never moved an event).
    #[must_use]
    pub fn unit(&self, unit: UnitId) -> UnitCounters {
        self.units.get(unit).copied().unwrap_or_default()
    }

    /// Per-unit counters indexed by [`UnitId`].
    #[must_use]
    pub fn units(&self) -> &[UnitCounters] {
        &self.units
    }

    /// Mean wall-clock dispatch latency per round, in microseconds.
    #[must_use]
    pub fn mean_dispatch_micros(&self) -> f64 {
        if self.dispatch_rounds == 0 {
            return 0.0;
        }
        self.dispatch_micros as f64 / self.dispatch_rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = intern_name("bus.test.events_in");
        let b = intern_name("bus.test.events_in");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "bus.test.events_in");
    }

    #[test]
    fn counters_accumulate() {
        let mut t = BusTelemetry::new();
        t.record_in(2);
        t.record_in(2);
        t.record_out(0);
        assert_eq!(t.unit(2).events_in, 2);
        assert_eq!(t.unit(0).events_out, 1);
        assert_eq!(t.unit(7), UnitCounters::default());
        assert_eq!(t.units().len(), 3);
    }

    #[test]
    fn hwm_and_latency() {
        let mut t = BusTelemetry::new();
        t.observe_queue_depth(3);
        t.observe_queue_depth(1);
        assert_eq!(t.queue_depth_hwm, 3);
        t.record_round(Duration::from_micros(10));
        t.record_round(Duration::from_micros(30));
        assert_eq!(t.dispatch_rounds, 2);
        assert_eq!(t.dispatch_micros, 40);
        assert!((t.mean_dispatch_micros() - 20.0).abs() < 1e-9);
    }
}
