//! Transactional reconfiguration: checkpoint, apply, validate, roll back.
//!
//! The quiescence discipline (§4.5) guarantees no event is *in flight* when
//! a reconfiguration runs, but it says nothing about what happens when the
//! reconfiguration itself fails halfway: a `SwitchProtocol` whose add leg is
//! vetoed would previously leave the node with the old protocol gone and the
//! new one never installed. This module wraps a batch of [`ReconfigOp`]s in
//! a transaction:
//!
//! 1. **Checkpoint** — capture a [`CompositionFingerprint`] of the
//!    architecture meta-model, protocol tuples/plug-ins, exported protocol
//!    state and System CF configuration.
//! 2. **Apply** — run each op while building a physical undo log (removed
//!    CFs are *kept*, not reconstructed — protocol state lives in
//!    type-erased [`StateSlot`](crate::protocol::StateSlot)s that cannot be
//!    cloned).
//! 3. **Validate** — any op failure, integrity veto, quiescence timeout or
//!    non-undoable op aborts the transaction.
//! 4. **Roll back** — unwind the undo log in reverse and verify the
//!    fingerprint matches the checkpoint, so an abort provably restores the
//!    pre-transaction composition.
//!
//! A prepared transaction can be held open (two-phase commit across a
//! fleet: see [`crate::reconfig::FleetCoordinator::execute`] with the
//! `TwoPhase` strategy) and either
//! committed or rolled back later; after commit the undo log is retained so
//! a health-gated coordinator can still *revert* a composition that turns
//! out to regress delivery.
//!
//! All transitions emit trace records (`txn_prepare`, `txn_commit`,
//! `txn_abort`, `txn_rollback`, `txn_revert`) and bump `txn.*` OS counters
//! that surface in `WorldStats::agent_counters`.

use std::fmt;
use std::time::Duration;

use netsim::NodeOs;

use crate::node::{Deployment, ReconfigOp};
use crate::protocol::ManetProtocolCf;
use crate::registry::EventTuple;
use crate::system::SystemConfig;

/// Default wall-clock budget for reaching quiescence on the meta-CF's
/// [`QuiescenceLock`](opencom::QuiescenceLock) before a prepare gives up.
pub const DEFAULT_QUIESCE_WITHIN: Duration = Duration::from_millis(100);

/// Why a transaction aborted.
///
/// The reason tags are interned `&'static str`s so they double as trace
/// record tags.
#[derive(Debug, Clone)]
pub struct TxnAborted {
    /// Transaction id.
    pub id: u64,
    /// Machine-readable reason tag (`op_failed`, `integrity`,
    /// `non_undoable`, `quiesce_timeout`, `prepare_timeout`, `peer_abort`,
    /// `crashed`, `health`, `busy`).
    pub reason: &'static str,
    /// Human-readable detail (the underlying error).
    pub detail: String,
    /// Whether the rollback verified byte-identical to the checkpoint.
    pub rollback_clean: bool,
}

impl fmt::Display for TxnAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txn {} aborted ({}): {}",
            self.id, self.reason, self.detail
        )?;
        if !self.rollback_clean {
            write!(f, " [rollback mismatch]")?;
        }
        Ok(())
    }
}

impl std::error::Error for TxnAborted {}

/// An id-free structural digest of a deployment: what the composition *is*,
/// independent of the kernel identifiers that change when a component is
/// removed and reinserted. Two fingerprints compare equal iff the
/// architecture meta-model, every protocol's tuple/plug-ins/reactivity,
/// exported protocol state bytes and the System CF configuration all match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionFingerprint {
    /// Architecture meta-model entries as `(name, provided, required)`
    /// interface-name triples, sorted by name (kernel ids normalised out).
    pub components: Vec<(String, Vec<String>, Vec<String>)>,
    /// Per-protocol digests in stack order.
    pub protocols: Vec<ProtocolFingerprint>,
    /// System CF configuration.
    pub system: SystemConfig,
}

/// One protocol's contribution to a [`CompositionFingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolFingerprint {
    /// Protocol name.
    pub name: String,
    /// Declared event tuple.
    pub tuple: EventTuple,
    /// Loaded plug-in names.
    pub plugins: Vec<String>,
    /// Whether the protocol registered as reactive.
    pub reactive: bool,
    /// Exported state bytes (`None` when the protocol has no state codec).
    pub state: Option<Vec<u8>>,
}

/// Computes the [`CompositionFingerprint`] of a deployment.
#[must_use]
pub fn fingerprint(dep: &Deployment) -> CompositionFingerprint {
    let arch = dep.meta().architecture();
    let mut components: Vec<(String, Vec<String>, Vec<String>)> = arch
        .components
        .iter()
        .map(|c| {
            let mut provided: Vec<String> =
                c.provided.iter().map(|i| i.as_str().to_string()).collect();
            provided.sort();
            let mut required: Vec<String> =
                c.required.iter().map(|r| r.as_str().to_string()).collect();
            required.sort();
            (c.name.clone(), provided, required)
        })
        .collect();
    components.sort();
    let protocols = dep
        .protocol_names()
        .iter()
        .filter_map(|name| dep.protocol(name))
        .map(|cf| ProtocolFingerprint {
            name: cf.name().to_string(),
            tuple: cf.tuple().clone(),
            plugins: cf.plugin_names(),
            reactive: cf.is_reactive(),
            state: cf.export_state(),
        })
        .collect();
    CompositionFingerprint {
        components,
        protocols,
        system: dep.system().config(),
    }
}

/// A 64-bit digest of the deployment's *structure*: the component
/// meta-model, protocol names/tuples/plug-ins/reactivity and the System CF
/// configuration — deliberately **excluding** exported protocol state
/// bytes. Routing soft state (neighbour tables, sequence numbers) churns
/// with every received frame, so a state-inclusive hash would never be
/// stable across two observations of the same composition; the structural
/// hash only moves when a reconfiguration op changes what is composed.
///
/// This is the observable the `mcheck` invariants compare: rollback
/// exactness in the structural sense is `hash == pre-transaction hash`,
/// while full-fidelity (state-inclusive) exactness is verified at unwind
/// time by the engine itself and surfaced as `txn.rollback_mismatch`.
///
/// The hash is deterministic across processes (`DefaultHasher` with its
/// fixed keys over a canonical rendering), so it can sit in persisted
/// model-checker fingerprints.
#[must_use]
pub fn structural_hash(dep: &Deployment) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let arch = dep.meta().architecture();
    let mut components: Vec<(String, Vec<String>, Vec<String>)> = arch
        .components
        .iter()
        .map(|c| {
            let mut provided: Vec<String> =
                c.provided.iter().map(|i| i.as_str().to_string()).collect();
            provided.sort();
            let mut required: Vec<String> =
                c.required.iter().map(|r| r.as_str().to_string()).collect();
            required.sort();
            (c.name.clone(), provided, required)
        })
        .collect();
    components.sort();
    components.hash(&mut h);
    for name in dep.protocol_names() {
        let Some(cf) = dep.protocol(&name) else {
            continue;
        };
        cf.name().hash(&mut h);
        format!("{:?}", cf.tuple()).hash(&mut h);
        cf.plugin_names().hash(&mut h);
        cf.is_reactive().hash(&mut h);
    }
    format!("{:?}", dep.system().config()).hash(&mut h);
    h.finish()
}

/// One reversible step of an applied transaction. Undo is *physical*:
/// removed CFs ride along in the log and are reinserted on rollback, which
/// is the only way to restore type-erased protocol state exactly.
enum Undo {
    /// An `AddProtocol` applied — undo removes it again.
    RemoveAdded { name: String },
    /// A `RemoveProtocol` applied — undo reinserts the kept CF at its old
    /// stack position.
    Reinsert { cf: ManetProtocolCf, index: usize },
    /// A `SwitchProtocol` applied — undo removes the new CF, moves the
    /// transferred state back into the kept old CF and reinserts it.
    UnSwitch {
        new_name: String,
        old: ManetProtocolCf,
        index: usize,
        transfer: bool,
    },
    /// An `UpdateTuple` applied — undo restores the previous tuple.
    RestoreTuple { protocol: String, tuple: EventTuple },
    /// A System CF mutation applied — undo restores the configuration
    /// snapshot taken just before.
    RestoreSystem { config: SystemConfig },
}

impl fmt::Debug for Undo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Undo::RemoveAdded { name } => write!(f, "RemoveAdded({name})"),
            Undo::Reinsert { cf, index } => write!(f, "Reinsert({} @ {index})", cf.name()),
            Undo::UnSwitch { new_name, old, .. } => {
                write!(f, "UnSwitch({new_name} -> {})", old.name())
            }
            Undo::RestoreTuple { protocol, .. } => write!(f, "RestoreTuple({protocol})"),
            Undo::RestoreSystem { .. } => write!(f, "RestoreSystem"),
        }
    }
}

/// A transaction whose ops have been applied but whose undo log is still
/// live: it can be [`commit`]ted, [`rollback`]ed, or (after commit)
/// [`revert`]ed by a health gate.
#[derive(Debug)]
pub struct PreparedTxn {
    /// Transaction id (coordinator-assigned).
    pub id: u64,
    /// Number of ops applied.
    pub ops_applied: u64,
    checkpoint: CompositionFingerprint,
    undo: Vec<Undo>,
}

impl PreparedTxn {
    /// The checkpoint fingerprint taken before any op ran.
    #[must_use]
    pub fn checkpoint(&self) -> &CompositionFingerprint {
        &self.checkpoint
    }
}

/// Checkpoints the deployment, applies `ops` and returns the prepared
/// transaction with its undo log, or rolls everything back and reports why.
///
/// Quiescence is probed with a bounded wait (`quiesce_within`) on the
/// meta-CF's lock — if activities are still in flight past the deadline the
/// prepare aborts with reason `quiesce_timeout` instead of blocking forever.
/// The guard is dropped before ops run (the per-op kernel paths re-acquire
/// it; the lock is not reentrant).
///
/// # Errors
///
/// Aborts (with rollback already performed) on any op failure, integrity
/// veto, quiescence timeout, or a non-undoable `Mutate` op.
pub fn prepare(
    dep: &mut Deployment,
    id: u64,
    ops: Vec<ReconfigOp>,
    quiesce_within: Duration,
    os: &mut NodeOs,
) -> Result<PreparedTxn, TxnAborted> {
    // Bounded quiescence probe: acquire and immediately drop. In-flight
    // activity holds read locks; if we can take the write lock the
    // framework is quiescent *now*, and since ops run synchronously from
    // this same thread nothing can start in between.
    match dep.meta().quiescence().reconfigure_within(quiesce_within) {
        Ok(guard) => drop(guard),
        Err(timeout) => {
            os.bump("txn.quiesce_timeout");
            os.bump("txn.aborted");
            os.trace_txn_abort(id, "quiesce_timeout");
            return Err(TxnAborted {
                id,
                reason: "quiesce_timeout",
                detail: timeout.to_string(),
                rollback_clean: true,
            });
        }
    }
    let checkpoint = fingerprint(dep);
    let mut undo: Vec<Undo> = Vec::with_capacity(ops.len());
    let mut ops_applied = 0u64;
    let mut failure: Option<(&'static str, String)> = None;
    for op in ops {
        if failure.is_some() {
            break; // remaining ops are dropped; the batch is atomic
        }
        match apply_one(dep, op, &mut undo, os) {
            Ok(()) => ops_applied += 1,
            Err((reason, detail)) => failure = Some((reason, detail)),
        }
    }
    if let Some((reason, detail)) = failure {
        let clean = unwind(dep, &checkpoint, undo, os);
        os.bump("txn.aborted");
        // NOT txn.rolled_back: that counter tracks *prepared* transactions
        // only, preserving prepared == committed + rolled_back. The unwind
        // is still visible as a txn_rollback trace record.
        os.trace_txn_abort(id, reason);
        os.trace_txn_rollback(id, ops_applied);
        return Err(TxnAborted {
            id,
            reason,
            detail,
            rollback_clean: clean,
        });
    }
    os.bump("txn.prepared");
    os.trace_txn_prepare(id, ops_applied);
    Ok(PreparedTxn {
        id,
        ops_applied,
        checkpoint,
        undo,
    })
}

/// Commits a prepared transaction: the new composition becomes the node's
/// configuration of record. The undo log is *returned retained* inside the
/// `PreparedTxn` so a health gate can still [`revert`] — drop it to
/// finalise.
pub fn commit(dep: &mut Deployment, txn: &PreparedTxn, os: &mut NodeOs) {
    dep.note_reconfigs(txn.ops_applied);
    os.bump_by("reconfig.ops_applied", txn.ops_applied);
    os.bump("txn.committed");
    os.trace_txn_commit(txn.id, txn.ops_applied);
}

/// Rolls a prepared (not yet committed) transaction back to its checkpoint.
/// Returns whether the post-rollback fingerprint matched the checkpoint.
pub fn rollback(dep: &mut Deployment, txn: PreparedTxn, os: &mut NodeOs) -> bool {
    let PreparedTxn {
        id,
        ops_applied,
        checkpoint,
        undo,
    } = txn;
    let clean = unwind(dep, &checkpoint, undo, os);
    os.bump("txn.rolled_back");
    os.trace_txn_rollback(id, ops_applied);
    clean
}

/// Reverts a *committed* transaction (health-gated back-out): same physical
/// unwind as [`rollback`], but recorded as a revert.
pub fn revert(dep: &mut Deployment, txn: PreparedTxn, os: &mut NodeOs) -> bool {
    let PreparedTxn {
        id,
        ops_applied,
        checkpoint,
        undo,
    } = txn;
    let clean = unwind(dep, &checkpoint, undo, os);
    os.bump("txn.reverted");
    os.trace_txn_revert(id, ops_applied);
    clean
}

/// Applies a whole batch transactionally in one step: prepare then commit.
/// The single-node convenience over the prepare/commit split the fleet
/// coordinator uses.
///
/// # Errors
///
/// Aborts (with rollback already performed) under the same conditions as
/// [`prepare`].
pub fn apply_transactional(
    dep: &mut Deployment,
    id: u64,
    ops: Vec<ReconfigOp>,
    os: &mut NodeOs,
) -> Result<u64, TxnAborted> {
    let txn = prepare(dep, id, ops, DEFAULT_QUIESCE_WITHIN, os)?;
    let applied = txn.ops_applied;
    commit(dep, &txn, os);
    Ok(applied)
}

/// Applies one op, logging its undo. On error the op itself has had no
/// effect (individual ops are atomic); the caller unwinds previous ops.
fn apply_one(
    dep: &mut Deployment,
    op: ReconfigOp,
    undo: &mut Vec<Undo>,
    os: &mut NodeOs,
) -> Result<(), (&'static str, String)> {
    match op {
        ReconfigOp::AddProtocol(cf) => {
            let name = cf.name().to_string();
            let at = dep.protocol_names().len();
            match dep.try_insert_protocol(at, cf, os) {
                Ok(()) => {
                    undo.push(Undo::RemoveAdded { name });
                    os.trace_reconfig_apply("add_protocol");
                    Ok(())
                }
                Err((_, e)) => Err(classify(&e)),
            }
        }
        ReconfigOp::RemoveProtocol { name } => {
            let index = dep
                .protocol_position(&name)
                .ok_or_else(|| ("op_failed", format!("no protocol named {name:?}")))?;
            match dep.remove_protocol(&name, os) {
                Ok(cf) => {
                    undo.push(Undo::Reinsert { cf, index });
                    os.trace_reconfig_apply("remove_protocol");
                    Ok(())
                }
                Err(e) => Err(classify(&e)),
            }
        }
        ReconfigOp::SwitchProtocol {
            old,
            new,
            transfer_state,
        } => {
            let index = dep
                .protocol_position(&old)
                .ok_or_else(|| ("op_failed", format!("no protocol named {old:?}")))?;
            let mut old_cf = match dep.remove_protocol(&old, os) {
                Ok(cf) => cf,
                Err(e) => return Err(classify(&e)),
            };
            let mut new = new;
            if transfer_state {
                new.replace_state(old_cf.take_state());
            }
            os.trace_state_transfer("switch_protocol", transfer_state);
            let new_name = new.name().to_string();
            let at = dep.protocol_names().len();
            match dep.try_insert_protocol(at, new, os) {
                Ok(()) => {
                    undo.push(Undo::UnSwitch {
                        new_name,
                        old: old_cf,
                        index,
                        transfer: transfer_state,
                    });
                    os.trace_rebind("switch_protocol");
                    Ok(())
                }
                Err((mut rejected, e)) => {
                    // The new CF was refused: move the state back and
                    // reinstate the old protocol before reporting, so this
                    // op nets out to a no-op like every other failed op.
                    if transfer_state {
                        old_cf.replace_state(rejected.take_state());
                    }
                    let classified = classify(&e);
                    if let Err((_, reinsert_err)) = dep.try_insert_protocol(index, old_cf, os) {
                        return Err((
                            classified.0,
                            format!("{} (and reinstating {old:?} failed: {reinsert_err})", classified.1),
                        ));
                    }
                    Err(classified)
                }
            }
        }
        ReconfigOp::UpdateTuple { protocol, tuple } => {
            match dep.swap_protocol_tuple(&protocol, tuple) {
                Ok(previous) => {
                    undo.push(Undo::RestoreTuple {
                        protocol,
                        tuple: previous,
                    });
                    os.trace_rebind("update_tuple");
                    Ok(())
                }
                Err(e) => Err(classify(&e)),
            }
        }
        ReconfigOp::Mutate { protocol, .. } => Err((
            "non_undoable",
            format!("Mutate({protocol}) is an opaque FnOnce and cannot be rolled back; apply it outside a transaction"),
        )),
        ReconfigOp::RegisterMessage(reg) => {
            let config = dep.system().config();
            dep.system_mut().register_message(reg);
            dep.refresh_system_tuple();
            undo.push(Undo::RestoreSystem { config });
            os.trace_rebind("register_message");
            Ok(())
        }
        ReconfigOp::MutateSystem { op } => {
            let config = dep.system().config();
            op(dep.system_mut());
            dep.refresh_system_tuple();
            undo.push(Undo::RestoreSystem { config });
            os.trace_rebind("mutate_system");
            Ok(())
        }
    }
}

fn classify(e: &crate::node::DeployError) -> (&'static str, String) {
    let reason = match e {
        crate::node::DeployError::Integrity(_) => "integrity",
        _ => "op_failed",
    };
    (reason, e.to_string())
}

/// Unwinds an undo log in reverse and verifies the result against the
/// checkpoint. A mismatch bumps `txn.rollback_mismatch` — it should never
/// happen (the property tests assert it doesn't) but is surfaced rather
/// than silently ignored.
fn unwind(
    dep: &mut Deployment,
    checkpoint: &CompositionFingerprint,
    undo: Vec<Undo>,
    os: &mut NodeOs,
) -> bool {
    for entry in undo.into_iter().rev() {
        match entry {
            Undo::RemoveAdded { name } => {
                let _ = dep.remove_protocol(&name, os);
            }
            Undo::Reinsert { cf, index } => {
                let _ = dep.try_insert_protocol(index, cf, os);
            }
            Undo::UnSwitch {
                new_name,
                mut old,
                index,
                transfer,
            } => {
                if let Ok(mut new_cf) = dep.remove_protocol(&new_name, os) {
                    if transfer {
                        old.replace_state(new_cf.take_state());
                    }
                }
                let _ = dep.try_insert_protocol(index, old, os);
            }
            Undo::RestoreTuple { protocol, tuple } => {
                let _ = dep.swap_protocol_tuple(&protocol, tuple);
            }
            Undo::RestoreSystem { config } => {
                dep.system_mut().restore_config(config);
                dep.refresh_system_tuple();
            }
        }
    }
    let clean = fingerprint(dep) == *checkpoint;
    if !clean {
        os.bump("txn.rollback_mismatch");
    }
    clean
}

pub mod invariants {
    //! Reusable transaction-counter invariants.
    //!
    //! The conservation law `prepared == committed + rolled_back` (+1 while
    //! a transaction is open) was previously asserted ad hoc inside the
    //! rollback property tests and the health-gate e2e; this module is the
    //! single home both those tests and the `mcheck` bounded model checker
    //! consume, so the law is stated — and violated — in exactly one place.
    //!
    //! Counter semantics (see the engine functions in [`super`]):
    //! `txn.prepared` counts successful [`prepare`](super::prepare)s;
    //! `txn.committed` counts [`commit`](super::commit)s; `txn.rolled_back`
    //! counts [`rollback`](super::rollback)s of *prepared* transactions
    //! (aborts during prepare unwind without bumping it, and
    //! [`revert`](super::revert)s of committed transactions bump
    //! `txn.reverted` instead — a reverted transaction was still
    //! committed, so it stays on the committed side of the ledger).

    use std::fmt;

    /// The `txn.*` counters the conservation law ranges over.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct TxnCounters {
        /// `txn.prepared`.
        pub prepared: u64,
        /// `txn.committed`.
        pub committed: u64,
        /// `txn.rolled_back`.
        pub rolled_back: u64,
    }

    /// The conservation law failed: the ledger of prepared transactions
    /// does not balance against their resolutions.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ConservationViolation {
        /// The counters that failed to balance.
        pub counters: TxnCounters,
        /// How many transactions were legitimately open (prepared,
        /// awaiting commit or abort) at observation time.
        pub open: u64,
    }

    impl fmt::Display for ConservationViolation {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "txn counter conservation violated: prepared {} != committed {} + rolled_back {} + open {}",
                self.counters.prepared,
                self.counters.committed,
                self.counters.rolled_back,
                self.open
            )
        }
    }

    impl std::error::Error for ConservationViolation {}

    impl TxnCounters {
        /// Reads the three counters through a lookup function — pass a
        /// closure over `NodeOs::counter` for one node, or over
        /// `WorldStats::agent_counter` for a whole fleet (the counters are
        /// additive, so the law holds fleet-wide iff every open
        /// transaction is included in `open`).
        pub fn from_lookup(mut counter: impl FnMut(&str) -> u64) -> Self {
            TxnCounters {
                prepared: counter("txn.prepared"),
                committed: counter("txn.committed"),
                rolled_back: counter("txn.rolled_back"),
            }
        }

        /// Checks `prepared == committed + rolled_back + open`, where
        /// `open` is the number of transactions currently prepared and
        /// awaiting their verdict.
        ///
        /// # Errors
        ///
        /// Returns the unbalanced ledger when the law does not hold.
        pub fn conservation(self, open: u64) -> Result<(), ConservationViolation> {
            if self.prepared == self.committed + self.rolled_back + open {
                Ok(())
            } else {
                Err(ConservationViolation {
                    counters: self,
                    open,
                })
            }
        }
    }

    /// Fleet-level convenience over [`TxnCounters::conservation`]: checks
    /// the law against a world's merged agent counters.
    ///
    /// # Errors
    ///
    /// Returns the unbalanced ledger when the law does not hold.
    pub fn check_fleet_conservation(
        stats: &netsim::WorldStats,
        open: u64,
    ) -> Result<(), ConservationViolation> {
        TxnCounters::from_lookup(|name| stats.agent_counter(name)).conservation(open)
    }

    /// Panicking wrapper for tests: asserts the fleet-wide law.
    ///
    /// # Panics
    ///
    /// Panics with the unbalanced ledger when the law does not hold.
    pub fn assert_fleet_conservation(stats: &netsim::WorldStats, open: u64) {
        if let Err(v) = check_fleet_conservation(stats, open) {
            panic!("{v}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn balanced_ledgers_pass() {
            let c = TxnCounters {
                prepared: 5,
                committed: 3,
                rolled_back: 2,
            };
            assert!(c.conservation(0).is_ok());
            let open = TxnCounters {
                prepared: 6,
                committed: 3,
                rolled_back: 2,
            };
            assert!(open.conservation(1).is_ok());
        }

        #[test]
        fn unbalanced_ledgers_report_the_numbers() {
            let c = TxnCounters {
                prepared: 4,
                committed: 3,
                rolled_back: 0,
            };
            let v = c.conservation(0).expect_err("4 != 3");
            assert_eq!(v.counters, c);
            let msg = v.to_string();
            assert!(msg.contains("prepared 4"), "{msg}");
            assert!(msg.contains("rolled_back 0"), "{msg}");
        }
    }
}
