//! Coordinated distributed reconfiguration (the paper's §7 roadmap):
//! apply the same reconfiguration across a fleet of nodes and verify
//! convergence.
//!
//! Per-node reconfiguration is enacted at each node's own quiescent point
//! (see [`NodeHandle`]); the [`FleetCoordinator`] broadcasts an operation
//! *recipe* to every handle and reports when all nodes have applied it
//! (or which ones failed) — the per-node half of a closed control loop
//! whose decision making the paper delegates to higher-level software.
//!
//! Two coordination disciplines are provided:
//!
//! * **Best-effort** ([`apply_all`](FleetCoordinator::apply_all) and
//!   friends): ops enqueue everywhere and apply independently; crashed
//!   nodes pick theirs up after reboot.
//! * **Transactional** ([`commit_two_phase`]
//!   (FleetCoordinator::commit_two_phase)): a two-phase commit over the
//!   per-node transaction engine ([`crate::txn`]) — every alive node
//!   *prepares* the batch (checkpoint + apply + hold the undo log open),
//!   and the coordinator commits only when **all** of them prepared in
//!   time; otherwise the prepared subset rolls back and no node is left
//!   running the new composition. An optional [`HealthGate`] then watches
//!   the committed composition for a provisional window and *reverts* the
//!   whole fleet if the delivery ratio regresses.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::{NodeId, SimDuration, World};
use parking_lot::Mutex;

use crate::node::{NodeHandle, ReconfigOp, TxnCtl, TxnPhase};

/// Coordinates reconfiguration over many node handles.
#[derive(Clone, Default)]
pub struct FleetCoordinator {
    handles: Vec<NodeHandle>,
    ids: Vec<NodeId>,
    /// How many consecutive times [`apply_all_with_retry`]
    /// (Self::apply_all_with_retry) may find a node dead before its pending
    /// ops are dropped automatically (`None`: never give up).
    retry_budget: Option<u32>,
    /// Consecutive dead-at-enqueue counts, indexed like `handles`. Shared
    /// so cloned coordinators agree on the budget accounting.
    attempts: Arc<Mutex<Vec<u32>>>,
    /// Transaction id allocator.
    next_txn: Arc<AtomicU64>,
}

/// Result of a fleet convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Operations still awaiting a quiescent point, summed over nodes.
    pub pending: usize,
    /// `(node, error)` for nodes whose last operation failed.
    pub failures: Vec<(NodeId, String)>,
    /// Nodes that are currently down (crashed or battery-dead) with
    /// operations waiting for them. Deferred is not failure: the pending
    /// operations apply automatically at the node's first post-reboot
    /// quiescent point.
    pub deferred: Vec<NodeId>,
}

impl FleetStatus {
    /// Whether every node applied everything without error.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.pending == 0 && self.failures.is_empty()
    }
}

impl fmt::Display for FleetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.converged() {
            return write!(f, "converged");
        }
        write!(f, "pending {}", self.pending)?;
        if !self.deferred.is_empty() {
            write!(f, " (deferred on down nodes [")?;
            for (i, node) in self.deferred.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", node.0)?;
            }
            write!(f, "])")?;
        }
        for (node, err) in &self.failures {
            write!(f, "; node {} failed: {err}", node.0)?;
        }
        Ok(())
    }
}

/// How a fleet transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnVerdict {
    /// Every participant prepared and committed; the health window (if
    /// any) passed.
    Committed,
    /// Prepare failed somewhere (or timed out); every prepared node rolled
    /// back to its checkpoint.
    Aborted,
    /// The fleet committed but the health gate tripped; every participant
    /// reverted to its checkpoint.
    Reverted,
}

impl fmt::Display for TxnVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnVerdict::Committed => "committed",
            TxnVerdict::Aborted => "aborted",
            TxnVerdict::Reverted => "reverted",
        })
    }
}

/// Health gate for a transactional commit: after commit, the new
/// composition runs provisionally for `window`; if the fleet delivery
/// ratio drops more than `max_drop` below the baseline, the coordinator
/// reverts the whole transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthGate {
    /// Length of the provisional observation window.
    pub window: SimDuration,
    /// Maximum tolerated drop in delivery ratio (absolute, in `[0, 1]`).
    pub max_drop: f64,
    /// Baseline delivery ratio to compare against; `None` makes the
    /// coordinator measure a pre-window of the same length before
    /// preparing.
    pub baseline: Option<f64>,
}

impl HealthGate {
    /// A gate with a measured baseline.
    #[must_use]
    pub fn new(window: SimDuration, max_drop: f64) -> Self {
        HealthGate {
            window,
            max_drop,
            baseline: None,
        }
    }
}

/// Knobs for [`FleetCoordinator::commit_two_phase`].
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOptions {
    /// Virtual-time budget for every participant to reach a quiescent
    /// point and prepare. Nodes reaching their quiescent point later
    /// refuse the prepare themselves (see [`TxnCtl::Prepare`]).
    pub prepare_timeout: SimDuration,
    /// Simulation slice between coordinator status polls.
    pub poll: SimDuration,
    /// Virtual-time budget for commit/abort/revert acknowledgements.
    pub resolve_timeout: SimDuration,
    /// Wall-clock budget for each node's quiescence-lock probe.
    pub quiesce_within: std::time::Duration,
    /// Optional health-gated commit.
    pub health: Option<HealthGate>,
    /// `true` (default): nodes that are down when the transaction starts
    /// are skipped (reported in [`FleetTxnReport::skipped`]); `false`:
    /// any dead node aborts the transaction up front.
    pub skip_dead: bool,
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions {
            prepare_timeout: SimDuration::from_secs(5),
            poll: SimDuration::from_millis(100),
            resolve_timeout: SimDuration::from_secs(5),
            quiesce_within: crate::txn::DEFAULT_QUIESCE_WITHIN,
            health: None,
            skip_dead: true,
        }
    }
}

/// Outcome of one [`commit_two_phase`](FleetCoordinator::commit_two_phase)
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTxnReport {
    /// Transaction id (matches the per-node trace records).
    pub txn: u64,
    /// How it ended.
    pub verdict: TxnVerdict,
    /// Nodes that took part.
    pub participants: Vec<NodeId>,
    /// Nodes skipped because they were down at the start.
    pub skipped: Vec<NodeId>,
    /// Why the transaction aborted or reverted (`None` on commit).
    pub reason: Option<String>,
    /// Baseline delivery ratio the health gate compared against.
    pub pre_ratio: Option<f64>,
    /// Delivery ratio observed in the provisional window.
    pub window_ratio: Option<f64>,
    /// Participants that never acknowledged the final verdict within the
    /// resolve budget (typically nodes that crashed mid-transaction; their
    /// own doomed-transaction rollback squares them with the fleet when
    /// they reboot).
    pub unresolved: Vec<NodeId>,
    /// Participants that had not reached `Prepared` when the prepare
    /// deadline passed (empty unless the transaction aborted on the
    /// deadline). Names the laggards so an operator — or a model-checker
    /// counterexample — can see *which* nodes stalled, not just how many.
    pub unprepared: Vec<NodeId>,
}

/// Renders `[3, 7]`-style id lists for report reasons and `Display`.
fn id_list(ids: &[NodeId]) -> String {
    let inner: Vec<String> = ids.iter().map(|n| n.0.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

impl fmt::Display for FleetTxnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn {} {}", self.txn, self.verdict)?;
        if let Some(reason) = &self.reason {
            write!(f, " ({reason})")?;
        }
        write!(f, ": {} participants", self.participants.len())?;
        if !self.skipped.is_empty() {
            write!(f, ", skipped {}", id_list(&self.skipped))?;
        }
        if !self.unresolved.is_empty() {
            write!(f, ", unresolved {}", id_list(&self.unresolved))?;
        }
        if !self.unprepared.is_empty() {
            write!(f, ", unprepared {}", id_list(&self.unprepared))?;
        }
        Ok(())
    }
}

impl FleetCoordinator {
    /// A coordinator over the given handles; node ids are assigned by
    /// position (`NodeId(0)`, `NodeId(1)`, …), matching the usual
    /// install-in-order worlds.
    #[must_use]
    pub fn new(handles: Vec<NodeHandle>) -> Self {
        let ids = (0..handles.len()).map(NodeId).collect();
        FleetCoordinator {
            handles,
            ids,
            retry_budget: None,
            attempts: Arc::new(Mutex::new(Vec::new())),
            next_txn: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds a node to the fleet with the next positional id.
    pub fn add(&mut self, handle: NodeHandle) {
        let id = NodeId(self.handles.len());
        self.add_node(id, handle);
    }

    /// Adds a node with an explicit id (fleets over sparse or re-ordered
    /// world populations).
    pub fn add_node(&mut self, id: NodeId, handle: NodeHandle) {
        self.handles.push(handle);
        self.ids.push(id);
    }

    /// Number of coordinated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The handle registered under the given node id, if any — the
    /// per-node escape hatch for targeted follow-ups (e.g. best-effort
    /// reconciliation of a node that missed a committed transaction).
    #[must_use]
    pub fn handle_of(&self, id: NodeId) -> Option<&NodeHandle> {
        self.ids
            .iter()
            .position(|&n| n == id)
            .map(|i| &self.handles[i])
    }

    /// Caps how many consecutive [`apply_all_with_retry`]
    /// (Self::apply_all_with_retry) calls may find a node dead before the
    /// coordinator automatically drops that node's pending ops (the
    /// permanently-dead give-up path). `None` (the default) defers forever.
    pub fn set_retry_budget(&mut self, budget: Option<u32>) {
        self.retry_budget = budget;
    }

    /// Enqueues the operations produced by `recipe` on every node.
    /// (`ReconfigOp` is not `Clone` — protocol CFs own state — so the
    /// recipe is invoked once per node.)
    pub fn apply_all(&self, recipe: impl Fn() -> Vec<ReconfigOp>) {
        for handle in &self.handles {
            for op in recipe() {
                handle.apply(op);
            }
        }
    }

    /// Enqueues node-specific operations: `recipe(i)` for node `i`.
    pub fn apply_each(&self, recipe: impl Fn(usize) -> Vec<ReconfigOp>) {
        for (i, handle) in self.handles.iter().enumerate() {
            for op in recipe(i) {
                handle.apply(op);
            }
        }
    }

    /// Enqueues the operations produced by `recipe` on every node, with
    /// crash-aware reporting: the recipe lands on every handle (so nodes
    /// that are down pick it up at their first post-reboot quiescent
    /// point), and the returned list names the nodes that were down at
    /// enqueue time — deferred, distinct from a real apply failure.
    ///
    /// There is no coordinator-side retry loop to run: the per-node ops
    /// queue *is* the retry mechanism. Use [`status`](Self::status) to
    /// watch deferral drain, [`give_up_deferred`](Self::give_up_deferred)
    /// to abandon nodes manually, or [`set_retry_budget`]
    /// (Self::set_retry_budget) to have nodes found dead too many times in
    /// a row abandoned automatically (their pending ops are dropped and no
    /// new ones enqueue until they come back).
    pub fn apply_all_with_retry(&self, recipe: impl Fn() -> Vec<ReconfigOp>) -> Vec<NodeId> {
        let mut deferred = Vec::new();
        let mut attempts = self.attempts.lock();
        if attempts.len() < self.handles.len() {
            attempts.resize(self.handles.len(), 0);
        }
        for (i, handle) in self.handles.iter().enumerate() {
            if handle.is_alive() {
                attempts[i] = 0;
            } else {
                attempts[i] += 1;
                if self.retry_budget.is_some_and(|budget| attempts[i] > budget) {
                    // Budget exhausted: the node is treated as permanently
                    // dead. Drop whatever it still holds and skip it.
                    handle.clear_pending();
                    continue;
                }
                deferred.push(self.ids[i]);
            }
            for op in recipe() {
                handle.apply(op);
            }
        }
        deferred
    }

    /// Drops the pending operations of every node that is currently down,
    /// returning `(node, operations dropped)` per affected node — the
    /// give-up path when a deferred reconfiguration should no longer
    /// apply on reboot.
    pub fn give_up_deferred(&self) -> Vec<(NodeId, usize)> {
        let mut abandoned = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if !handle.is_alive() && handle.pending_ops() > 0 {
                abandoned.push((self.ids[i], handle.clear_pending()));
            }
        }
        abandoned
    }

    /// Snapshots fleet convergence.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        let mut pending = 0;
        let mut failures = Vec::new();
        let mut deferred = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            let node_pending = handle.pending_ops();
            pending += node_pending;
            if let Some(err) = handle.status().last_error {
                failures.push((self.ids[i], err));
            }
            if node_pending > 0 && !handle.is_alive() {
                deferred.push(self.ids[i]);
            }
        }
        FleetStatus {
            pending,
            failures,
            deferred,
        }
    }

    /// Protocol stacks per node, for post-reconfiguration verification.
    #[must_use]
    pub fn stacks(&self) -> Vec<Vec<String>> {
        self.handles.iter().map(|h| h.status().protocols).collect()
    }

    /// Whether every node runs exactly the given protocol stack.
    #[must_use]
    pub fn all_run(&self, stack: &[&str]) -> bool {
        self.stacks()
            .iter()
            .all(|s| s.iter().map(String::as_str).eq(stack.iter().copied()))
    }

    // ---- two-phase commit --------------------------------------------------

    /// Applies `recipe` across the fleet as one distributed transaction.
    ///
    /// Phase 1 (*prepare*): every alive node gets the batch with a virtual
    /// prepare deadline; each checkpoints, applies, and holds its undo log
    /// open at its own quiescent point. Phase 2: if — and only if — every
    /// participant reported `Prepared` before the deadline, the coordinator
    /// broadcasts *commit*; otherwise it broadcasts *abort* and the
    /// prepared subset rolls back to its checkpoints, so no mix of old and
    /// new compositions survives.
    ///
    /// With a [`HealthGate`] configured, a committed composition runs
    /// provisionally for the gate's window; if the fleet delivery ratio
    /// drops more than `max_drop` below the baseline the coordinator
    /// broadcasts *revert* and the fleet returns to the checkpoint
    /// compositions ([`TxnVerdict::Reverted`]).
    ///
    /// The world is advanced (`run_for`) while the coordinator waits, so
    /// call this where simulation time is allowed to progress. A
    /// participant that crashes mid-transaction dooms its own prepared
    /// transaction (rolled back at its first post-reboot quiescent point)
    /// and shows up in [`FleetTxnReport::unresolved`].
    pub fn commit_two_phase(
        &self,
        world: &mut World,
        recipe: impl Fn() -> Vec<ReconfigOp>,
        opts: &TxnOptions,
    ) -> FleetTxnReport {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        let mut participants = Vec::new();
        let mut skipped = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if handle.is_alive() {
                participants.push(i);
            } else {
                skipped.push(self.ids[i]);
            }
        }
        let participant_ids: Vec<NodeId> = participants.iter().map(|&i| self.ids[i]).collect();
        let mut report = FleetTxnReport {
            txn,
            verdict: TxnVerdict::Aborted,
            participants: participant_ids,
            skipped,
            reason: None,
            pre_ratio: None,
            window_ratio: None,
            unresolved: Vec::new(),
            unprepared: Vec::new(),
        };
        if !opts.skip_dead && !report.skipped.is_empty() {
            report.reason = Some(format!(
                "node(s) {} down and skip_dead is off",
                id_list(&report.skipped)
            ));
            return report;
        }
        if participants.is_empty() {
            report.reason = Some("no alive participants".to_string());
            return report;
        }

        // Health baseline: measure a pre-window unless one was supplied.
        let mut window = world.stats_window();
        if let Some(gate) = &opts.health {
            let baseline = match gate.baseline {
                Some(b) => b,
                None => {
                    window.skip(world);
                    world.run_for(gate.window);
                    window.advance(world).delivery_ratio()
                }
            };
            report.pre_ratio = Some(baseline);
        }

        // Phase 1: prepare everywhere, with a virtual deadline.
        let started = world.now();
        let deadline = started + opts.prepare_timeout;
        for &i in &participants {
            self.handles[i].txn_ctl(TxnCtl::Prepare {
                id: txn,
                ops: recipe(),
                requested: Some(started),
                deadline: Some(deadline),
                quiesce_within: opts.quiesce_within,
            });
        }
        let mut abort_reason: Option<String> = None;
        loop {
            world.run_for(opts.poll);
            let mut all_prepared = true;
            for &i in &participants {
                match self.handles[i].status().txn {
                    Some(r) if r.id == txn => match r.phase {
                        TxnPhase::Prepared | TxnPhase::Committed => {}
                        TxnPhase::Aborted | TxnPhase::RolledBack | TxnPhase::Reverted => {
                            abort_reason =
                                Some(format!("node {} {}: {}", self.ids[i].0, r.phase, r.detail));
                            all_prepared = false;
                        }
                    },
                    _ => all_prepared = false,
                }
            }
            if abort_reason.is_some() {
                break;
            }
            if all_prepared {
                break;
            }
            if world.now() > deadline {
                let laggards: Vec<NodeId> = participants
                    .iter()
                    .filter(|&&i| {
                        !matches!(
                            self.handles[i].status().txn,
                            Some(ref r) if r.id == txn && r.phase == TxnPhase::Prepared
                        )
                    })
                    .map(|&i| self.ids[i])
                    .collect();
                abort_reason = Some(format!(
                    "prepare deadline passed with node(s) {} unprepared",
                    id_list(&laggards)
                ));
                report.unprepared = laggards;
                break;
            }
        }

        if let Some(reason) = abort_reason {
            // Phase 2a: abort. The per-node ctl queue is FIFO, so a node
            // that has not processed its Prepare yet will prepare and then
            // immediately roll back — or refuse the stale prepare at its
            // deadline — either way converging on the checkpoint.
            for &i in &participants {
                self.handles[i].txn_ctl(TxnCtl::Abort {
                    id: txn,
                    reason: "peer_abort",
                });
            }
            report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
                matches!(
                    phase,
                    TxnPhase::Aborted | TxnPhase::RolledBack | TxnPhase::Reverted
                )
            });
            report.verdict = TxnVerdict::Aborted;
            report.reason = Some(reason);
            return report;
        }

        // Phase 2b: commit.
        for &i in &participants {
            self.handles[i].txn_ctl(TxnCtl::Commit { id: txn });
        }
        report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
            phase == TxnPhase::Committed
        });
        report.verdict = TxnVerdict::Committed;

        // Health-gated provisional window.
        if let Some(gate) = &opts.health {
            let baseline = report.pre_ratio.unwrap_or(1.0);
            window.skip(world);
            world.run_for(gate.window);
            let ratio = window.advance(world).delivery_ratio();
            report.window_ratio = Some(ratio);
            if baseline - ratio > gate.max_drop {
                for &i in &participants {
                    self.handles[i].txn_ctl(TxnCtl::Revert { id: txn });
                }
                report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
                    phase == TxnPhase::Reverted
                });
                report.verdict = TxnVerdict::Reverted;
                report.reason = Some(format!(
                    "delivery ratio {ratio:.3} fell more than {:.3} below baseline {baseline:.3}",
                    gate.max_drop
                ));
            }
        }
        report
    }

    /// Runs the world in poll slices until every participant's status
    /// reports the wanted phase for `txn`, or the resolve budget runs out.
    /// Returns the nodes that never got there.
    fn drain(
        &self,
        world: &mut World,
        participants: &[usize],
        txn: u64,
        opts: &TxnOptions,
        done: impl Fn(TxnPhase) -> bool,
    ) -> Vec<NodeId> {
        let deadline = world.now() + opts.resolve_timeout;
        loop {
            world.run_for(opts.poll);
            let laggards: Vec<NodeId> = participants
                .iter()
                .filter(|&&i| {
                    !matches!(
                        self.handles[i].status().txn,
                        Some(ref r) if r.id == txn && done(r.phase)
                    )
                })
                .map(|&i| self.ids[i])
                .collect();
            if laggards.is_empty() || world.now() > deadline {
                return laggards;
            }
        }
    }
}

impl fmt::Debug for FleetCoordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field("nodes", &self.ids)
            .field("retry_budget", &self.retry_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use netsim::fault::FaultPlan;
    use netsim::{NodeId, SimDuration, SimTime, Topology, World};

    use crate::concurrency::ConcurrencyModel;
    use crate::neighbour::{hello_registration, neighbour_detection_cf};
    use crate::node::ManetNode;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    /// Builds a two-node world of neighbour-detection deployments and
    /// returns it with the fleet handles.
    fn fleet_world(plan: FaultPlan) -> (World, FleetCoordinator) {
        let mut world = World::builder()
            .topology(Topology::full(2))
            .seed(42)
            .fault_plan(plan)
            .build();
        let mut fleet = FleetCoordinator::default();
        for i in 0..2 {
            let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
            node.deployment_mut()
                .system_mut()
                .register_message(hello_registration());
            node.deployment_mut()
                .add_protocol_offline(neighbour_detection_cf(Default::default()))
                .expect("fresh deployment accepts the protocol");
            fleet.add(node.handle());
            world.install_agent(NodeId(i), Box::new(node));
        }
        (world, fleet)
    }

    #[test]
    fn apply_all_with_retry_defers_on_crashed_node_and_applies_on_reboot() {
        let plan = FaultPlan::builder(0)
            .crash_for(ms(500), NodeId(1), SimDuration::from_millis(1_500))
            .build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));
        assert!(!world.node_up(NodeId(1)));

        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert_eq!(
            deferred,
            vec![NodeId(1)],
            "the crashed node is reported deferred"
        );

        let status = fleet.status();
        assert!(!status.converged());
        assert!(status.pending >= 1);
        assert_eq!(status.deferred, vec![NodeId(1)]);
        assert!(
            status.to_string().contains("deferred on down nodes [1]"),
            "Display names the deferral: {status}"
        );

        // The reboot at 2 s restarts the agent; its first quiescent point
        // drains the deferred op. Node 0 drains at its next HELLO tick.
        world.run_until(ms(4_000));
        let status = fleet.status();
        assert!(status.converged(), "not converged: {status}");
        assert!(status.deferred.is_empty());
        assert_eq!(status.to_string(), "converged");
        assert_eq!(
            world.stats().agent_counter("reconfig.ops_applied"),
            2,
            "both nodes applied the recipe exactly once"
        );
    }

    #[test]
    fn give_up_deferred_drops_pending_ops_of_dead_nodes() {
        // Crash with no reboot scheduled: the node never comes back.
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));

        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert_eq!(deferred, vec![NodeId(1)]);

        // Node 0 applies at its next quiescent point; node 1 never will.
        world.run_until(ms(2_500));
        let abandoned = fleet.give_up_deferred();
        assert_eq!(abandoned, vec![(NodeId(1), 1)]);
        let status = fleet.status();
        assert!(status.converged(), "give-up clears the deferral: {status}");
    }

    #[test]
    fn retry_budget_gives_up_on_permanently_dead_nodes_automatically() {
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, mut fleet) = fleet_world(plan);
        fleet.set_retry_budget(Some(1));
        world.run_until(ms(1_000));

        // First encounter: within budget, the op is deferred normally.
        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert_eq!(deferred, vec![NodeId(1)]);
        assert_eq!(fleet.status().deferred, vec![NodeId(1)]);

        // Second encounter: budget exceeded — pending ops are dropped and
        // nothing new enqueues on the dead node.
        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert!(deferred.is_empty(), "given-up node no longer deferred");

        world.run_until(ms(2_500));
        let status = fleet.status();
        assert!(
            status.converged(),
            "auto-give-up clears the backlog: {status}"
        );
        assert_eq!(
            world.stats().agent_counter("reconfig.ops_applied"),
            2,
            "the alive node applied both rounds; the dead one applied nothing"
        );
    }

    #[test]
    fn two_phase_commit_converges_the_fleet() {
        let (mut world, fleet) = fleet_world(FaultPlan::builder(0).build());
        world.run_until(ms(1_000));

        let report = fleet.commit_two_phase(
            &mut world,
            || vec![ReconfigOp::RegisterMessage(hello_registration())],
            &TxnOptions::default(),
        );
        assert_eq!(report.verdict, TxnVerdict::Committed, "{report}");
        assert!(report.unresolved.is_empty(), "{report}");
        assert_eq!(report.participants, vec![NodeId(0), NodeId(1)]);
        let stats = world.stats();
        assert_eq!(stats.agent_counter("txn.prepared"), 2);
        assert_eq!(stats.agent_counter("txn.committed"), 2);
        assert_eq!(stats.agent_counter("txn.aborted"), 0);
        assert_eq!(
            stats.agent_counter("reconfig.ops_applied"),
            2,
            "committed ops count as applied reconfigurations"
        );
    }

    #[test]
    fn two_phase_commit_aborts_everywhere_when_one_node_cannot_apply() {
        let (mut world, fleet) = fleet_world(FaultPlan::builder(0).build());
        world.run_until(ms(1_000));

        // Node 1's batch contains an op that must fail (removing a protocol
        // that does not exist); node 0's batch is fine. 2PC must roll node
        // 0's prepared batch back, leaving both compositions untouched.
        let stacks_before = fleet.stacks();
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let report = fleet.commit_two_phase(
            &mut world,
            || {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i.is_multiple_of(2) {
                    vec![ReconfigOp::RemoveProtocol {
                        name: "neighbour-detection".into(),
                    }]
                } else {
                    vec![ReconfigOp::RemoveProtocol {
                        name: "no-such-protocol".into(),
                    }]
                }
            },
            &TxnOptions::default(),
        );
        assert_eq!(report.verdict, TxnVerdict::Aborted, "{report}");
        assert!(report.reason.is_some());
        assert!(report.unresolved.is_empty(), "{report}");
        assert_eq!(fleet.stacks(), stacks_before, "no node kept the change");
        let stats = world.stats();
        assert!(stats.agent_counter("txn.aborted") >= 1);
        assert!(stats.agent_counter("txn.rolled_back") >= 1);
    }
}
