//! Coordinated distributed reconfiguration (the paper's §7 roadmap):
//! apply the same reconfiguration across a fleet of nodes and verify
//! convergence.
//!
//! Per-node reconfiguration is enacted at each node's own quiescent point
//! (see [`NodeHandle`]); the [`FleetCoordinator`] broadcasts an operation
//! *recipe* to every handle and reports when all nodes have applied it
//! (or which ones failed) — the per-node half of a closed control loop
//! whose decision making the paper delegates to higher-level software.

use crate::node::{NodeHandle, ReconfigOp};

/// Coordinates reconfiguration over many node handles.
#[derive(Debug, Clone, Default)]
pub struct FleetCoordinator {
    handles: Vec<NodeHandle>,
}

/// Result of a fleet convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Operations still awaiting a quiescent point, summed over nodes.
    pub pending: usize,
    /// `(node index, error)` for nodes whose last operation failed.
    pub failures: Vec<(usize, String)>,
}

impl FleetStatus {
    /// Whether every node applied everything without error.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.pending == 0 && self.failures.is_empty()
    }
}

impl FleetCoordinator {
    /// A coordinator over the given handles.
    #[must_use]
    pub fn new(handles: Vec<NodeHandle>) -> Self {
        FleetCoordinator { handles }
    }

    /// Adds a node to the fleet.
    pub fn add(&mut self, handle: NodeHandle) {
        self.handles.push(handle);
    }

    /// Number of coordinated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Enqueues the operations produced by `recipe` on every node.
    /// (`ReconfigOp` is not `Clone` — protocol CFs own state — so the
    /// recipe is invoked once per node.)
    pub fn apply_all(&self, recipe: impl Fn() -> Vec<ReconfigOp>) {
        for handle in &self.handles {
            for op in recipe() {
                handle.apply(op);
            }
        }
    }

    /// Enqueues node-specific operations: `recipe(i)` for node `i`.
    pub fn apply_each(&self, recipe: impl Fn(usize) -> Vec<ReconfigOp>) {
        for (i, handle) in self.handles.iter().enumerate() {
            for op in recipe(i) {
                handle.apply(op);
            }
        }
    }

    /// Snapshots fleet convergence.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        let mut pending = 0;
        let mut failures = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            pending += handle.pending_ops();
            if let Some(err) = handle.status().last_error {
                failures.push((i, err));
            }
        }
        FleetStatus { pending, failures }
    }

    /// Protocol stacks per node, for post-reconfiguration verification.
    #[must_use]
    pub fn stacks(&self) -> Vec<Vec<String>> {
        self.handles.iter().map(|h| h.status().protocols).collect()
    }

    /// Whether every node runs exactly the given protocol stack.
    #[must_use]
    pub fn all_run(&self, stack: &[&str]) -> bool {
        self.stacks()
            .iter()
            .all(|s| s.iter().map(String::as_str).eq(stack.iter().copied()))
    }
}
