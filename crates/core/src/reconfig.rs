//! Coordinated distributed reconfiguration (the paper's §7 roadmap):
//! apply the same reconfiguration across a fleet of nodes and verify
//! convergence.
//!
//! Per-node reconfiguration is enacted at each node's own quiescent point
//! (see [`NodeHandle`]); the [`FleetCoordinator`] broadcasts an operation
//! *recipe* to every handle and reports when all nodes have applied it
//! (or which ones failed) — the per-node half of a closed control loop
//! whose decision making the paper delegates to higher-level software.

use std::fmt;

use crate::node::{NodeHandle, ReconfigOp};

/// Coordinates reconfiguration over many node handles.
#[derive(Debug, Clone, Default)]
pub struct FleetCoordinator {
    handles: Vec<NodeHandle>,
}

/// Result of a fleet convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Operations still awaiting a quiescent point, summed over nodes.
    pub pending: usize,
    /// `(node index, error)` for nodes whose last operation failed.
    pub failures: Vec<(usize, String)>,
    /// Nodes that are currently down (crashed or battery-dead) with
    /// operations waiting for them. Deferred is not failure: the pending
    /// operations apply automatically at the node's first post-reboot
    /// quiescent point.
    pub deferred: Vec<usize>,
}

impl FleetStatus {
    /// Whether every node applied everything without error.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.pending == 0 && self.failures.is_empty()
    }
}

impl fmt::Display for FleetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.converged() {
            return write!(f, "converged");
        }
        write!(f, "pending {}", self.pending)?;
        if !self.deferred.is_empty() {
            write!(f, " (deferred on down nodes {:?})", self.deferred)?;
        }
        for (node, err) in &self.failures {
            write!(f, "; node {node} failed: {err}")?;
        }
        Ok(())
    }
}

impl FleetCoordinator {
    /// A coordinator over the given handles.
    #[must_use]
    pub fn new(handles: Vec<NodeHandle>) -> Self {
        FleetCoordinator { handles }
    }

    /// Adds a node to the fleet.
    pub fn add(&mut self, handle: NodeHandle) {
        self.handles.push(handle);
    }

    /// Number of coordinated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Enqueues the operations produced by `recipe` on every node.
    /// (`ReconfigOp` is not `Clone` — protocol CFs own state — so the
    /// recipe is invoked once per node.)
    pub fn apply_all(&self, recipe: impl Fn() -> Vec<ReconfigOp>) {
        for handle in &self.handles {
            for op in recipe() {
                handle.apply(op);
            }
        }
    }

    /// Enqueues node-specific operations: `recipe(i)` for node `i`.
    pub fn apply_each(&self, recipe: impl Fn(usize) -> Vec<ReconfigOp>) {
        for (i, handle) in self.handles.iter().enumerate() {
            for op in recipe(i) {
                handle.apply(op);
            }
        }
    }

    /// Enqueues the operations produced by `recipe` on every node, with
    /// crash-aware reporting: the recipe lands on every handle (so nodes
    /// that are down pick it up at their first post-reboot quiescent
    /// point), and the returned list names the nodes that were down at
    /// enqueue time — deferred, distinct from a real apply failure.
    ///
    /// There is no coordinator-side retry loop to run: the per-node ops
    /// queue *is* the retry mechanism. Use [`status`](Self::status) to
    /// watch deferral drain, or [`give_up_deferred`](Self::give_up_deferred)
    /// to abandon nodes that will not come back.
    pub fn apply_all_with_retry(&self, recipe: impl Fn() -> Vec<ReconfigOp>) -> Vec<usize> {
        let mut deferred = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if !handle.is_alive() {
                deferred.push(i);
            }
            for op in recipe() {
                handle.apply(op);
            }
        }
        deferred
    }

    /// Drops the pending operations of every node that is currently down,
    /// returning `(node index, operations dropped)` per affected node —
    /// the give-up path when a deferred reconfiguration should no longer
    /// apply on reboot.
    pub fn give_up_deferred(&self) -> Vec<(usize, usize)> {
        let mut abandoned = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if !handle.is_alive() && handle.pending_ops() > 0 {
                abandoned.push((i, handle.clear_pending()));
            }
        }
        abandoned
    }

    /// Snapshots fleet convergence.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        let mut pending = 0;
        let mut failures = Vec::new();
        let mut deferred = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            let node_pending = handle.pending_ops();
            pending += node_pending;
            if let Some(err) = handle.status().last_error {
                failures.push((i, err));
            }
            if node_pending > 0 && !handle.is_alive() {
                deferred.push(i);
            }
        }
        FleetStatus {
            pending,
            failures,
            deferred,
        }
    }

    /// Protocol stacks per node, for post-reconfiguration verification.
    #[must_use]
    pub fn stacks(&self) -> Vec<Vec<String>> {
        self.handles.iter().map(|h| h.status().protocols).collect()
    }

    /// Whether every node runs exactly the given protocol stack.
    #[must_use]
    pub fn all_run(&self, stack: &[&str]) -> bool {
        self.stacks()
            .iter()
            .all(|s| s.iter().map(String::as_str).eq(stack.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use netsim::fault::FaultPlan;
    use netsim::{NodeId, SimDuration, SimTime, Topology, World};

    use crate::concurrency::ConcurrencyModel;
    use crate::neighbour::{hello_registration, neighbour_detection_cf};
    use crate::node::ManetNode;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    /// Builds a two-node world of neighbour-detection deployments and
    /// returns it with the fleet handles.
    fn fleet_world(plan: FaultPlan) -> (World, FleetCoordinator) {
        let mut world = World::builder()
            .topology(Topology::full(2))
            .seed(42)
            .fault_plan(plan)
            .build();
        let mut fleet = FleetCoordinator::default();
        for i in 0..2 {
            let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
            node.deployment_mut()
                .system_mut()
                .register_message(hello_registration());
            node.deployment_mut()
                .add_protocol_offline(neighbour_detection_cf(Default::default()))
                .expect("fresh deployment accepts the protocol");
            fleet.add(node.handle());
            world.install_agent(NodeId(i), Box::new(node));
        }
        (world, fleet)
    }

    #[test]
    fn apply_all_with_retry_defers_on_crashed_node_and_applies_on_reboot() {
        let plan = FaultPlan::builder(0)
            .crash_for(ms(500), NodeId(1), SimDuration::from_millis(1_500))
            .build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));
        assert!(!world.node_up(NodeId(1)));

        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert_eq!(deferred, vec![1], "the crashed node is reported deferred");

        let status = fleet.status();
        assert!(!status.converged());
        assert!(status.pending >= 1);
        assert_eq!(status.deferred, vec![1]);
        assert!(
            status.to_string().contains("deferred on down nodes [1]"),
            "Display names the deferral: {status}"
        );

        // The reboot at 2 s restarts the agent; its first quiescent point
        // drains the deferred op. Node 0 drains at its next HELLO tick.
        world.run_until(ms(4_000));
        let status = fleet.status();
        assert!(status.converged(), "not converged: {status}");
        assert!(status.deferred.is_empty());
        assert_eq!(status.to_string(), "converged");
        assert_eq!(
            world.stats().agent_counter("reconfig.ops_applied"),
            2,
            "both nodes applied the recipe exactly once"
        );
    }

    #[test]
    fn give_up_deferred_drops_pending_ops_of_dead_nodes() {
        // Crash with no reboot scheduled: the node never comes back.
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));

        let deferred =
            fleet.apply_all_with_retry(|| vec![ReconfigOp::RegisterMessage(hello_registration())]);
        assert_eq!(deferred, vec![1]);

        // Node 0 applies at its next quiescent point; node 1 never will.
        world.run_until(ms(2_500));
        let abandoned = fleet.give_up_deferred();
        assert_eq!(abandoned, vec![(1, 1)]);
        let status = fleet.status();
        assert!(status.converged(), "give-up clears the deferral: {status}");
    }
}
