//! Coordinated distributed reconfiguration (the paper's §7 roadmap):
//! apply the same reconfiguration across a fleet of nodes and verify
//! convergence.
//!
//! Per-node reconfiguration is enacted at each node's own quiescent point
//! (see [`NodeHandle`]); the [`FleetCoordinator`] broadcasts an operation
//! *recipe* to every handle and reports when all nodes have applied it
//! (or which ones failed) — the per-node half of a closed control loop
//! whose decision making lives in the `manetkit-adapt` policy engine.
//!
//! All coordination disciplines are driven through **one** entry point:
//! build a [`ReconfigRequest`] (what to apply, under which [`Strategy`],
//! with an optional [`HealthGate`]) and hand it to
//! [`FleetCoordinator::execute`], which always returns a
//! [`FleetTxnReport`]:
//!
//! * [`Strategy::BestEffort`]: ops enqueue everywhere and apply
//!   independently at each node's quiescent point; crashed nodes pick
//!   theirs up after reboot.
//! * [`Strategy::Retry`]: like best-effort, but dead nodes are tracked
//!   against the coordinator's retry budget and dropped once it is
//!   exhausted (the permanently-dead give-up path).
//! * [`Strategy::TwoPhase`]: a two-phase commit over the per-node
//!   transaction engine ([`crate::txn`]) — every alive node *prepares*
//!   the batch (checkpoint + apply + hold the undo log open), and the
//!   coordinator commits only when **all** of them prepared in time;
//!   otherwise the prepared subset rolls back and no node is left running
//!   the new composition. An optional [`HealthGate`] then watches the
//!   committed composition for a provisional window and *reverts* the
//!   whole fleet if the delivery ratio regresses.
//!
//! The pre-0.2 entry points (`apply_all`, `apply_each`,
//! `apply_all_with_retry`, `commit_two_phase`) remain as thin
//! `#[deprecated]` shims over the same internals for one release.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::{NodeId, SimDuration, World};
use parking_lot::Mutex;

use crate::node::{NodeHandle, ReconfigOp, TxnCtl, TxnPhase};

/// Coordinates reconfiguration over many node handles.
#[derive(Clone, Default)]
pub struct FleetCoordinator {
    handles: Vec<NodeHandle>,
    ids: Vec<NodeId>,
    /// How many consecutive times a [`Strategy::Retry`] execution may find
    /// a node dead before its pending ops are dropped automatically
    /// (`None`: never give up).
    retry_budget: Option<u32>,
    /// Consecutive dead-at-enqueue counts, indexed like `handles`. Shared
    /// so cloned coordinators agree on the budget accounting.
    attempts: Arc<Mutex<Vec<u32>>>,
    /// Transaction id allocator.
    next_txn: Arc<AtomicU64>,
}

/// Result of a fleet convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Operations still awaiting a quiescent point, summed over nodes.
    pub pending: usize,
    /// `(node, error)` for nodes whose last operation failed.
    pub failures: Vec<(NodeId, String)>,
    /// Nodes that are currently down (crashed or battery-dead) with
    /// operations waiting for them. Deferred is not failure: the pending
    /// operations apply automatically at the node's first post-reboot
    /// quiescent point.
    pub deferred: Vec<NodeId>,
}

impl FleetStatus {
    /// Whether every node applied everything without error.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.pending == 0 && self.failures.is_empty()
    }
}

impl fmt::Display for FleetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.converged() {
            return write!(f, "converged");
        }
        write!(f, "pending {}", self.pending)?;
        if !self.deferred.is_empty() {
            write!(f, " (deferred on down nodes [")?;
            for (i, node) in self.deferred.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", node.0)?;
            }
            write!(f, "])")?;
        }
        for (node, err) in &self.failures {
            write!(f, "; node {} failed: {err}", node.0)?;
        }
        Ok(())
    }
}

/// How a fleet reconfiguration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxnVerdict {
    /// Every participant prepared and committed; the health window (if
    /// any) passed.
    Committed,
    /// Prepare failed somewhere (or timed out); every prepared node rolled
    /// back to its checkpoint.
    Aborted,
    /// The fleet committed but the health gate tripped; every participant
    /// reverted to its checkpoint.
    Reverted,
    /// Non-transactional execution ([`Strategy::BestEffort`] /
    /// [`Strategy::Retry`]): the batches were enqueued and apply
    /// independently at each node's quiescent point — watch
    /// [`FleetCoordinator::status`] for convergence.
    Enqueued,
}

impl fmt::Display for TxnVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnVerdict::Committed => "committed",
            TxnVerdict::Aborted => "aborted",
            TxnVerdict::Reverted => "reverted",
            TxnVerdict::Enqueued => "enqueued",
        })
    }
}

/// Health gate for a transactional commit: after commit, the new
/// composition runs provisionally for `window`; if the fleet delivery
/// ratio drops more than `max_drop` below the baseline, the coordinator
/// reverts the whole transaction.
///
/// Built with named constructors — no bare positional floats:
///
/// ```
/// use manetkit::HealthGate;
/// use netsim::SimDuration;
///
/// let gate = HealthGate::over_window(SimDuration::from_secs(5)).max_drop(0.3);
/// assert_eq!(gate.window, SimDuration::from_secs(5));
/// assert!(gate.baseline.is_none(), "baseline is measured by default");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HealthGate {
    /// Length of the provisional observation window.
    pub window: SimDuration,
    /// Maximum tolerated drop in delivery ratio (absolute, in `[0, 1]`).
    pub max_drop: f64,
    /// Baseline delivery ratio to compare against; `None` makes the
    /// coordinator measure a pre-window of the same length before
    /// preparing.
    pub baseline: Option<f64>,
}

impl Default for HealthGate {
    /// A 10-second provisional window tolerating a 0.2 delivery-ratio
    /// drop against a measured baseline.
    fn default() -> Self {
        HealthGate {
            window: SimDuration::from_secs(10),
            max_drop: 0.2,
            baseline: None,
        }
    }
}

impl HealthGate {
    /// A gate observing the given provisional window (defaults otherwise:
    /// 0.2 tolerated drop, measured baseline).
    #[must_use]
    pub fn over_window(window: SimDuration) -> Self {
        HealthGate {
            window,
            ..HealthGate::default()
        }
    }

    /// Sets the maximum tolerated delivery-ratio drop (absolute).
    #[must_use]
    pub fn max_drop(mut self, max_drop: f64) -> Self {
        self.max_drop = max_drop;
        self
    }

    /// Compares against a known baseline instead of measuring a
    /// pre-window of the gate's length.
    #[must_use]
    pub fn against_baseline(mut self, ratio: f64) -> Self {
        self.baseline = Some(ratio);
        self
    }

    /// A gate with a measured baseline.
    #[deprecated(
        since = "0.2.0",
        note = "use HealthGate::over_window(window).max_drop(max_drop)"
    )]
    #[must_use]
    pub fn new(window: SimDuration, max_drop: f64) -> Self {
        HealthGate {
            window,
            max_drop,
            baseline: None,
        }
    }
}

/// Knobs for [`Strategy::TwoPhase`] executions.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOptions {
    /// Virtual-time budget for every participant to reach a quiescent
    /// point and prepare. Nodes reaching their quiescent point later
    /// refuse the prepare themselves (see [`TxnCtl::Prepare`]).
    pub prepare_timeout: SimDuration,
    /// Simulation slice between coordinator status polls.
    pub poll: SimDuration,
    /// Virtual-time budget for commit/abort/revert acknowledgements.
    pub resolve_timeout: SimDuration,
    /// Wall-clock budget for each node's quiescence-lock probe.
    pub quiesce_within: std::time::Duration,
    /// Optional health-gated commit.
    pub health: Option<HealthGate>,
    /// `true` (default): nodes that are down when the transaction starts
    /// are skipped (reported in [`FleetTxnReport::skipped`]); `false`:
    /// any dead node aborts the transaction up front.
    pub skip_dead: bool,
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions {
            prepare_timeout: SimDuration::from_secs(5),
            poll: SimDuration::from_millis(100),
            resolve_timeout: SimDuration::from_secs(5),
            quiesce_within: crate::txn::DEFAULT_QUIESCE_WITHIN,
            health: None,
            skip_dead: true,
        }
    }
}

/// Outcome of one [`FleetCoordinator::execute`] run (and of the
/// deprecated `commit_two_phase` shim).
#[must_use = "the report says whether the fleet actually changed — check the verdict"]
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTxnReport {
    /// Transaction id (matches the per-node trace records); `0` for
    /// non-transactional ([`TxnVerdict::Enqueued`]) executions.
    pub txn: u64,
    /// How it ended.
    pub verdict: TxnVerdict,
    /// Nodes that took part.
    pub participants: Vec<NodeId>,
    /// Nodes excluded from the run: down at the start of a transaction,
    /// or dropped by an exhausted [`Strategy::Retry`] budget.
    pub skipped: Vec<NodeId>,
    /// Nodes that were down at enqueue time of a best-effort/retry
    /// execution; their batches apply at the first post-reboot quiescent
    /// point. Always empty for transactional runs (a transaction skips
    /// dead nodes instead).
    pub deferred: Vec<NodeId>,
    /// Why the transaction aborted or reverted (`None` on commit).
    pub reason: Option<String>,
    /// Baseline delivery ratio the health gate compared against.
    pub pre_ratio: Option<f64>,
    /// Delivery ratio observed in the provisional window.
    pub window_ratio: Option<f64>,
    /// Participants that never acknowledged the final verdict within the
    /// resolve budget (typically nodes that crashed mid-transaction; their
    /// own doomed-transaction rollback squares them with the fleet when
    /// they reboot).
    pub unresolved: Vec<NodeId>,
    /// Participants that had not reached `Prepared` when the prepare
    /// deadline passed (empty unless the transaction aborted on the
    /// deadline). Names the laggards so an operator — or a model-checker
    /// counterexample — can see *which* nodes stalled, not just how many.
    pub unprepared: Vec<NodeId>,
}

/// Renders `[3, 7]`-style id lists for report reasons and `Display`.
fn id_list(ids: &[NodeId]) -> String {
    let inner: Vec<String> = ids.iter().map(|n| n.0.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

impl fmt::Display for FleetTxnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn {} {}", self.txn, self.verdict)?;
        if let Some(reason) = &self.reason {
            write!(f, " ({reason})")?;
        }
        write!(f, ": {} participants", self.participants.len())?;
        if !self.skipped.is_empty() {
            write!(f, ", skipped {}", id_list(&self.skipped))?;
        }
        if !self.deferred.is_empty() {
            write!(f, ", deferred {}", id_list(&self.deferred))?;
        }
        if !self.unresolved.is_empty() {
            write!(f, ", unresolved {}", id_list(&self.unresolved))?;
        }
        if !self.unprepared.is_empty() {
            write!(f, ", unprepared {}", id_list(&self.unprepared))?;
        }
        Ok(())
    }
}

/// The operation batches a [`ReconfigRequest`] applies: one recipe invoked
/// per node (ops own protocol state, so `ReconfigOp` is not `Clone`), or a
/// node-indexed recipe for staged rollouts.
enum Recipe<'a> {
    /// The same batch everywhere (`recipe()` invoked once per node).
    Uniform(Box<dyn Fn() -> Vec<ReconfigOp> + 'a>),
    /// Node-specific batches: `recipe(i)` for handle index `i`.
    PerNode(Box<dyn Fn(usize) -> Vec<ReconfigOp> + 'a>),
}

impl Recipe<'_> {
    fn for_node(&self, i: usize) -> Vec<ReconfigOp> {
        match self {
            Recipe::Uniform(f) => f(),
            Recipe::PerNode(f) => f(i),
        }
    }
}

/// The coordination discipline a [`ReconfigRequest`] executes under.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Strategy {
    /// Enqueue on every handle unconditionally; each node applies at its
    /// own quiescent point (down nodes at their first post-reboot one).
    BestEffort,
    /// Like best-effort, but nodes found dead are counted against the
    /// coordinator's retry budget ([`FleetCoordinator::set_retry_budget`])
    /// and abandoned — pending ops dropped, nothing new enqueued — once it
    /// is exhausted.
    Retry,
    /// Fleet-wide two-phase commit: all-or-nothing, with optional
    /// health-gated provisional commit via [`TxnOptions::health`].
    TwoPhase(TxnOptions),
}

/// A fleet reconfiguration, declaratively: *what* to apply (the recipe),
/// *how* to coordinate it (the [`Strategy`]) and — for transactional
/// strategies — the [`HealthGate`] safety net. Executed by
/// [`FleetCoordinator::execute`].
///
/// ```no_run
/// use manetkit::{FleetCoordinator, HealthGate, ReconfigRequest, Strategy};
/// # let fleet = FleetCoordinator::default();
/// # let mut world = netsim::World::builder().nodes(1).seed(1).build();
/// let report = fleet.execute(
///     &mut world,
///     ReconfigRequest::new()
///         .recipe(Vec::new) // a real recipe returns the op batch
///         .strategy(Strategy::TwoPhase(Default::default()))
///         .health_gate(HealthGate::default()),
/// );
/// assert!(report.participants.is_empty());
/// ```
#[must_use = "a request does nothing until FleetCoordinator::execute runs it"]
#[derive(Default)]
pub struct ReconfigRequest<'a> {
    recipe: Option<Recipe<'a>>,
    strategy: Option<Strategy>,
}

impl<'a> ReconfigRequest<'a> {
    /// An empty request: no ops, [`Strategy::BestEffort`].
    pub fn new() -> Self {
        ReconfigRequest::default()
    }

    /// Sets the fleet-wide recipe; it is invoked once per node because
    /// [`ReconfigOp`]s own protocol state and cannot be cloned.
    pub fn recipe(mut self, recipe: impl Fn() -> Vec<ReconfigOp> + 'a) -> Self {
        self.recipe = Some(Recipe::Uniform(Box::new(recipe)));
        self
    }

    /// Sets a node-indexed recipe (`recipe(i)` for handle index `i`) for
    /// staged or heterogeneous rollouts.
    pub fn recipe_per_node(mut self, recipe: impl Fn(usize) -> Vec<ReconfigOp> + 'a) -> Self {
        self.recipe = Some(Recipe::PerNode(Box::new(recipe)));
        self
    }

    /// Sets the coordination strategy (default: [`Strategy::BestEffort`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Attaches a health gate. A transactional strategy keeps its other
    /// options; a non-transactional (or unset) strategy is upgraded to
    /// [`Strategy::TwoPhase`] with defaults, since only a transaction can
    /// revert. Call after [`strategy`](Self::strategy) when combining.
    pub fn health_gate(mut self, gate: HealthGate) -> Self {
        self.strategy = Some(match self.strategy.take() {
            Some(Strategy::TwoPhase(mut opts)) => {
                opts.health = Some(gate);
                Strategy::TwoPhase(opts)
            }
            _ => Strategy::TwoPhase(TxnOptions {
                health: Some(gate),
                ..TxnOptions::default()
            }),
        });
        self
    }
}

impl fmt::Debug for ReconfigRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigRequest")
            .field("has_recipe", &self.recipe.is_some())
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl FleetCoordinator {
    /// A coordinator over the given handles; node ids are assigned by
    /// position (`NodeId(0)`, `NodeId(1)`, …), matching the usual
    /// install-in-order worlds.
    #[must_use]
    pub fn new(handles: Vec<NodeHandle>) -> Self {
        let ids = (0..handles.len()).map(NodeId).collect();
        FleetCoordinator {
            handles,
            ids,
            retry_budget: None,
            attempts: Arc::new(Mutex::new(Vec::new())),
            next_txn: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds a node to the fleet with the next positional id.
    pub fn add(&mut self, handle: NodeHandle) {
        let id = NodeId(self.handles.len());
        self.add_node(id, handle);
    }

    /// Adds a node with an explicit id (fleets over sparse or re-ordered
    /// world populations).
    pub fn add_node(&mut self, id: NodeId, handle: NodeHandle) {
        self.handles.push(handle);
        self.ids.push(id);
    }

    /// Number of coordinated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The handle registered under the given node id, if any — the
    /// per-node escape hatch for targeted follow-ups (e.g. best-effort
    /// reconciliation of a node that missed a committed transaction).
    #[must_use]
    pub fn handle_of(&self, id: NodeId) -> Option<&NodeHandle> {
        self.ids
            .iter()
            .position(|&n| n == id)
            .map(|i| &self.handles[i])
    }

    /// Caps how many consecutive [`Strategy::Retry`] executions may find a
    /// node dead before the coordinator automatically drops that node's
    /// pending ops (the permanently-dead give-up path). `None` (the
    /// default) defers forever.
    pub fn set_retry_budget(&mut self, budget: Option<u32>) {
        self.retry_budget = budget;
    }

    /// Executes a [`ReconfigRequest`] across the fleet — the single entry
    /// point for every coordination discipline.
    ///
    /// Best-effort and retry strategies enqueue and return immediately
    /// (verdict [`TxnVerdict::Enqueued`], with down nodes named in
    /// [`FleetTxnReport::deferred`]); the transactional strategy advances
    /// the world (`run_for`) while the coordinator polls for prepare and
    /// resolve acknowledgements, so call it where simulation time is
    /// allowed to progress.
    pub fn execute(&self, world: &mut World, req: ReconfigRequest<'_>) -> FleetTxnReport {
        let recipe = req
            .recipe
            .unwrap_or_else(|| Recipe::Uniform(Box::new(Vec::new)));
        match req.strategy.unwrap_or(Strategy::BestEffort) {
            Strategy::BestEffort => self.enqueue(&recipe, false),
            Strategy::Retry => self.enqueue(&recipe, true),
            Strategy::TwoPhase(opts) => self.two_phase(world, &recipe, &opts),
        }
    }

    /// Enqueues the operations produced by `recipe` on every node.
    #[deprecated(
        since = "0.2.0",
        note = "execute(world, ReconfigRequest::new().recipe(..)) — one entry point for all strategies"
    )]
    pub fn apply_all(&self, recipe: impl Fn() -> Vec<ReconfigOp>) {
        let _ = self.enqueue(&Recipe::Uniform(Box::new(recipe)), false);
    }

    /// Enqueues node-specific operations: `recipe(i)` for node `i`.
    #[deprecated(
        since = "0.2.0",
        note = "execute(world, ReconfigRequest::new().recipe_per_node(..))"
    )]
    pub fn apply_each(&self, recipe: impl Fn(usize) -> Vec<ReconfigOp>) {
        let _ = self.enqueue(&Recipe::PerNode(Box::new(recipe)), false);
    }

    /// Enqueues the operations produced by `recipe` on every node, with
    /// crash-aware reporting; returns the nodes that were down at enqueue
    /// time.
    #[deprecated(
        since = "0.2.0",
        note = "execute(world, ReconfigRequest::new().recipe(..).strategy(Strategy::Retry)).deferred"
    )]
    pub fn apply_all_with_retry(&self, recipe: impl Fn() -> Vec<ReconfigOp>) -> Vec<NodeId> {
        self.enqueue(&Recipe::Uniform(Box::new(recipe)), true)
            .deferred
    }

    /// Applies `recipe` across the fleet as one distributed transaction.
    #[deprecated(
        since = "0.2.0",
        note = "execute(world, ReconfigRequest::new().recipe(..).strategy(Strategy::TwoPhase(opts)))"
    )]
    pub fn commit_two_phase(
        &self,
        world: &mut World,
        recipe: impl Fn() -> Vec<ReconfigOp>,
        opts: &TxnOptions,
    ) -> FleetTxnReport {
        self.two_phase(world, &Recipe::Uniform(Box::new(recipe)), opts)
    }

    /// Drops the pending operations of every node that is currently down,
    /// returning `(node, operations dropped)` per affected node — the
    /// give-up path when a deferred reconfiguration should no longer
    /// apply on reboot.
    pub fn give_up_deferred(&self) -> Vec<(NodeId, usize)> {
        let mut abandoned = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if !handle.is_alive() && handle.pending_ops() > 0 {
                abandoned.push((self.ids[i], handle.clear_pending()));
            }
        }
        abandoned
    }

    /// Snapshots fleet convergence.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        let mut pending = 0;
        let mut failures = Vec::new();
        let mut deferred = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            let node_pending = handle.pending_ops();
            pending += node_pending;
            if let Some(err) = handle.status().last_error {
                failures.push((self.ids[i], err));
            }
            if node_pending > 0 && !handle.is_alive() {
                deferred.push(self.ids[i]);
            }
        }
        FleetStatus {
            pending,
            failures,
            deferred,
        }
    }

    /// Protocol stacks per node, for post-reconfiguration verification.
    #[must_use]
    pub fn stacks(&self) -> Vec<Vec<String>> {
        self.handles.iter().map(|h| h.status().protocols).collect()
    }

    /// Whether every node runs exactly the given protocol stack.
    #[must_use]
    pub fn all_run(&self, stack: &[&str]) -> bool {
        self.stacks()
            .iter()
            .all(|s| s.iter().map(String::as_str).eq(stack.iter().copied()))
    }

    // ---- strategy internals ------------------------------------------------

    /// Best-effort / retry enqueue shared by [`execute`](Self::execute)
    /// and the deprecated shims. With `retry_aware`, dead nodes are
    /// counted against the retry budget and abandoned (pending dropped,
    /// nothing enqueued, reported in `skipped`) once it is exhausted.
    fn enqueue(&self, recipe: &Recipe<'_>, retry_aware: bool) -> FleetTxnReport {
        let mut deferred = Vec::new();
        let mut abandoned = Vec::new();
        {
            let mut attempts = self.attempts.lock();
            if attempts.len() < self.handles.len() {
                attempts.resize(self.handles.len(), 0);
            }
            for (i, handle) in self.handles.iter().enumerate() {
                if handle.is_alive() {
                    if retry_aware {
                        attempts[i] = 0;
                    }
                } else {
                    if retry_aware {
                        attempts[i] += 1;
                        if self.retry_budget.is_some_and(|budget| attempts[i] > budget) {
                            // Budget exhausted: the node is treated as
                            // permanently dead. Drop whatever it still
                            // holds and skip it.
                            handle.clear_pending();
                            abandoned.push(self.ids[i]);
                            continue;
                        }
                    }
                    deferred.push(self.ids[i]);
                }
                for op in recipe.for_node(i) {
                    handle.apply(op);
                }
            }
        }
        let participants = self
            .ids
            .iter()
            .copied()
            .filter(|id| !abandoned.contains(id))
            .collect();
        FleetTxnReport {
            txn: 0,
            verdict: TxnVerdict::Enqueued,
            participants,
            skipped: abandoned,
            deferred,
            reason: None,
            pre_ratio: None,
            window_ratio: None,
            unresolved: Vec::new(),
            unprepared: Vec::new(),
        }
    }

    /// The two-phase commit engine behind [`Strategy::TwoPhase`].
    ///
    /// Phase 1 (*prepare*): every alive node gets its batch with a virtual
    /// prepare deadline; each checkpoints, applies, and holds its undo log
    /// open at its own quiescent point. Phase 2: if — and only if — every
    /// participant reported `Prepared` before the deadline, the coordinator
    /// broadcasts *commit*; otherwise it broadcasts *abort* and the
    /// prepared subset rolls back to its checkpoints, so no mix of old and
    /// new compositions survives.
    ///
    /// With a [`HealthGate`] configured, a committed composition runs
    /// provisionally for the gate's window; if the fleet delivery ratio
    /// drops more than `max_drop` below the baseline the coordinator
    /// broadcasts *revert* and the fleet returns to the checkpoint
    /// compositions ([`TxnVerdict::Reverted`]).
    ///
    /// The world is advanced (`run_for`) while the coordinator waits. A
    /// participant that crashes mid-transaction dooms its own prepared
    /// transaction (rolled back at its first post-reboot quiescent point)
    /// and shows up in [`FleetTxnReport::unresolved`].
    fn two_phase(
        &self,
        world: &mut World,
        recipe: &Recipe<'_>,
        opts: &TxnOptions,
    ) -> FleetTxnReport {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        let mut participants = Vec::new();
        let mut skipped = Vec::new();
        for (i, handle) in self.handles.iter().enumerate() {
            if handle.is_alive() {
                participants.push(i);
            } else {
                skipped.push(self.ids[i]);
            }
        }
        let participant_ids: Vec<NodeId> = participants.iter().map(|&i| self.ids[i]).collect();
        let mut report = FleetTxnReport {
            txn,
            verdict: TxnVerdict::Aborted,
            participants: participant_ids,
            skipped,
            deferred: Vec::new(),
            reason: None,
            pre_ratio: None,
            window_ratio: None,
            unresolved: Vec::new(),
            unprepared: Vec::new(),
        };
        if !opts.skip_dead && !report.skipped.is_empty() {
            report.reason = Some(format!(
                "node(s) {} down and skip_dead is off",
                id_list(&report.skipped)
            ));
            return report;
        }
        if participants.is_empty() {
            report.reason = Some("no alive participants".to_string());
            return report;
        }

        // Health baseline: measure a pre-window unless one was supplied.
        let mut window = world.stats_window();
        if let Some(gate) = &opts.health {
            let baseline = match gate.baseline {
                Some(b) => b,
                None => {
                    window.skip(world);
                    world.run_for(gate.window);
                    window.advance(world).delivery_ratio()
                }
            };
            report.pre_ratio = Some(baseline);
        }

        // Phase 1: prepare everywhere, with a virtual deadline.
        let started = world.now();
        let deadline = started + opts.prepare_timeout;
        for &i in &participants {
            self.handles[i].txn_ctl(TxnCtl::Prepare {
                id: txn,
                ops: recipe.for_node(i),
                requested: Some(started),
                deadline: Some(deadline),
                quiesce_within: opts.quiesce_within,
            });
        }
        let mut abort_reason: Option<String> = None;
        loop {
            world.run_for(opts.poll);
            let mut all_prepared = true;
            for &i in &participants {
                match self.handles[i].status().txn {
                    Some(r) if r.id == txn => match r.phase {
                        TxnPhase::Prepared | TxnPhase::Committed => {}
                        TxnPhase::Aborted | TxnPhase::RolledBack | TxnPhase::Reverted => {
                            abort_reason =
                                Some(format!("node {} {}: {}", self.ids[i].0, r.phase, r.detail));
                            all_prepared = false;
                        }
                    },
                    _ => all_prepared = false,
                }
            }
            if abort_reason.is_some() {
                break;
            }
            if all_prepared {
                break;
            }
            if world.now() > deadline {
                let laggards: Vec<NodeId> = participants
                    .iter()
                    .filter(|&&i| {
                        !matches!(
                            self.handles[i].status().txn,
                            Some(ref r) if r.id == txn && r.phase == TxnPhase::Prepared
                        )
                    })
                    .map(|&i| self.ids[i])
                    .collect();
                abort_reason = Some(format!(
                    "prepare deadline passed with node(s) {} unprepared",
                    id_list(&laggards)
                ));
                report.unprepared = laggards;
                break;
            }
        }

        if let Some(reason) = abort_reason {
            // Phase 2a: abort. The per-node ctl queue is FIFO, so a node
            // that has not processed its Prepare yet will prepare and then
            // immediately roll back — or refuse the stale prepare at its
            // deadline — either way converging on the checkpoint.
            for &i in &participants {
                self.handles[i].txn_ctl(TxnCtl::Abort {
                    id: txn,
                    reason: "peer_abort",
                });
            }
            report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
                matches!(
                    phase,
                    TxnPhase::Aborted | TxnPhase::RolledBack | TxnPhase::Reverted
                )
            });
            report.verdict = TxnVerdict::Aborted;
            report.reason = Some(reason);
            return report;
        }

        // Phase 2b: commit.
        for &i in &participants {
            self.handles[i].txn_ctl(TxnCtl::Commit { id: txn });
        }
        report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
            phase == TxnPhase::Committed
        });
        report.verdict = TxnVerdict::Committed;

        // Health-gated provisional window.
        if let Some(gate) = &opts.health {
            let baseline = report.pre_ratio.unwrap_or(1.0);
            window.skip(world);
            world.run_for(gate.window);
            let ratio = window.advance(world).delivery_ratio();
            report.window_ratio = Some(ratio);
            if baseline - ratio > gate.max_drop {
                for &i in &participants {
                    self.handles[i].txn_ctl(TxnCtl::Revert { id: txn });
                }
                report.unresolved = self.drain(world, &participants, txn, opts, |phase| {
                    phase == TxnPhase::Reverted
                });
                report.verdict = TxnVerdict::Reverted;
                report.reason = Some(format!(
                    "delivery ratio {ratio:.3} fell more than {:.3} below baseline {baseline:.3}",
                    gate.max_drop
                ));
            }
        }
        report
    }

    /// Runs the world in poll slices until every participant's status
    /// reports the wanted phase for `txn`, or the resolve budget runs out.
    /// Returns the nodes that never got there.
    fn drain(
        &self,
        world: &mut World,
        participants: &[usize],
        txn: u64,
        opts: &TxnOptions,
        done: impl Fn(TxnPhase) -> bool,
    ) -> Vec<NodeId> {
        let deadline = world.now() + opts.resolve_timeout;
        loop {
            world.run_for(opts.poll);
            let laggards: Vec<NodeId> = participants
                .iter()
                .filter(|&&i| {
                    !matches!(
                        self.handles[i].status().txn,
                        Some(ref r) if r.id == txn && done(r.phase)
                    )
                })
                .map(|&i| self.ids[i])
                .collect();
            if laggards.is_empty() || world.now() > deadline {
                return laggards;
            }
        }
    }
}

impl fmt::Debug for FleetCoordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field("nodes", &self.ids)
            .field("retry_budget", &self.retry_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use netsim::fault::FaultPlan;
    use netsim::{NodeId, SimDuration, SimTime, Topology, World};

    use crate::concurrency::ConcurrencyModel;
    use crate::neighbour::{hello_registration, neighbour_detection_cf};
    use crate::node::ManetNode;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    /// Builds a two-node world of neighbour-detection deployments and
    /// returns it with the fleet handles.
    fn fleet_world(plan: FaultPlan) -> (World, FleetCoordinator) {
        let mut world = World::builder()
            .topology(Topology::full(2))
            .seed(42)
            .fault_plan(plan)
            .build();
        let mut fleet = FleetCoordinator::default();
        for i in 0..2 {
            let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
            node.deployment_mut()
                .system_mut()
                .register_message(hello_registration());
            node.deployment_mut()
                .add_protocol_offline(neighbour_detection_cf(Default::default()))
                .expect("fresh deployment accepts the protocol");
            fleet.add(node.handle());
            world.install_agent(NodeId(i), Box::new(node));
        }
        (world, fleet)
    }

    fn register_hello() -> Vec<ReconfigOp> {
        vec![ReconfigOp::RegisterMessage(hello_registration())]
    }

    #[test]
    fn retry_strategy_defers_on_crashed_node_and_applies_on_reboot() {
        let plan = FaultPlan::builder(0)
            .crash_for(ms(500), NodeId(1), SimDuration::from_millis(1_500))
            .build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));
        assert!(!world.node_up(NodeId(1)));

        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(register_hello)
                .strategy(Strategy::Retry),
        );
        assert_eq!(report.verdict, TxnVerdict::Enqueued);
        assert_eq!(report.txn, 0, "no transaction id for an enqueue");
        assert_eq!(
            report.deferred,
            vec![NodeId(1)],
            "the crashed node is reported deferred"
        );
        assert_eq!(report.participants, vec![NodeId(0), NodeId(1)]);
        assert!(
            report.to_string().contains("deferred [1]"),
            "Display names the deferral: {report}"
        );

        let status = fleet.status();
        assert!(!status.converged());
        assert!(status.pending >= 1);
        assert_eq!(status.deferred, vec![NodeId(1)]);
        assert!(
            status.to_string().contains("deferred on down nodes [1]"),
            "Display names the deferral: {status}"
        );

        // The reboot at 2 s restarts the agent; its first quiescent point
        // drains the deferred op. Node 0 drains at its next HELLO tick.
        world.run_until(ms(4_000));
        let status = fleet.status();
        assert!(status.converged(), "not converged: {status}");
        assert!(status.deferred.is_empty());
        assert_eq!(status.to_string(), "converged");
        assert_eq!(
            world.stats().agent_counter("reconfig.ops_applied"),
            2,
            "both nodes applied the recipe exactly once"
        );
    }

    #[test]
    fn best_effort_enqueues_everywhere_even_on_dead_nodes() {
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));

        let report = fleet.execute(&mut world, ReconfigRequest::new().recipe(register_hello));
        assert_eq!(report.verdict, TxnVerdict::Enqueued);
        assert_eq!(report.deferred, vec![NodeId(1)]);
        assert!(report.skipped.is_empty(), "best-effort never abandons");
        // The dead node holds its batch for a reboot that never comes.
        assert_eq!(fleet.handle_of(NodeId(1)).unwrap().pending_ops(), 1);
    }

    #[test]
    fn per_node_recipes_stage_different_batches() {
        let (mut world, fleet) = fleet_world(FaultPlan::builder(0).build());
        world.run_until(ms(500));
        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new().recipe_per_node(|i| {
                if i == 0 {
                    vec![ReconfigOp::RegisterMessage(hello_registration())]
                } else {
                    Vec::new()
                }
            }),
        );
        assert_eq!(report.verdict, TxnVerdict::Enqueued);
        assert_eq!(fleet.handle_of(NodeId(0)).unwrap().pending_ops(), 1);
        assert_eq!(fleet.handle_of(NodeId(1)).unwrap().pending_ops(), 0);
    }

    #[test]
    fn give_up_deferred_drops_pending_ops_of_dead_nodes() {
        // Crash with no reboot scheduled: the node never comes back.
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, fleet) = fleet_world(plan);
        world.run_until(ms(1_000));

        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(register_hello)
                .strategy(Strategy::Retry),
        );
        assert_eq!(report.deferred, vec![NodeId(1)]);

        // Node 0 applies at its next quiescent point; node 1 never will.
        world.run_until(ms(2_500));
        let abandoned = fleet.give_up_deferred();
        assert_eq!(abandoned, vec![(NodeId(1), 1)]);
        let status = fleet.status();
        assert!(status.converged(), "give-up clears the deferral: {status}");
    }

    #[test]
    fn retry_budget_gives_up_on_permanently_dead_nodes_automatically() {
        let plan = FaultPlan::builder(0).crash(ms(500), NodeId(1)).build();
        let (mut world, mut fleet) = fleet_world(plan);
        fleet.set_retry_budget(Some(1));
        world.run_until(ms(1_000));

        // First encounter: within budget, the op is deferred normally.
        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(register_hello)
                .strategy(Strategy::Retry),
        );
        assert_eq!(report.deferred, vec![NodeId(1)]);
        assert_eq!(fleet.status().deferred, vec![NodeId(1)]);

        // Second encounter: budget exceeded — pending ops are dropped and
        // nothing new enqueues on the dead node.
        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(register_hello)
                .strategy(Strategy::Retry),
        );
        assert!(
            report.deferred.is_empty(),
            "given-up node no longer deferred"
        );
        assert_eq!(report.skipped, vec![NodeId(1)], "abandonment is reported");
        assert_eq!(report.participants, vec![NodeId(0)]);

        world.run_until(ms(2_500));
        let status = fleet.status();
        assert!(
            status.converged(),
            "auto-give-up clears the backlog: {status}"
        );
        assert_eq!(
            world.stats().agent_counter("reconfig.ops_applied"),
            2,
            "the alive node applied both rounds; the dead one applied nothing"
        );
    }

    #[test]
    fn two_phase_commit_converges_the_fleet() {
        let (mut world, fleet) = fleet_world(FaultPlan::builder(0).build());
        world.run_until(ms(1_000));

        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(register_hello)
                .strategy(Strategy::TwoPhase(TxnOptions::default())),
        );
        assert_eq!(report.verdict, TxnVerdict::Committed, "{report}");
        assert!(report.unresolved.is_empty(), "{report}");
        assert!(report.deferred.is_empty(), "transactions never defer");
        assert_eq!(report.participants, vec![NodeId(0), NodeId(1)]);
        let stats = world.stats();
        assert_eq!(stats.agent_counter("txn.prepared"), 2);
        assert_eq!(stats.agent_counter("txn.committed"), 2);
        assert_eq!(stats.agent_counter("txn.aborted"), 0);
        assert_eq!(
            stats.agent_counter("reconfig.ops_applied"),
            2,
            "committed ops count as applied reconfigurations"
        );
    }

    #[test]
    fn two_phase_commit_aborts_everywhere_when_one_node_cannot_apply() {
        let (mut world, fleet) = fleet_world(FaultPlan::builder(0).build());
        world.run_until(ms(1_000));

        // Node 1's batch contains an op that must fail (removing a protocol
        // that does not exist); node 0's batch is fine. 2PC must roll node
        // 0's prepared batch back, leaving both compositions untouched.
        let stacks_before = fleet.stacks();
        let report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe_per_node(|i| {
                    if i == 0 {
                        vec![ReconfigOp::RemoveProtocol {
                            name: "neighbour-detection".into(),
                        }]
                    } else {
                        vec![ReconfigOp::RemoveProtocol {
                            name: "no-such-protocol".into(),
                        }]
                    }
                })
                .strategy(Strategy::TwoPhase(TxnOptions::default())),
        );
        assert_eq!(report.verdict, TxnVerdict::Aborted, "{report}");
        assert!(report.reason.is_some());
        assert!(report.unresolved.is_empty(), "{report}");
        assert_eq!(fleet.stacks(), stacks_before, "no node kept the change");
        let stats = world.stats();
        assert!(stats.agent_counter("txn.aborted") >= 1);
        assert!(stats.agent_counter("txn.rolled_back") >= 1);
    }

    #[test]
    fn health_gate_builder_and_request_upgrade() {
        let gate = HealthGate::over_window(SimDuration::from_secs(3))
            .max_drop(0.4)
            .against_baseline(0.9);
        assert_eq!(gate.window, SimDuration::from_secs(3));
        assert!((gate.max_drop - 0.4).abs() < f64::EPSILON);
        assert_eq!(gate.baseline, Some(0.9));
        assert_eq!(
            HealthGate::default(),
            HealthGate {
                window: SimDuration::from_secs(10),
                max_drop: 0.2,
                baseline: None,
            }
        );

        // A health gate on a non-transactional request upgrades it to
        // two-phase — only a transaction can revert.
        let req = ReconfigRequest::new().health_gate(gate.clone());
        match req.strategy {
            Some(Strategy::TwoPhase(opts)) => assert_eq!(opts.health, Some(gate.clone())),
            other => panic!("expected TwoPhase upgrade, got {other:?}"),
        }

        // On an existing two-phase strategy the other options survive.
        let opts = TxnOptions {
            prepare_timeout: SimDuration::from_secs(9),
            ..TxnOptions::default()
        };
        let req = ReconfigRequest::new()
            .strategy(Strategy::TwoPhase(opts))
            .health_gate(gate.clone());
        match req.strategy {
            Some(Strategy::TwoPhase(opts)) => {
                assert_eq!(opts.prepare_timeout, SimDuration::from_secs(9));
                assert_eq!(opts.health, Some(gate));
            }
            other => panic!("expected TwoPhase, got {other:?}"),
        }
    }
}
