//! The polymorphic event ontology connecting CFS units.
//!
//! All communication between protocol CFs (and the System CF below them)
//! travels as [`Event`]s — packets in flight, context information, topology
//! notifications and route-control signals. The set of event *types* is
//! open-ended: protocols declare the types they require and provide in their
//! [`EventTuple`](crate::registry::EventTuple)s and the Framework Manager
//! wires them together by name.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use packetbb::{Address, Message};

/// The process-wide intern table mapping event type names to dense ids.
///
/// Names are leaked exactly once (`Box::leak`) so `as_str` can hand out
/// `&'static str` without holding the lock; the leak is bounded by the number
/// of *distinct* event type names a process ever uses, which for a routing
/// deployment is a few dozen.
struct InternTable {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn intern_table() -> &'static RwLock<InternTable> {
    static TABLE: OnceLock<RwLock<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(InternTable {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// An interned event type name, e.g. `"TC_OUT"`.
///
/// The value is a dense `u32` id into a process-wide intern table, so it is
/// `Copy`, equality is a single integer compare and hashing is O(1) —
/// independent of the name length. Two `EventType`s are equal iff their names
/// are equal; [`EventType::named`] returns the *same* id for the same name
/// every time. Ordering ([`Ord`]) compares by name, not id, so sort order is
/// stable regardless of interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventType(u32);

impl EventType {
    /// Interns `name` and returns its event type.
    ///
    /// The first call for a given name allocates an entry in the global
    /// intern table; every subsequent call is a read-locked hash lookup that
    /// returns the identical id with **no further allocation**. Hot paths
    /// should still cache the returned value (it is `Copy`) rather than
    /// re-interning per event.
    #[must_use]
    pub fn named(name: &str) -> Self {
        // Fast path: already interned (read lock only).
        if let Some(&id) = intern_table()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .by_name
            .get(name)
        {
            return EventType(id);
        }
        let mut table = intern_table()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check under the write lock: another thread may have won the race.
        if let Some(&id) = table.by_name.get(name) {
            return EventType(id);
        }
        let id = u32::try_from(table.names.len()).expect("intern table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.names.push(leaked);
        table.by_name.insert(leaked, id);
        EventType(id)
    }

    /// The type name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        intern_table()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .names[self.0 as usize]
    }

    /// The dense intern id. Ids start at 0 and are assigned in interning
    /// order, so they index directly into per-type tables sized by
    /// [`EventType::intern_count`]. Ids are stable for the process lifetime
    /// but **not** across runs — persist names, not ids.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.0
    }

    /// Number of distinct event types interned so far. Any id returned by
    /// [`EventType::id`] is `< intern_count()` at the time of the call.
    #[must_use]
    pub fn intern_count() -> usize {
        intern_table()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .names
            .len()
    }
}

impl PartialOrd for EventType {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventType {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventType({})", self.as_str())
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for EventType {
    fn from(s: &str) -> Self {
        EventType::named(s)
    }
}

/// Defines functions returning cached interned [`EventType`]s for fixed
/// names: the first call interns the name, every later call is a single
/// atomic load — no lock, no lookup, no allocation. The `types` module and
/// the protocol crates' timer constants are built from this.
///
/// ```
/// manetkit::cached_event_type! {
///     /// My protocol's sweep timer.
///     pub fn sweep_timer => "myproto:sweep";
/// }
/// assert_eq!(sweep_timer(), manetkit::EventType::named("myproto:sweep"));
/// ```
#[macro_export]
macro_rules! cached_event_type {
    ($($(#[$attr:meta])* $vis:vis fn $name:ident => $ty_name:expr;)+) => {
        $(
            $(#[$attr])*
            #[must_use]
            $vis fn $name() -> $crate::event::EventType {
                static CACHE: ::std::sync::OnceLock<$crate::event::EventType> =
                    ::std::sync::OnceLock::new();
                *CACHE.get_or_init(|| $crate::event::EventType::named($ty_name))
            }
        )+
    };
}

/// Well-known event types used by the protocols in this workspace.
///
/// Deployments are free to define further types; these constants only fix
/// the names the bundled protocols agree on.
pub mod types {
    use super::EventType;
    use std::sync::OnceLock;

    macro_rules! event_types {
        ($($(#[$doc:meta])* $fn_name:ident => $name:literal;)*) => {
            $(
                $(#[$doc])*
                #[must_use]
                pub fn $fn_name() -> EventType {
                    static CACHE: OnceLock<EventType> = OnceLock::new();
                    *CACHE.get_or_init(|| EventType::named($name))
                }
            )*
        };
    }

    event_types! {
        /// Outgoing HELLO message (link sensing).
        hello_out => "HELLO_OUT";
        /// Incoming HELLO message.
        hello_in => "HELLO_IN";
        /// Outgoing OLSR Topology Change message.
        tc_out => "TC_OUT";
        /// Incoming OLSR Topology Change message.
        tc_in => "TC_IN";
        /// Outgoing DYMO routing element (RREQ/RREP).
        re_out => "RE_OUT";
        /// Incoming DYMO routing element.
        re_in => "RE_IN";
        /// Outgoing DYMO route error.
        rerr_out => "RERR_OUT";
        /// Incoming DYMO route error.
        rerr_in => "RERR_IN";
        /// Outgoing residual-power dissemination (power-aware OLSR).
        power_msg_out => "POWER_MSG_OUT";
        /// Incoming residual-power dissemination.
        power_msg_in => "POWER_MSG_IN";
        /// The local neighbourhood changed (neighbours gained/lost).
        nhood_change => "NHOOD_CHANGE";
        /// The multipoint-relay selection changed.
        mpr_change => "MPR_CHANGE";
        /// Battery level context report.
        power_status => "POWER_STATUS";
        /// A locally originated packet has no route (netfilter trap).
        no_route => "NO_ROUTE";
        /// A route carried traffic (lifetime refresh trigger).
        route_update => "ROUTE_UPDATE";
        /// Forwarding failed for a transit packet (RERR trigger).
        send_route_err => "SEND_ROUTE_ERR";
        /// A route discovery concluded; buffered packets may be re-injected.
        route_found => "ROUTE_FOUND";
        /// Link-layer unicast transmission failure.
        tx_failed => "TX_FAILED";
    }
}

/// A context sensor reading carried by context events.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ContextValue {
    /// Remaining battery fraction in `[0, 1]`.
    Battery(f64),
    /// Estimated quality of the link to a neighbour in `[0, 1]`.
    LinkQuality(Address, f64),
    /// Observed packet loss rate in `[0, 1]`.
    PacketLoss(f64),
    /// Protocol-specific scalar (name, value).
    Custom(&'static str, f64),
}

/// Payload of a neighbourhood-change event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighbourhoodChange {
    /// Symmetric neighbours at the time of the event.
    pub sym_neighbours: Vec<Address>,
    /// Two-hop reachability: `(neighbour, two_hop_node)` pairs.
    pub two_hop: Vec<(Address, Address)>,
    /// Neighbours newly confirmed symmetric.
    pub added: Vec<Address>,
    /// Neighbours lost since the previous event.
    pub lost: Vec<Address>,
}

/// Payload of an MPR-change event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MprChange {
    /// Neighbours this node selected as relays.
    pub mprs: Vec<Address>,
    /// Neighbours that selected this node as a relay.
    pub selectors: Vec<Address>,
}

/// Payload of route-control events (the netlink surface).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteCtl {
    /// No route for a locally originated packet to `dst`.
    NoRoute {
        /// Unrouted destination.
        dst: Address,
    },
    /// The route to `dst` via `next_hop` carried traffic.
    RouteUsed {
        /// Destination.
        dst: Address,
        /// Next hop used.
        next_hop: Address,
    },
    /// Forwarding a transit packet from `src` to `dst` failed.
    ForwardFailure {
        /// Destination.
        dst: Address,
        /// Original source (where route errors should head).
        src: Address,
        /// Unreachable next hop.
        next_hop: Address,
    },
    /// A route to `dst` is now installed; re-inject buffered packets.
    RouteFound {
        /// Destination that became routable.
        dst: Address,
    },
    /// Unicast to `neighbour` was not acknowledged.
    TxFailed {
        /// The unresponsive neighbour.
        neighbour: Address,
    },
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Payload {
    /// A protocol message (PacketBB) travelling up or down the stack.
    Message(Arc<Message>),
    /// A context sensor reading.
    Context(ContextValue),
    /// A neighbourhood change notification.
    Neighbourhood(Arc<NeighbourhoodChange>),
    /// An MPR selection change notification.
    Mpr(Arc<MprChange>),
    /// A route-control signal.
    RouteCtl(RouteCtl),
    /// No payload (pure signal / timer events).
    None,
}

/// Delivery metadata attached to an event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventMeta {
    /// For `*_IN` events: the neighbour the frame came from.
    pub from: Option<Address>,
    /// For `*_OUT` events: unicast target (`None` = link-local broadcast).
    pub dst: Option<Address>,
    /// The protocol that emitted the event (`None` when the System CF did);
    /// used for loop avoidance when a protocol provides and requires the
    /// same type.
    pub origin: Option<String>,
}

/// A unit of communication between CFS units.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The event type (routing key).
    pub ty: EventType,
    /// The payload.
    pub payload: Payload,
    /// Delivery metadata.
    pub meta: EventMeta,
}

impl Event {
    /// A payload-less signal event.
    #[must_use]
    pub fn signal(ty: EventType) -> Self {
        Event {
            ty,
            payload: Payload::None,
            meta: EventMeta::default(),
        }
    }

    /// An outgoing message event (broadcast unless `dst` is set later).
    #[must_use]
    pub fn message_out(ty: EventType, msg: Message) -> Self {
        Event {
            ty,
            payload: Payload::Message(Arc::new(msg)),
            meta: EventMeta::default(),
        }
    }

    /// An incoming message event from `from`.
    #[must_use]
    pub fn message_in(ty: EventType, msg: Arc<Message>, from: Address) -> Self {
        Event {
            ty,
            payload: Payload::Message(msg),
            meta: EventMeta {
                from: Some(from),
                ..EventMeta::default()
            },
        }
    }

    /// Sets the unicast destination, returning `self`.
    #[must_use]
    pub fn to(mut self, dst: Address) -> Self {
        self.meta.dst = Some(dst);
        self
    }

    /// The message payload, if this is a message event.
    #[must_use]
    pub fn message(&self) -> Option<&Arc<Message>> {
        match &self.payload {
            Payload::Message(m) => Some(m),
            _ => None,
        }
    }

    /// The route-control payload, if any.
    #[must_use]
    pub fn route_ctl(&self) -> Option<&RouteCtl> {
        match &self.payload {
            Payload::RouteCtl(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packetbb::MessageBuilder;

    #[test]
    fn event_type_identity() {
        assert_eq!(types::tc_out(), EventType::named("TC_OUT"));
        assert_ne!(types::tc_out(), types::tc_in());
        assert_eq!(types::tc_out().to_string(), "TC_OUT");
        let from_str: EventType = "X".into();
        assert_eq!(from_str.as_str(), "X");
    }

    #[test]
    fn named_interns_once() {
        let a = EventType::named("TC_OUT");
        let before = EventType::intern_count();
        let b = EventType::named("TC_OUT");
        // Same id — equality is identity, not a string compare.
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        // No new table entry and the backing name is the very same
        // allocation: the second call allocated nothing.
        assert_eq!(EventType::intern_count(), before);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        // A genuinely new name does grow the table (by exactly one).
        let c = EventType::named("__INTERN_TEST_FRESH");
        assert_eq!(EventType::intern_count(), before + 1);
        assert_ne!(c, a);
        assert!((c.id() as usize) < EventType::intern_count());
    }

    #[test]
    fn ordering_is_by_name() {
        // Intern in reverse lexicographic order; Ord must still follow names.
        let z = EventType::named("__ORD_Z");
        let a = EventType::named("__ORD_A");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn constructors_fill_meta() {
        let msg = MessageBuilder::new(1).build();
        let out = Event::message_out(types::tc_out(), msg.clone()).to(Address::v4([10, 0, 0, 2]));
        assert_eq!(out.meta.dst, Some(Address::v4([10, 0, 0, 2])));
        assert!(out.message().is_some());

        let incoming = Event::message_in(types::tc_in(), Arc::new(msg), Address::v4([10, 0, 0, 3]));
        assert_eq!(incoming.meta.from, Some(Address::v4([10, 0, 0, 3])));

        let sig = Event::signal(types::nhood_change());
        assert_eq!(sig.payload, Payload::None);
        assert!(sig.message().is_none());
        assert!(sig.route_ctl().is_none());
    }
}
