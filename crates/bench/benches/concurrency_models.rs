//! E9 (§4.4): the throughput / resource trade-off of the three pluggable
//! concurrency models, measured on real OS threads.
//!
//! Expected ordering (the paper's design rationale):
//! single-threaded ≤ thread-per-ManetProtocol ≤ thread-per-message in
//! throughput, with resource use (threads) ordered the other way, and FIFO
//! order preserved by every model.

use manetkit::concurrency::{ConcurrencyModel, ThroughputLab};

fn main() {
    // Per-stage work must dominate shepherding overhead for the models to
    // differentiate (real protocol handlers parse, search tables and
    // recompute routes; ~50 us per stage models that).
    let lab = ThroughputLab {
        stages: 3,
        messages: 3_000,
        work_per_message: 20_000,
    };
    println!(
        "\n=== E9: concurrency models ({} messages, {} stages) ===\n",
        lab.messages, lab.stages
    );
    println!(
        "{:<28}{:>14}{:>10}{:>8}",
        "model", "msgs/sec", "threads", "FIFO"
    );
    println!("{:-<60}", "");

    let models = [
        ConcurrencyModel::SingleThreaded,
        ConcurrencyModel::ThreadPerProtocol,
        ConcurrencyModel::ThreadPerMessage { pool: 4 },
    ];
    let mut reports = Vec::new();
    for model in models {
        // Warm-up + best of three, to damp scheduler noise.
        let mut best: Option<manetkit::LabReport> = None;
        for _ in 0..3 {
            let r = lab.run(model);
            assert!(r.order_preserved, "{model:?} violated FIFO order");
            if best.as_ref().is_none_or(|b| r.throughput > b.throughput) {
                best = Some(r);
            }
        }
        let r = best.expect("three runs");
        println!(
            "{:<28}{:>14.0}{:>10}{:>8}",
            format!("{:?}", r.model),
            r.throughput,
            r.threads_used,
            if r.order_preserved { "yes" } else { "NO" }
        );
        reports.push(r);
    }

    // Resource ordering is structural; throughput ordering depends on the
    // host: the paper's single <= per-protocol <= per-message ranking needs
    // hardware parallelism, so it only emerges with multiple cores.
    assert!(reports[0].threads_used < reports[1].threads_used);
    assert!(reports[1].threads_used <= reports[2].threads_used);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nhost cores: {cores}");
    println!(
        "thread-per-protocol speedup over single-threaded: {:.2}x",
        reports[1].throughput / reports[0].throughput
    );
    println!(
        "thread-per-message speedup over single-threaded:  {:.2}x",
        reports[2].throughput / reports[0].throughput
    );
    if cores == 1 {
        println!(
            "(single-core host: the models can only tie; the measurement shows\n shepherding overhead stays within noise, and FIFO order still holds)"
        );
        // On one core the threaded models must at least stay within 25% of
        // sequential throughput (low shepherding overhead).
        for r in &reports[1..] {
            assert!(
                r.throughput > reports[0].throughput * 0.75,
                "{:?} overhead too high on single core",
                r.model
            );
        }
    } else {
        // With real parallelism the threaded models must beat sequential.
        assert!(
            reports[2].throughput > reports[0].throughput,
            "thread-per-message must win with {cores} cores"
        );
    }
    println!("\nFIFO order preserved by all models; resource ordering verified.\n");
}
