//! Table 2: comparative memory footprint of the deployments.
//!
//! The paper measured the process images of the C implementations, where
//! **code** dominates (Unik-olsrd 136.3 KB, Cactus 466 KB empty, OpenCom
//! runtime 22 KB): each monolithic daemon carries its own copy of all
//! infrastructure, while one MANETKit instance shares the generic
//! machinery between protocols. This bench reproduces the accounting in
//! two parts:
//!
//! 1. **code census** — source bytes each deployment links (a `.text`
//!    proxy), shared files counted once per deployment;
//! 2. **live-heap census** — a counting global allocator over running
//!    deployments on the paper's 5-node line with active traffic.
//!
//! Shape under test (§6.2): each framework-built protocol costs more than
//! its monolith alone, but a deployment running *both* protocols is far
//! cheaper than two separate framework deployments — the flexibility
//! becomes free as soon as more than one protocol is wanted. (The paper's
//! absolute "-8% vs the two monoliths" additionally relied on Unik-olsrd
//! and DYMOUM being large, decades-grown C programs; our deliberately
//! compact Rust monoliths make that single comparison stricter, which
//! EXPERIMENTS.md discusses.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use manetkit::prelude::*;
use manetkit_baseline::{Dymoum, Olsrd, OlsrdConfig};
use manetkit_bench::footprint;
use manetkit_bench::reuse::workspace_root;
use netsim::{NodeId, SimDuration, Topology, World};

struct Counting;

static LIVE: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_add(new_size, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn live() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Builds a 5-node line world with agents, runs 40 s of simulated time with
/// cross traffic (so reactive state actually populates), and returns it.
fn run_world(make: &dyn Fn(usize) -> Option<Box<dyn netsim::RoutingAgent>>) -> World {
    let mut world = World::builder()
        .topology(Topology::line(5))
        .seed(77)
        .build();
    let mut any_agent = false;
    for i in 0..5 {
        if let Some(agent) = make(i) {
            world.install_agent(NodeId(i), agent);
            any_agent = true;
        }
    }
    world.run_for(SimDuration::from_secs(10));
    if any_agent {
        // Identical workload for every deployment: end-to-end CBR pairs.
        for (src, dst) in [(0usize, 4usize), (4, 0), (1, 3)] {
            let dst_addr = world.addr(NodeId(dst));
            let start = world.now();
            netsim::traffic::install_cbr(
                &mut world,
                &netsim::traffic::CbrFlow {
                    src: NodeId(src),
                    dst: dst_addr,
                    start,
                    interval: SimDuration::from_millis(500),
                    count: 40,
                    payload: 64,
                },
            );
        }
    }
    world.run_for(SimDuration::from_secs(30));
    world
}

/// Live-heap delta of building and running a scenario, per node, in KiB.
fn measure_heap(make: &dyn Fn(usize) -> Option<Box<dyn netsim::RoutingAgent>>) -> f64 {
    let before = live();
    let world = run_world(make);
    let after = live();
    drop(world);
    (after.saturating_sub(before)) as f64 / 5.0 / 1024.0
}

fn kib(bytes: u64) -> f64 {
    bytes as f64 / 1024.0
}

fn main() {
    // ---- Part 1: code census ------------------------------------------------
    let code = footprint::measure(&workspace_root());
    println!("\n=== Table 2 (reproduction), part 1: code footprint ===\n");
    println!("Source KiB a node must carry for each deployment (shared files counted once per deployment).\n");
    println!("{:<44}{:>10}", "deployment", "KiB");
    println!("{:-<54}", "");
    println!(
        "{:<44}{:>10.1}",
        "Unik-olsrd analogue (monolithic)",
        kib(code.olsrd)
    );
    println!("{:<44}{:>10.1}", "MKit-OLSR", kib(code.mkit_olsr));
    println!(
        "{:<44}{:>10.1}",
        "DYMOUM analogue (monolithic)",
        kib(code.dymoum)
    );
    println!("{:<44}{:>10.1}", "MKit-DYMO", kib(code.mkit_dymo));
    println!(
        "{:<44}{:>10.1}",
        "two monolithic daemons (sum)",
        kib(code.monolith_sum())
    );
    println!(
        "{:<44}{:>10.1}",
        "two separate MKit deployments (sum)",
        kib(code.mkit_sum())
    );
    println!(
        "{:<44}{:>10.1}",
        "MKit OLSR+DYMO (one shared deployment)",
        kib(code.mkit_both)
    );
    let marginal = code.mkit_both - code.mkit_olsr;
    println!(
        "\nsharing saves {:.0}% vs two separate framework deployments",
        (1.0 - code.mkit_both as f64 / code.mkit_sum() as f64) * 100.0
    );
    println!(
        "marginal cost of adding DYMO to a running OLSR deployment: {:.1} KiB (standalone: {:.1} KiB)",
        kib(marginal),
        kib(code.mkit_dymo)
    );
    assert!(code.mkit_olsr > code.olsrd && code.mkit_dymo > code.dymoum);
    assert!(code.mkit_both < code.mkit_sum());
    assert!(marginal < code.mkit_dymo / 2);

    // ---- Part 2: live-heap census --------------------------------------------
    let empty = measure_heap(&|_| None);
    let olsrd = measure_heap(&|_| Some(Box::new(Olsrd::new(OlsrdConfig::default())))) - empty;
    let mkit_olsr = measure_heap(&|_| {
        let (node, _h) = manetkit_olsr::node(Default::default());
        Some(Box::new(node) as Box<dyn netsim::RoutingAgent>)
    }) - empty;
    let dymoum = measure_heap(&|_| Some(Box::new(Dymoum::new()))) - empty;
    let mkit_dymo = measure_heap(&|_| {
        let (node, _h) = manetkit_dymo::node(Default::default());
        Some(Box::new(node) as Box<dyn netsim::RoutingAgent>)
    }) - empty;
    let mkit_both = measure_heap(&|_| {
        // One framework instance hosting OLSR + DYMO, DYMO gated on the
        // shared MPR CF (the paper's leaner co-deployment).
        let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
        manetkit_olsr::deploy(node.deployment_mut(), Default::default()).unwrap();
        manetkit_dymo::deploy_core(node.deployment_mut(), Default::default()).unwrap();
        let handle = node.handle();
        for op in manetkit_dymo::variants::flooding::enable_ops(None) {
            handle.apply(op);
        }
        Some(Box::new(node) as Box<dyn netsim::RoutingAgent>)
    }) - empty;

    println!("\n=== Table 2 (reproduction), part 2: live heap ===\n");
    println!("KiB per node after 40 s with CBR traffic (emulator baseline subtracted).\n");
    println!("{:<44}{:>10}", "deployment", "KiB/node");
    println!("{:-<54}", "");
    println!("{:<44}{:>10.1}", "Unik-olsrd analogue (monolithic)", olsrd);
    println!("{:<44}{:>10.1}", "MKit-OLSR", mkit_olsr);
    println!("{:<44}{:>10.1}", "DYMOUM analogue (monolithic)", dymoum);
    println!("{:<44}{:>10.1}", "MKit-DYMO", mkit_dymo);
    println!(
        "{:<44}{:>10.1}",
        "two separate MKit deployments (sum)",
        mkit_olsr + mkit_dymo
    );
    println!(
        "{:<44}{:>10.1}",
        "MKit OLSR+DYMO (one shared deployment)", mkit_both
    );
    println!(
        "\nMKit-OLSR heap overhead over monolith: {:+.0}%",
        (mkit_olsr / olsrd.max(0.001) - 1.0) * 100.0
    );
    println!(
        "heap sharing saves {:.0}% vs two separate framework deployments",
        (1.0 - mkit_both / (mkit_olsr + mkit_dymo)) * 100.0
    );

    assert!(mkit_olsr > olsrd, "framework machinery must cost heap");
    assert!(mkit_dymo > dymoum, "framework machinery must cost heap");
    assert!(
        mkit_both < mkit_olsr + mkit_dymo,
        "sharing amortises the framework heap ({mkit_both:.1} vs {:.1})",
        mkit_olsr + mkit_dymo
    );
    println!("\nshape checks passed.\n");
}
