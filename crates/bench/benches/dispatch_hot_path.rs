//! Dispatch hot path: events/sec and allocations for 1→N fan-out.
//!
//! Compares the unified event bus (interned `u32` event types, dense
//! precomputed routing table, `Arc`-shared zero-clone fan-out) against a
//! faithful simulation of the seed representation (`EventType(Arc<str>)`,
//! `HashMap<EventType, Wiring>` string-hash routing that materialises a
//! fresh `Vec<UnitId>` per event, and a deep event clone per target).
//! The seed itself no longer builds in this workspace, so the legacy path
//! is reconstructed in-line from the seed sources (`git show bed3135`).
//!
//! Run with `cargo bench --bench dispatch_hot_path`; numbers are recorded
//! in `EXPERIMENTS.md`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, BatchSize, Criterion, Throughput};
use manetkit::event::{ContextValue, Event, EventType, Payload};
use manetkit::prelude::*;
use manetkit::registry::EventTuple;
use netsim::{NodeId, NodeOs};
use packetbb::Address;

/// Counts heap allocations so the two dispatch paths can be audited.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const EVENT_NAME: &str = "BENCH_EVT";
const EVENTS: usize = 1024;
const FANOUTS: [usize; 3] = [1, 4, 16];

/// A subscriber that just observes the event (the framework overhead is
/// what the benchmark isolates, not handler work).
struct SinkHandler {
    ty: EventType,
}

impl EventHandler for SinkHandler {
    fn name(&self) -> &str {
        "sink"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![self.ty]
    }
    fn handle(&mut self, event: &Event, _state: &mut StateSlot, _ctx: &mut ProtoCtx<'_>) {
        black_box(event.ty.id());
    }
}

fn build_deployment(fanout: usize) -> Deployment {
    let ty = EventType::named(EVENT_NAME);
    let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
    for i in 0..fanout {
        let cf = ManetProtocolCf::builder(format!("sink{i}"))
            .tuple(EventTuple::new().requires(ty))
            .state(StateSlot::new(()))
            .handler(Box::new(SinkHandler { ty }))
            .build();
        dep.add_protocol_offline(cf).unwrap();
    }
    dep
}

fn new_path_deployment(fanout: usize) -> (Deployment, NodeOs) {
    let mut dep = build_deployment(fanout);
    let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
    dep.start(&mut os);
    (dep, os)
}

fn new_path_events() -> Vec<Event> {
    let ty = EventType::named(EVENT_NAME);
    (0..EVENTS)
        .map(|i| Event {
            ty,
            payload: Payload::Context(ContextValue::Custom("seq", i as f64)),
            meta: Default::default(),
        })
        .collect()
}

// --- Legacy simulation: the seed's event representation -----------------

/// Seed `EventType`: a reference-counted string, hashed by content.
#[derive(Clone, PartialEq, Eq, Hash)]
struct LegacyType(Arc<str>);

/// Seed `Event`: cloned in full once per fan-out target.
#[derive(Clone)]
struct LegacyEvent {
    ty: LegacyType,
    payload: Payload,
}

fn legacy_routing(fanout: usize) -> HashMap<LegacyType, Vec<usize>> {
    let mut routing = HashMap::new();
    routing.insert(
        LegacyType(Arc::from(EVENT_NAME)),
        (0..fanout).collect::<Vec<_>>(),
    );
    routing
}

fn legacy_events() -> Vec<LegacyEvent> {
    let ty = LegacyType(Arc::from(EVENT_NAME));
    (0..EVENTS)
        .map(|i| LegacyEvent {
            ty: ty.clone(),
            payload: Payload::Context(ContextValue::Custom("seq", i as f64)),
        })
        .collect()
}

/// One seed-style dispatch round, mirroring the seed's code path
/// step for step: string-hash route lookup materialising a fresh target
/// `Vec` per event (`route()`), a full event clone pushed per target, then
/// a drain in which every delivery allocates the protocol-name `String`
/// (`deliver_one`) and re-asks the handler for its subscription `Vec`
/// (`ManetProtocolCf::deliver`), as the seed did.
fn legacy_dispatch(routing: &HashMap<LegacyType, Vec<usize>>, events: Vec<LegacyEvent>) {
    let mut queue: VecDeque<(usize, LegacyEvent)> = VecDeque::new();
    for event in events {
        let targets: Vec<usize> = routing.get(&event.ty).cloned().unwrap_or_default();
        for target in targets {
            queue.push_back((target, event.clone()));
        }
    }
    let stored_sub = LegacyType(Arc::from(EVENT_NAME));
    while let Some((target, event)) = queue.pop_front() {
        let name = format!("sink{target}");
        let subscriptions: Vec<LegacyType> = vec![stored_sub.clone()];
        if subscriptions.contains(&event.ty) {
            black_box((name.as_str(), &event.payload));
        }
    }
}

// --- Benchmarks ---------------------------------------------------------

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_hot_path");
    for fanout in FANOUTS {
        group.throughput(Throughput::Elements((EVENTS * fanout) as u64));
        let (mut dep, mut os) = new_path_deployment(fanout);
        group.bench_function(format!("new/fanout_{fanout}"), |b| {
            b.iter_batched(
                new_path_events,
                |events| dep.dispatch(&mut os, events, None),
                BatchSize::LargeInput,
            )
        });
        let routing = legacy_routing(fanout);
        group.bench_function(format!("legacy_sim/fanout_{fanout}"), |b| {
            b.iter_batched(
                legacy_events,
                |events| legacy_dispatch(&routing, events),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Flight-recorder cost on the dispatch hot path: the identical fan-out
/// round driven through a node OS with a recorder ring attached vs one
/// without. The `trace` feature is compiled in for both sides (the bench
/// graph enables it); the detached side pays only the `Option` branch in
/// `trace_bus_deliver`, the attached side additionally writes one ring
/// record per delivery. The fully-compiled-out cost is proven separately
/// by the `--no-default-features` build in CI.
fn bench_trace_overhead(c: &mut Criterion) {
    const FANOUT: usize = 16;
    let mut group = c.benchmark_group("dispatch_trace");
    group.throughput(Throughput::Elements((EVENTS * FANOUT) as u64));

    let (mut dep, mut os) = new_path_deployment(FANOUT);
    group.bench_function("recorder_detached", |b| {
        b.iter_batched(
            new_path_events,
            |events| dep.dispatch(&mut os, events, None),
            BatchSize::LargeInput,
        )
    });

    let mut world = netsim::World::builder().nodes(1).trace(1 << 15).build();
    let traced_os = world.os_mut(NodeId(0));
    let mut traced_dep = build_deployment(FANOUT);
    traced_dep.start(traced_os);
    group.bench_function("recorder_attached", |b| {
        b.iter_batched(
            new_path_events,
            |events| traced_dep.dispatch(traced_os, events, None),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_event_type(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_type");
    group.bench_function("named_interned", |b| {
        b.iter(|| EventType::named(black_box(EVENT_NAME)))
    });
    group.bench_function("named_arc_str_seed", |b| {
        b.iter(|| LegacyType(Arc::from(black_box(EVENT_NAME))))
    });
    group.finish();
}

/// Allocation audit: one dispatch round over `EVENTS` events at fan-out 8,
/// heap allocations counted by the global allocator.
fn alloc_audit() {
    const FANOUT: usize = 8;
    println!("\n=== allocation audit ({EVENTS} events, fan-out {FANOUT}) ===\n");

    let (mut dep, mut os) = new_path_deployment(FANOUT);
    // Warm both paths so one-time lazy work is excluded.
    dep.dispatch(&mut os, new_path_events(), None);
    let events = new_path_events();
    let before = ALLOCS.load(Ordering::Relaxed);
    dep.dispatch(&mut os, events, None);
    let new_allocs = ALLOCS.load(Ordering::Relaxed) - before;

    let routing = legacy_routing(FANOUT);
    legacy_dispatch(&routing, legacy_events());
    let events = legacy_events();
    let before = ALLOCS.load(Ordering::Relaxed);
    legacy_dispatch(&routing, events);
    let legacy_allocs = ALLOCS.load(Ordering::Relaxed) - before;

    println!("{:<24}{:>12}{:>16}", "path", "allocs", "allocs/event");
    println!("{:-<52}", "");
    println!(
        "{:<24}{:>12}{:>16.3}",
        "new (unified bus)",
        new_allocs,
        new_allocs as f64 / EVENTS as f64
    );
    println!(
        "{:<24}{:>12}{:>16.3}",
        "legacy (seed, sim)",
        legacy_allocs,
        legacy_allocs as f64 / EVENTS as f64
    );
    assert!(
        new_allocs < legacy_allocs,
        "unified bus must allocate less than the seed path \
         (new {new_allocs} vs legacy {legacy_allocs})"
    );
    println!();
}

/// Overhead-ratio audit for the flight recorder: many fan-out-8 dispatch
/// rounds timed with the recorder attached vs detached, the ratio recorded
/// in the BENCH output (target: < 5% attached; 0% compiled out, which the
/// `--no-default-features` CI build proves by construction).
fn trace_overhead_audit() {
    const FANOUT: usize = 8;
    const ROUNDS: usize = 300;
    println!(
        "\n=== flight-recorder overhead ({EVENTS} events, fan-out {FANOUT}, {ROUNDS} rounds) ===\n"
    );

    let (mut dep, mut os) = new_path_deployment(FANOUT);
    dep.dispatch(&mut os, new_path_events(), None); // warm
    let batches: Vec<Vec<Event>> = (0..ROUNDS).map(|_| new_path_events()).collect();
    let t0 = Instant::now();
    for events in batches {
        dep.dispatch(&mut os, events, None);
    }
    let detached = t0.elapsed();

    let mut world = netsim::World::builder().nodes(1).trace(1 << 15).build();
    let traced_os = world.os_mut(NodeId(0));
    let mut traced_dep = build_deployment(FANOUT);
    traced_dep.start(traced_os);
    traced_dep.dispatch(traced_os, new_path_events(), None); // warm
    let batches: Vec<Vec<Event>> = (0..ROUNDS).map(|_| new_path_events()).collect();
    let t1 = Instant::now();
    for events in batches {
        traced_dep.dispatch(traced_os, events, None);
    }
    let attached = t1.elapsed();

    let per_event = |d: Duration| d.as_nanos() as f64 / (ROUNDS * EVENTS * FANOUT) as f64;
    let overhead = per_event(attached) / per_event(detached) - 1.0;
    println!("{:<24}{:>16}{:>16}", "recorder", "total", "ns/delivery");
    println!("{:-<56}", "");
    println!(
        "{:<24}{:>16?}{:>16.2}",
        "detached",
        detached,
        per_event(detached)
    );
    println!(
        "{:<24}{:>16?}{:>16.2}",
        "attached",
        attached,
        per_event(attached)
    );
    println!(
        "\nattached overhead: {:+.2}%  (target < 5%; compiled out = 0% by construction)\n",
        overhead * 100.0
    );
}

/// Simulation-kernel throughput audit: the simkern hierarchical timing
/// wheel against a plain `BinaryHeap` event queue on the *hold model* —
/// the classic scheduler workload where a large population of pending
/// timers is held steady while the earliest is repeatedly popped and a
/// fresh one scheduled. This is exactly `netsim::World`'s steady state at
/// 10k nodes. Both queues process the identical deterministic delay
/// sequence; events/sec and the wheel/heap ratio land in
/// `BENCH_kernel.json` at the repo root.
fn kernel_throughput_audit() {
    use simkern::{EventQueue, HeapQueue, SimTime};

    const PENDING: usize = 1 << 17; // held population (≈ city10k's queue depth)
    const OPS: usize = 1 << 21; // pop+reschedule operations timed
    const WARMUP_OPS: usize = 1 << 16;

    /// Payload stub sized like `netsim::EventKind` (88 bytes by
    /// `size_of`), so the heap baseline sifts what the simulator's
    /// pre-refactor `BinaryHeap<Scheduled>` sifted, while the wheel parks
    /// payloads in its arena and moves only 20-byte `(time, seq, idx)`
    /// entries — the structural difference the refactor banks on.
    #[derive(Clone, Copy)]
    struct FatEvent {
        tag: u32,
        _body: [u64; 10],
    }

    impl FatEvent {
        fn new(tag: u32) -> Self {
            FatEvent {
                tag,
                _body: [0; 10],
            }
        }
    }

    const _: () = assert!(std::mem::size_of::<FatEvent>() == 88);

    // Deterministic delay stream (same for both queues), shaped like the
    // simulator's: almost all events are link-delay-scale (1 µs ..= ~16 ms
    // — frame arrivals, data-plane hops), with one in 64 a protocol-timer-
    // scale delay up to ~16.8 s (hello intervals, route expiry, mobility).
    fn delay(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = *state >> 33;
        if r.is_multiple_of(64) {
            1 + (r >> 6) % (1 << 24)
        } else {
            1 + (r >> 6) % (1 << 14)
        }
    }

    fn hold_model<Q>(
        mut schedule: impl FnMut(&mut Q, SimTime, FatEvent),
        mut pop: impl FnMut(&mut Q) -> Option<(SimTime, FatEvent)>,
        now: impl Fn(&Q) -> SimTime,
        queue: &mut Q,
    ) -> Duration {
        let mut lcg = 0x5EED_CAFE_u64;
        for i in 0..PENDING {
            let at = SimTime::from_micros(delay(&mut lcg));
            schedule(queue, at, FatEvent::new(i as u32));
        }
        for _ in 0..WARMUP_OPS {
            let (_, ev) = pop(queue).expect("held population never drains");
            let at = now(queue) + simkern::SimDuration::from_micros(delay(&mut lcg));
            schedule(queue, at, ev);
        }
        let t0 = Instant::now();
        for _ in 0..OPS {
            let (_, ev) = pop(queue).expect("held population never drains");
            black_box(ev.tag);
            let at = now(queue) + simkern::SimDuration::from_micros(delay(&mut lcg));
            schedule(queue, at, ev);
        }
        t0.elapsed()
    }

    println!("\n=== simkern throughput ({PENDING} held timers, {OPS} pop+reschedule ops) ===\n");

    // Interleaved trials, median per queue: robust against other tenants
    // of the machine drifting one side of the comparison.
    const TRIALS: usize = 3;
    let mut wheel_times = Vec::with_capacity(TRIALS);
    let mut heap_times = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let mut wheel: EventQueue<FatEvent> = EventQueue::new();
        wheel_times.push(hold_model(
            |q, at, e| q.schedule(at, e),
            |q| q.pop_due(SimTime::MAX),
            |q| q.now(),
            &mut wheel,
        ));
        let mut heap: HeapQueue<FatEvent> = HeapQueue::new();
        heap_times.push(hold_model(
            |q, at, e| q.schedule(at, e),
            |q| q.pop_due(SimTime::MAX),
            |q| q.now(),
            &mut heap,
        ));
    }
    wheel_times.sort_unstable();
    heap_times.sort_unstable();
    let (wheel_time, heap_time) = (wheel_times[TRIALS / 2], heap_times[TRIALS / 2]);

    let rate = |d: Duration| OPS as f64 / d.as_secs_f64();
    let (wheel_rate, heap_rate) = (rate(wheel_time), rate(heap_time));
    let speedup = wheel_rate / heap_rate;
    println!("{:<24}{:>16}{:>18}", "queue", "total", "events/sec");
    println!("{:-<58}", "");
    println!(
        "{:<24}{:>16?}{:>18.0}",
        "timing wheel", wheel_time, wheel_rate
    );
    println!("{:<24}{:>16?}{:>18.0}", "binary heap", heap_time, heap_rate);
    println!("\nwheel/heap: {speedup:.2}x (target ≥ 5x)\n");

    let json = format!(
        "{{\n  \"bench\": \"kernel_throughput\",\n  \"workload\": {{ \"model\": \"hold\", \
         \"held_timers\": {PENDING}, \"ops\": {OPS}, \"delay_span_us\": {}, \
         \"payload_bytes\": {} }},\n  \
         \"wheel_events_per_sec\": {wheel_rate:.0},\n  \
         \"heap_events_per_sec\": {heap_rate:.0},\n  \"speedup\": {speedup:.2}\n}}\n",
        1u64 << 24,
        std::mem::size_of::<FatEvent>()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(out, json).expect("write BENCH_kernel.json");
    println!("kernel bench written to {out}");

    assert!(
        speedup >= 5.0,
        "timing wheel must beat the heap baseline by ≥5x (got {speedup:.2}x)"
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = bench_dispatch, bench_trace_overhead, bench_event_type
);

fn main() {
    benches();
    alloc_audit();
    trace_overhead_audit();
    kernel_throughput_audit();
}
