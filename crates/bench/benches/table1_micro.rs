//! Table 1, row "Time to Process Message": the micro cost of processing
//! one protocol message from receipt to completion, framework vs
//! monolithic.
//!
//! OLSR processes a Topology Change message; DYMO processes an RREQ — the
//! same units the paper measured. Messages are pre-encoded with distinct
//! sequence numbers so duplicate suppression never short-circuits the work.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use manetkit::prelude::*;
use manetkit_baseline::{Dymoum, Olsrd, OlsrdConfig};
use netsim::{NodeId, NodeOs, RoutingAgent, SimDuration};
use packetbb::{Address, Packet};

fn local_os() -> NodeOs {
    NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]))
}

fn neighbour() -> Address {
    Address::v4([10, 0, 0, 2])
}

/// Pre-encodes `n` TC packets with distinct (ansn, seq).
fn tc_packets(n: u16) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let msg = manetkit_olsr::olsr::build_tc(
                neighbour(),
                i,
                i,
                SimDuration::from_secs(15),
                &[
                    Address::v4([10, 0, 0, 3]),
                    Address::v4([10, 0, 0, 4]),
                    Address::v4([10, 0, 0, 5]),
                ],
                255,
            );
            Packet::single(msg).encode_to_vec()
        })
        .collect()
}

/// Pre-encodes `n` RREQ packets with distinct originator seqs.
fn rreq_packets(n: u16) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let re = manetkit_dymo::RouteElement::rreq(
                manetkit_dymo::PathHop {
                    addr: neighbour(),
                    seq: i,
                },
                Address::v4([10, 0, 0, 9]),
                None,
                10,
            );
            Packet::single(re.to_message()).encode_to_vec()
        })
        .collect()
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/time_to_process_message");
    let tcs = tc_packets(4096);
    let rreqs = rreq_packets(4096);

    group.bench_function("olsr/manetkit", |b| {
        let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
        manetkit_olsr::deploy(&mut dep, Default::default()).unwrap();
        let mut os = local_os();
        dep.start(&mut os);
        let mut i = 0usize;
        b.iter_batched(
            || {
                let pkt = &tcs[i % tcs.len()];
                i += 1;
                pkt.clone()
            },
            |pkt| dep.on_frame(&mut os, neighbour(), &pkt),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("olsr/monolithic", |b| {
        let mut agent = Olsrd::new(OlsrdConfig::default());
        let mut os = local_os();
        agent.start(&mut os);
        let mut i = 0usize;
        b.iter_batched(
            || {
                let pkt = &tcs[i % tcs.len()];
                i += 1;
                pkt.clone()
            },
            |pkt| agent.on_frame(&mut os, neighbour(), &pkt),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("dymo/manetkit", |b| {
        let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
        manetkit_dymo::deploy(&mut dep, Default::default()).unwrap();
        let mut os = local_os();
        dep.start(&mut os);
        let mut i = 0usize;
        b.iter_batched(
            || {
                let pkt = &rreqs[i % rreqs.len()];
                i += 1;
                pkt.clone()
            },
            |pkt| dep.on_frame(&mut os, neighbour(), &pkt),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("dymo/monolithic", |b| {
        let mut agent = Dymoum::new();
        let mut os = local_os();
        agent.start(&mut os);
        let mut i = 0usize;
        b.iter_batched(
            || {
                let pkt = &rreqs[i % rreqs.len()];
                i += 1;
                pkt.clone()
            },
            |pkt| agent.on_frame(&mut os, neighbour(), &pkt),
            BatchSize::SmallInput,
        );
    });

    // Extension: the AODV composition (the paper's proof-of-concept
    // protocol) under the same micro-measurement.
    let aodv_rreqs: Vec<Vec<u8>> = (0..4096u16)
        .map(|i| {
            let rreq = manetkit_aodv::Rreq {
                orig: neighbour(),
                orig_seq: i,
                rreq_id: i,
                target: Address::v4([10, 0, 0, 9]),
                target_seq: None,
                hop_count: 1,
                hop_limit: 10,
            };
            Packet::single(rreq.to_message()).encode_to_vec()
        })
        .collect();
    group.bench_function("aodv/manetkit", |b| {
        let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
        manetkit_aodv::deploy(&mut dep, Default::default()).unwrap();
        let mut os = local_os();
        dep.start(&mut os);
        let mut i = 0usize;
        b.iter_batched(
            || {
                let pkt = &aodv_rreqs[i % aodv_rreqs.len()];
                i += 1;
                pkt.clone()
            },
            |pkt| dep.on_frame(&mut os, neighbour(), &pkt),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_table1
}
criterion_main!(benches);
