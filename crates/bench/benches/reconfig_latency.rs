//! E10 (§4.5): the cost of dynamic reconfiguration — tuple rewiring,
//! fine-grained component replacement and full protocol switching with
//! state carry-over, measured on a live deployment at a quiescent point.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use manetkit::prelude::*;
use manetkit_olsr::variants::fisheye;
use netsim::{NodeId, NodeOs};
use packetbb::Address;

fn started_olsr_deployment() -> (Deployment, NodeOs) {
    let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
    manetkit_olsr::deploy(&mut dep, Default::default()).unwrap();
    let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
    dep.start(&mut os);
    (dep, os)
}

fn bench_reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_latency");

    // Declarative rewiring: replace a tuple and re-derive the wiring.
    group.bench_function("tuple_rewire", |b| {
        let (mut dep, mut os) = started_olsr_deployment();
        let tuple = dep.protocol("olsr").unwrap().tuple().clone();
        b.iter(|| {
            dep.apply(
                ReconfigOp::UpdateTuple {
                    protocol: "olsr".into(),
                    tuple: tuple.clone(),
                },
                &mut os,
            )
            .unwrap();
        });
    });

    // Interposer insertion + removal (the fisheye cycle).
    group.bench_function("interposer_insert_remove", |b| {
        let (mut dep, mut os) = started_olsr_deployment();
        b.iter(|| {
            dep.apply(
                ReconfigOp::AddProtocol(fisheye::fisheye_cf(fisheye::FisheyeSchedule::default())),
                &mut os,
            )
            .unwrap();
            dep.apply(
                ReconfigOp::RemoveProtocol {
                    name: fisheye::FISHEYE_CF.into(),
                },
                &mut os,
            )
            .unwrap();
        });
    });

    // Fine-grained handler replacement inside a running CF.
    group.bench_function("handler_replace", |b| {
        let (mut dep, mut os) = started_olsr_deployment();
        b.iter(|| {
            dep.apply(
                ReconfigOp::Mutate {
                    protocol: "mpr".into(),
                    op: Box::new(|cf| {
                        cf.replace_handler(
                            "hello-handler",
                            Box::new(manetkit_olsr::mpr::MprHelloHandler {
                                validity: netsim::SimDuration::from_secs(6),
                                track_energy: false,
                            }),
                        )
                        .unwrap();
                    }),
                },
                &mut os,
            )
            .unwrap();
        });
    });

    // Full protocol switch with S-component carry-over (DYMO -> DYMO).
    group.bench_function("protocol_switch_with_state", |b| {
        b.iter_batched(
            || {
                let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
                manetkit_dymo::deploy(&mut dep, Default::default()).unwrap();
                let mut os = NodeOs::standalone(NodeId(0), Address::v4([10, 0, 0, 1]));
                dep.start(&mut os);
                (dep, os)
            },
            |(mut dep, mut os)| {
                dep.apply(
                    ReconfigOp::SwitchProtocol {
                        old: manetkit_dymo::DYMO_CF.into(),
                        new: manetkit_dymo::dymo_cf(Default::default()),
                        transfer_state: true,
                    },
                    &mut os,
                )
                .unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_reconfig
}
criterion_main!(benches);
