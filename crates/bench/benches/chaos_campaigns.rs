//! E12: chaos campaigns — partition, mid-line crash and bursty link
//! flapping injected into each MANETKit stack, with windowed delivery
//! ratios before, during and after the fault. A protocol passes when its
//! post-heal window delivers at least 0.9× the pre-fault window.

use manetkit_bench::chaos::{
    crash_campaign, flap_campaign, partition_campaign, protocol_factories, RecoveryReport,
};
use manetkit_bench::AgentFactory;

fn table(title: &str, run: impl Fn(&AgentFactory, u64) -> RecoveryReport) {
    println!("\n--- E12: {title} ---\n");
    println!(
        "{:<12}{:>8}{:>10}{:>8}{:>12}{:>14}",
        "protocol", "pre %", "during %", "post %", "recovered", "p95 post (ms)"
    );
    println!("{:-<64}", "");
    for (name, make) in protocol_factories() {
        let r = run(&make, 7);
        println!(
            "{:<12}{:>8.1}{:>10.1}{:>8.1}{:>12}{:>14}",
            name,
            100.0 * r.pre_ratio(),
            100.0 * r.during_ratio(),
            100.0 * r.post_ratio(),
            if r.recovered() { "yes" } else { "NO" },
            manetkit_bench::fmt_ms(r.post.p95_delivery_latency()),
        );
    }
}

fn main() {
    println!("E12: fault injection and recovery, 5-node line, CBR node 0 -> 4");
    println!("windows: pre 30-60 s, fault 60-90 s, gap 90-120 s, post 120-150 s");
    table("partition 012|34, healed after 30 s", partition_campaign);
    table(
        "mid-line relay crash, cold reboot after 30 s",
        crash_campaign,
    );
    table(
        "Gilbert-Elliott bursty flapping on every link (whole run)",
        flap_campaign,
    );
}
