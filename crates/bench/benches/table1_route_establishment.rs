//! Table 1, row "Route Establishment Delay": simulated time to establish a
//! route on the paper's 5-node linear testbed.
//!
//! * OLSR: a newly-arrived 5th node until it holds a fully-populated
//!   routing table (interval-dominated: ~seconds).
//! * DYMO: a route discovery from one end to the other (RTT-dominated:
//!   ~tens of milliseconds).
//!
//! Absolute values differ from the paper's testbed (real radios vs the
//! emulator's ~1 ms hops); the shape — OLSR orders of magnitude slower than
//! DYMO, MANETKit within a small factor of the monolith — is the claim
//! under reproduction.

use manetkit_bench::scenarios::{
    dymo_route_establishment, dymoum_factory, mean_delay, mkit_dymo_factory, mkit_olsr_factory,
    olsr_route_establishment, olsrd_factory,
};

fn main() {
    const RUNS: u64 = 5;
    println!("\n=== Table 1 (reproduction): Route Establishment Delay ===\n");
    println!("5-node linear topology, {RUNS} seeded runs each, simulated milliseconds.\n");

    let (olsrd, ok1) = mean_delay(RUNS, |s| olsr_route_establishment(&olsrd_factory(), s));
    let (mkit_olsr, ok2) = mean_delay(RUNS, |s| olsr_route_establishment(&mkit_olsr_factory(), s));
    let (dymoum, ok3) = mean_delay(RUNS, |s| dymo_route_establishment(&dymoum_factory(), s));
    let (mkit_dymo, ok4) = mean_delay(RUNS, |s| dymo_route_establishment(&mkit_dymo_factory(), s));
    assert!(
        ok1 && ok2 && ok3 && ok4,
        "every run must establish its route"
    );

    println!("{:<34}{:>14}", "implementation", "delay (ms)");
    println!("{:-<48}", "");
    println!(
        "{:<34}{:>14}",
        "Unik-olsrd (monolithic)",
        manetkit_bench::fmt_ms(olsrd)
    );
    println!(
        "{:<34}{:>14}",
        "MKit-OLSR",
        manetkit_bench::fmt_ms(mkit_olsr)
    );
    println!(
        "{:<34}{:>14}",
        "DYMOUM (monolithic)",
        manetkit_bench::fmt_ms(dymoum)
    );
    println!(
        "{:<34}{:>14}",
        "MKit-DYMO",
        manetkit_bench::fmt_ms(mkit_dymo)
    );

    let ratio_olsr = mkit_olsr.as_micros() as f64 / olsrd.as_micros().max(1) as f64;
    let ratio_dymo = mkit_dymo.as_micros() as f64 / dymoum.as_micros().max(1) as f64;
    println!("\nMKit-OLSR / Unik-olsrd ratio: {ratio_olsr:.2} (paper: 1.03)");
    println!("MKit-DYMO / DYMOUM ratio:     {ratio_dymo:.2} (paper: 0.74)");
    println!(
        "OLSR vs DYMO establishment:    {:.0}x (interval-bound vs RTT-bound)",
        mkit_olsr.as_micros() as f64 / mkit_dymo.as_micros().max(1) as f64
    );

    // Shape checks mirroring the paper's conclusions.
    assert!(
        ratio_olsr < 2.0 && ratio_olsr > 0.5,
        "framework OLSR within 2x of monolith ({ratio_olsr:.2})"
    );
    assert!(
        ratio_dymo < 2.0 && ratio_dymo > 0.5,
        "framework DYMO within 2x of monolith ({ratio_dymo:.2})"
    );
    assert!(
        mkit_olsr.as_micros() > 10 * mkit_dymo.as_micros(),
        "OLSR establishment is interval-dominated, DYMO RTT-dominated"
    );
    println!("\nshape checks passed.\n");
}
