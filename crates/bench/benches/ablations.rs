//! Variant ablations (§5.1/§5.2): each runtime-derived variant must improve
//! its target metric in its favourable regime.
//!
//! * E5 fisheye OLSR — TC relaying cost vs network diameter;
//! * E6 power-aware OLSR — relay battery preservation;
//! * E7 optimised flooding — RREQ relays vs network density;
//! * E8 multipath DYMO — route re-discoveries under link churn.

use manetkit::prelude::*;
use manetkit_dymo::variants::{flooding, multipath};
use manetkit_olsr::variants::{fisheye, power};
use netsim::{BatteryModel, LinkState, NodeId, SimDuration, Topology, World};

fn olsr_world(topo: Topology, seed: u64) -> (World, Vec<NodeHandle>) {
    let n = topo.len();
    let mut world = World::builder().topology(topo).seed(seed).build();
    let mut handles = Vec::new();
    for i in 0..n {
        let (node, h) = manetkit_olsr::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(h);
    }
    (world, handles)
}

fn dymo_world(topo: Topology, seed: u64) -> (World, Vec<NodeHandle>) {
    let n = topo.len();
    let mut world = World::builder().topology(topo).seed(seed).build();
    let mut handles = Vec::new();
    for i in 0..n {
        let (node, h) = manetkit_dymo::node(Default::default());
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(h);
    }
    (world, handles)
}

fn e5_fisheye() {
    println!("\n--- E5: fisheye OLSR — TC relay transmissions over 90 s ---\n");
    println!(
        "{:<12}{:>14}{:>14}{:>10}",
        "line size", "standard", "fisheye", "saving"
    );
    println!("{:-<50}", "");
    for n in [6usize, 10, 14] {
        let run = |enable: bool| {
            let (mut world, handles) = olsr_world(Topology::line(n), 5);
            if enable {
                for h in &handles {
                    h.apply(ReconfigOp::AddProtocol(fisheye::fisheye_cf(
                        fisheye::FisheyeSchedule::default(),
                    )));
                }
            }
            world.run_for(SimDuration::from_secs(90));
            world.stats().agent_counter("flood_relayed")
        };
        let std = run(false);
        let fe = run(true);
        println!(
            "{:<12}{:>14}{:>14}{:>9.0}%",
            n,
            std,
            fe,
            (1.0 - fe as f64 / std.max(1) as f64) * 100.0
        );
        assert!(fe < std, "fisheye must cut relaying on a {n}-node line");
    }
}

fn e6_power_aware() {
    println!("\n--- E6: power-aware OLSR — relay battery preservation ---\n");
    // Diamond: 0 - {1,2} - 3 with CBR 0 -> 3. Node 1 starts with a much
    // smaller battery; power-aware routing should route around it once its
    // level drops, keeping it alive longer.
    let build = |power_aware: bool| {
        let mut topo = Topology::empty(4);
        topo.set_link(NodeId(0), NodeId(1), LinkState::Up);
        topo.set_link(NodeId(0), NodeId(2), LinkState::Up);
        topo.set_link(NodeId(1), NodeId(3), LinkState::Up);
        topo.set_link(NodeId(2), NodeId(3), LinkState::Up);
        let mut world = World::builder()
            .topology(topo)
            .seed(6)
            .battery(BatteryModel {
                capacity: 3_000.0,
                idle_per_sec: 0.0,
                tx_per_byte: 0.02,
                rx_per_byte: 0.01,
            })
            .context_interval(SimDuration::from_secs(2))
            .build();
        let mut handles = Vec::new();
        for i in 0..4 {
            let (node, h) = manetkit_olsr::node(Default::default());
            world.install_agent(NodeId(i), Box::new(node));
            handles.push(h);
        }
        if power_aware {
            for h in &handles {
                for op in power::enable_ops(power::PowerAwareConfig::default()) {
                    h.apply(op);
                }
            }
        }
        // Converge, then 120 s of CBR.
        world.run_for(SimDuration::from_secs(25));
        let dst = world.addr(NodeId(3));
        let start = world.now();
        netsim::traffic::install_cbr(
            &mut world,
            &netsim::traffic::CbrFlow {
                src: NodeId(0),
                dst,
                start,
                interval: SimDuration::from_millis(250),
                count: 480,
                payload: 256,
            },
        );
        world.run_for(SimDuration::from_secs(130));
        let min_relay_battery = (1..3)
            .map(|i| world.os(NodeId(i)).battery_level())
            .fold(f64::INFINITY, f64::min);
        let s = world.stats();
        (min_relay_battery, s.delivery_ratio())
    };
    let (std_min, std_dr) = build(false);
    let (pa_min, pa_dr) = build(true);
    println!(
        "{:<22}{:>16}{:>16}",
        "variant", "min relay batt", "delivery"
    );
    println!("{:-<54}", "");
    println!("{:<22}{:>15.2}{:>15.2}", "standard OLSR", std_min, std_dr);
    println!("{:<22}{:>15.2}{:>15.2}", "power-aware OLSR", pa_min, pa_dr);
    assert!(
        pa_min >= std_min,
        "power-aware routing must not drain the worst relay harder ({pa_min:.2} vs {std_min:.2})"
    );
    assert!(pa_dr > 0.9, "power-aware variant keeps delivering");
}

fn e7_flooding() {
    println!("\n--- E7: optimised flooding — RREQ relays by density ---\n");
    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>10}",
        "radius", "degree", "blind", "mpr", "saving"
    );
    println!("{:-<54}", "");
    for radius in [0.32f64, 0.42, 0.55] {
        let topo = Topology::random_geometric(25, radius, 13);
        if !topo.is_connected() {
            continue;
        }
        let degree = topo.average_degree();
        let run = |optimised: bool| {
            let (mut world, handles) = dymo_world(topo.clone(), 13);
            if optimised {
                for h in &handles {
                    for op in flooding::enable_ops(Some(manetkit_olsr::mpr_cf(
                        manetkit_olsr::MprConfig::default(),
                    ))) {
                        h.apply(op);
                    }
                }
            }
            world.run_for(SimDuration::from_secs(10));
            world.reset_stats();
            for (src, dst) in [(0usize, 24usize), (5, 20), (10, 3), (17, 8)] {
                let dst_addr = world.addr(NodeId(dst));
                world.send_datagram(NodeId(src), dst_addr, b"d".to_vec());
                world.run_for(SimDuration::from_secs(5));
            }
            let s = world.stats();
            (s.agent_counter("rreq_relayed"), s.data_delivered)
        };
        let (blind, blind_ok) = run(false);
        let (mpr, mpr_ok) = run(true);
        println!(
            "{:<10.2}{:>10.1}{:>12}{:>12}{:>9.0}%",
            radius,
            degree,
            blind,
            mpr,
            (1.0 - mpr as f64 / blind.max(1) as f64) * 100.0
        );
        assert!(blind_ok >= 3 && mpr_ok >= 3, "both must deliver");
        assert!(
            mpr < blind,
            "MPR flooding must relay fewer RREQs (got {mpr} vs {blind})"
        );
    }
}

fn e8_multipath() {
    println!("\n--- E8: multipath DYMO — re-discoveries under link churn ---\n");
    // Diamond 0-{1,2}-3 with CBR and the 0-1 / 0-2 links flapping
    // alternately: single-path DYMO re-floods on every break, multipath
    // fails over.
    let run = |multi: bool| {
        // Three link-disjoint paths 0 -> 3: via 1, via 2, via 4.
        let mut topo = Topology::empty(5);
        for relay in [1usize, 2, 4] {
            topo.set_link(NodeId(0), NodeId(relay), LinkState::Up);
            topo.set_link(NodeId(relay), NodeId(3), LinkState::Up);
        }
        let (mut world, handles) = dymo_world(topo, 8);
        if multi {
            for h in &handles {
                for op in multipath::enable_ops() {
                    h.apply(op);
                }
            }
        }
        world.run_for(SimDuration::from_secs(3));
        let dst = world.addr(NodeId(3));
        // Steady CBR keeps routes warm; flap one of the two first links
        // every 2 s.
        let start = world.now();
        netsim::traffic::install_cbr(
            &mut world,
            &netsim::traffic::CbrFlow {
                src: NodeId(0),
                dst,
                start,
                interval: SimDuration::from_millis(200),
                count: 280,
                payload: 64,
            },
        );
        // Churn: every few seconds one of the two first-hop links drops for
        // a second and comes back; both links are up in between so fresh
        // discoveries can repopulate alternative paths.
        let victims = [1usize, 2, 4];
        for k in 0..9 {
            world.run_for(SimDuration::from_millis(2500));
            let victim = victims[k % victims.len()];
            world.set_link(NodeId(0), NodeId(victim), LinkState::Down);
            world.run_for(SimDuration::from_secs(1));
            world.set_link(NodeId(0), NodeId(victim), LinkState::Up);
        }
        world.run_for(SimDuration::from_secs(5));
        let s = world.stats();
        (
            s.agent_counter("route_discovery"),
            s.agent_counter("multipath_failover"),
            s.delivery_ratio(),
        )
    };
    let (std_disc, _, std_dr) = run(false);
    let (mp_disc, failovers, mp_dr) = run(true);
    println!(
        "{:<18}{:>14}{:>12}{:>12}",
        "variant", "discoveries", "failovers", "delivery"
    );
    println!("{:-<56}", "");
    println!(
        "{:<18}{:>14}{:>12}{:>11.2}",
        "standard DYMO", std_disc, 0, std_dr
    );
    println!(
        "{:<18}{:>14}{:>12}{:>11.2}",
        "multipath DYMO", mp_disc, failovers, mp_dr
    );
    assert!(
        mp_disc < std_disc,
        "multipath must re-flood less under churn ({mp_disc} vs {std_disc})"
    );
    assert!(failovers > 0, "failovers must actually happen");
}

fn main() {
    println!("\n=== Variant ablations (E5-E8) ===");
    e5_fisheye();
    e6_power_aware();
    e7_flooding();
    e8_multipath();
    println!("\nall ablation shape checks passed.\n");
}
