//! Table 3 and Figure 7: code reuse across the protocol implementations,
//! computed from the actual source tree of this workspace.

use manetkit_bench::reuse::{analyse, summarise, workspace_root};

fn main() {
    let rows = analyse(&workspace_root());

    println!("\n=== Table 3 (reproduction): Reused generic components ===\n");
    println!(
        "{:<44}{:>8}  {:^6}{:^6}{:^6}",
        "component", "LoC", "OLSR", "DYMO", "AODV"
    );
    println!("{:-<72}", "");
    for r in rows.iter().filter(|r| r.generic) {
        println!(
            "{:<44}{:>8}  {:^6}{:^6}{:^6}",
            r.name,
            r.loc,
            if r.used_by.olsr { "X" } else { "" },
            if r.used_by.dymo { "X" } else { "" },
            if r.used_by.aodv { "X" } else { "" }
        );
    }
    println!("\nProtocol-specific components:\n");
    for r in rows.iter().filter(|r| !r.generic) {
        println!(
            "{:<44}{:>8}  {:^6}{:^6}{:^6}",
            r.name,
            r.loc,
            if r.used_by.olsr { "X" } else { "" },
            if r.used_by.dymo { "X" } else { "" },
            if r.used_by.aodv { "X" } else { "" }
        );
    }

    println!("\n=== Figure 7 (reproduction): proportion of reusable code ===\n");
    println!(
        "{:<8}{:>14}{:>18}{:>12}",
        "protocol", "reused LoC", "protocol LoC", "reused %"
    );
    println!("{:-<52}", "");
    for proto in ["olsr", "dymo", "aodv"] {
        let s = summarise(&rows, proto);
        println!(
            "{:<8}{:>14}{:>18}{:>11.0}%",
            proto.to_uppercase(),
            s.generic_loc,
            s.specific_loc,
            s.reuse_fraction() * 100.0
        );
        assert!(
            s.reuse_fraction() > 0.5,
            "{proto}: majority of the codebase must be reused generic code (paper: 57%/66%)"
        );
        assert!(
            2 * s.generic_components >= 3 * s.specific_components,
            "{proto}: generic components must outnumber specific by >= 1.5x \
             ({} vs {}; this reproduction carries more variants than the paper did)",
            s.generic_components,
            s.specific_components
        );
    }
    println!("\nshape checks passed (paper: 57% OLSR, 66% DYMO; generic comfortably outnumber specific).\n");
}
