//! Code-footprint census for Table 2.
//!
//! The paper measured the memory images of C binaries, where *code*
//! dominates: each monolithic daemon statically carries its own copy of all
//! infrastructure (message parsing, tables, timers), while MANETKit
//! deployments share one copy of the generic machinery. This module
//! reproduces that accounting over the actual source tree: each deployment
//! is mapped to the source files its binary would link, and shared files
//! are counted once per *deployment* (but once per *binary* for the two
//! separate monoliths, as on a real node running both daemons).
//!
//! Source bytes stand in for `.text` bytes — a monotone proxy good enough
//! for the shape comparisons.

use std::path::Path;

fn files_bytes(root: &Path, files: &[&str]) -> u64 {
    files
        .iter()
        .map(|f| {
            std::fs::metadata(root.join(f))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .sum()
}

fn dir_bytes(root: &Path, dir: &str) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(root, path.strip_prefix(root).unwrap().to_str().unwrap());
        } else if path.extension().is_some_and(|e| e == "rs") {
            total += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
    }
    total
}

/// Code-size (bytes of Rust source) of every deployment Table 2 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeFootprint {
    /// Monolithic OLSR daemon (own code + its copy of the wire library).
    pub olsrd: u64,
    /// Monolithic DYMO daemon (own code + its copy of the wire library).
    pub dymoum: u64,
    /// MANETKit deployment running OLSR.
    pub mkit_olsr: u64,
    /// MANETKit deployment running DYMO.
    pub mkit_dymo: u64,
    /// One MANETKit deployment running both, sharing the MPR CF.
    pub mkit_both: u64,
}

impl CodeFootprint {
    /// Two separate monolithic daemons on one node (infrastructure
    /// duplicated per binary, as in the paper's last-but-one column).
    #[must_use]
    pub fn monolith_sum(&self) -> u64 {
        self.olsrd + self.dymoum
    }

    /// Two separate MANETKit deployments (no sharing) — the strawman the
    /// shared deployment is compared against.
    #[must_use]
    pub fn mkit_sum(&self) -> u64 {
        self.mkit_olsr + self.mkit_dymo
    }
}

/// Measures the census over the workspace sources.
#[must_use]
pub fn measure(root: &Path) -> CodeFootprint {
    // The wire-format library every implementation needs a copy of.
    let packetbb = dir_bytes(root, "crates/packetbb/src");
    // The generic framework machinery, linked once per deployment.
    let framework = dir_bytes(root, "crates/core/src") + dir_bytes(root, "crates/opencom/src");
    // Protocol compositions.
    let olsr_proto = dir_bytes(root, "crates/olsr/src/mpr")
        + dir_bytes(root, "crates/olsr/src/olsr")
        + files_bytes(root, &["crates/olsr/src/lib.rs"]);
    let dymo_proto = files_bytes(
        root,
        &[
            "crates/dymo/src/handlers.rs",
            "crates/dymo/src/messages.rs",
            "crates/dymo/src/state.rs",
            "crates/dymo/src/lib.rs",
        ],
    );
    // Monolithic daemons.
    let olsrd = files_bytes(root, &["crates/baseline/src/olsrd.rs"]) + packetbb;
    let dymoum = files_bytes(root, &["crates/baseline/src/dymoum.rs"]) + packetbb;

    CodeFootprint {
        olsrd,
        dymoum,
        mkit_olsr: framework + packetbb + olsr_proto,
        mkit_dymo: framework + packetbb + dymo_proto,
        mkit_both: framework + packetbb + olsr_proto + dymo_proto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::workspace_root;

    #[test]
    fn census_is_nonzero_and_ordered() {
        let f = measure(&workspace_root());
        assert!(f.olsrd > 0 && f.dymoum > 0);
        assert!(f.mkit_olsr > f.olsrd, "framework machinery costs code");
        assert!(f.mkit_dymo > f.dymoum, "framework machinery costs code");
        // The headline sharing effect: one deployment running both
        // protocols is much smaller than two separate framework
        // deployments...
        assert!(f.mkit_both < f.mkit_sum());
        // ...because adding the second protocol costs only its specific
        // components.
        let marginal = f.mkit_both - f.mkit_olsr;
        assert!(
            marginal < f.mkit_dymo / 2,
            "marginal cost of the second protocol is amortised: {marginal} vs {}",
            f.mkit_dymo
        );
    }
}
