//! Shared experiment harness for the MANETKit evaluation: scenario
//! builders, measurement routines and the code-reuse analysis — the
//! machinery behind the benches that regenerate the paper's Tables 1–3 and
//! Figure 7 plus the variant ablations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod footprint;
pub mod reuse;
pub mod scenarios;
pub mod txn_chaos;

/// The parallel campaign engine (re-exported `campaign` crate): declarative
/// [`campaign::CampaignSpec`] grids executed across OS threads with
/// mergeable, deterministic statistics.
pub use campaign;

pub use campaign::{CampaignSpec, Protocol, ScenarioSpec};
pub use chaos::{
    chaos_scenario, crash_campaign, flap_campaign, partition_campaign, protocol_factories,
    RecoveryReport,
};
pub use scenarios::{
    dymo_route_establishment, olsr_route_establishment, AgentFactory, RouteEstablishment,
};
pub use txn_chaos::{run_campaign as txn_chaos_campaign, TxnChaosReport};

/// Formats a simulated duration as milliseconds with three decimals.
#[must_use]
pub fn fmt_ms(d: netsim::SimDuration) -> String {
    format!("{:.3}", d.as_micros() as f64 / 1000.0)
}
