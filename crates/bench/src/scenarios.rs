//! Reusable evaluation scenarios: the paper's 5-node linear testbed and the
//! route-establishment measurements of Table 1.

use campaign::Protocol;
use netsim::{LinkState, NodeId, SimDuration, SimTime, Topology, World};

pub use campaign::AgentFactory;

/// Result of a route-establishment measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEstablishment {
    /// Simulated time from trigger to established route.
    pub delay: netsim::SimDuration,
    /// Whether the route actually appeared within the deadline.
    pub established: bool,
}

/// Factory for MANETKit OLSR nodes.
#[must_use]
pub fn mkit_olsr_factory() -> AgentFactory {
    Protocol::MkitOlsr.factory()
}

/// Factory for monolithic Unik-olsrd-analogue nodes.
#[must_use]
pub fn olsrd_factory() -> AgentFactory {
    Protocol::Olsrd.factory()
}

/// Factory for MANETKit DYMO nodes.
#[must_use]
pub fn mkit_dymo_factory() -> AgentFactory {
    Protocol::MkitDymo.factory()
}

/// Factory for monolithic DYMOUM-analogue nodes.
#[must_use]
pub fn dymoum_factory() -> AgentFactory {
    Protocol::Dymoum.factory()
}

/// Factory for MANETKit AODV nodes.
#[must_use]
pub fn mkit_aodv_factory() -> AgentFactory {
    Protocol::MkitAodv.factory()
}

fn step_until(world: &mut World, deadline: SimTime, mut done: impl FnMut(&World) -> bool) -> bool {
    while world.now() < deadline {
        if done(world) {
            return true;
        }
        world.run_for(SimDuration::from_millis(5));
    }
    done(world)
}

/// OLSR route establishment on the paper's 5-node line: nodes 0–3 run and
/// converge; node 4 then comes into range of node 3, and we measure the
/// simulated time until node 4 holds a fully-populated routing table
/// (routes to all four peers).
#[must_use]
pub fn olsr_route_establishment(make: &AgentFactory, seed: u64) -> RouteEstablishment {
    let mut topo = Topology::line(5);
    topo.set_link(NodeId(3), NodeId(4), LinkState::Down);
    let mut world = World::builder().topology(topo).seed(seed).build();
    for i in 0..5 {
        world.install_agent(NodeId(i), make());
    }
    // Converge the existing 4-node network.
    world.run_for(SimDuration::from_secs(60));
    // Node 4 arrives.
    world.set_link(NodeId(3), NodeId(4), LinkState::Up);
    let t0 = world.now();
    let peer_addrs: Vec<_> = (0..4).map(|i| world.addr(NodeId(i))).collect();
    let deadline = t0 + SimDuration::from_secs(60);
    let established = step_until(&mut world, deadline, |w| {
        peer_addrs
            .iter()
            .all(|a| w.os(NodeId(4)).route_table().lookup(*a).is_some())
    });
    RouteEstablishment {
        delay: world.now() - t0,
        established,
    }
}

/// DYMO route establishment on the 5-node line: after neighbourhood
/// warm-up, node 0 sends to node 4 and we measure the simulated time until
/// node 0 holds a route to node 4 (the route discovery round trip).
#[must_use]
pub fn dymo_route_establishment(make: &AgentFactory, seed: u64) -> RouteEstablishment {
    let mut world = World::builder()
        .topology(Topology::line(5))
        .seed(seed)
        .build();
    for i in 0..5 {
        world.install_agent(NodeId(i), make());
    }
    world.run_for(SimDuration::from_secs(5));
    let far = world.addr(NodeId(4));
    let t0 = world.now();
    world.send_datagram(NodeId(0), far, b"probe".to_vec());
    let deadline = t0 + SimDuration::from_secs(30);
    let established = step_until(&mut world, deadline, |w| {
        w.os(NodeId(0)).route_table().lookup(far).is_some()
    });
    RouteEstablishment {
        delay: world.now() - t0,
        established,
    }
}

/// Mean of several seeded runs of a measurement.
#[must_use]
pub fn mean_delay(
    runs: u64,
    measure: impl Fn(u64) -> RouteEstablishment,
) -> (netsim::SimDuration, bool) {
    let mut total = 0u64;
    let mut all_ok = true;
    for seed in 0..runs {
        let r = measure(seed + 1);
        total += r.delay.as_micros();
        all_ok &= r.established;
    }
    (
        netsim::SimDuration::from_micros(total / runs.max(1)),
        all_ok,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olsr_establishment_measures_both_implementations() {
        let mkit = olsr_route_establishment(&mkit_olsr_factory(), 1);
        assert!(mkit.established, "MKit-OLSR must converge: {mkit:?}");
        let mono = olsr_route_establishment(&olsrd_factory(), 1);
        assert!(mono.established, "olsrd must converge: {mono:?}");
        // Both are interval-dominated: hundreds of milliseconds to seconds.
        for r in [mkit, mono] {
            assert!(r.delay >= SimDuration::from_millis(100), "{r:?}");
            assert!(r.delay <= SimDuration::from_secs(30), "{r:?}");
        }
    }

    #[test]
    fn dymo_establishment_is_rtt_dominated() {
        let mkit = dymo_route_establishment(&mkit_dymo_factory(), 1);
        assert!(mkit.established, "{mkit:?}");
        let mono = dymo_route_establishment(&dymoum_factory(), 1);
        assert!(mono.established, "{mono:?}");
        // Discovery is a flood round trip: tens of ms, far below OLSR's
        // interval-bound convergence.
        for r in [mkit, mono] {
            assert!(r.delay <= SimDuration::from_millis(500), "{r:?}");
        }
    }
}
