//! Chaos-engineering campaigns (E12): inject partitions, node crashes and
//! bursty link flapping into a converged fleet and measure time-windowed
//! delivery before, during and after the fault — the resilience half of
//! the dynamic-deployment story.
//!
//! Every campaign runs the paper's 5-node line with constant-bit-rate
//! traffic from node 0 to node 4 — declared once as a [`ScenarioSpec`] —
//! and slices the run into windows with a [`netsim::StatsWindow`] cursor
//! from [`netsim::World::stats_window`]:
//!
//! ```text
//! 0s ── warm-up ── 30s ── pre ── 60s ── fault ── 90s ── gap ── 120s ── post ── 150s
//! ```
//!
//! The `pre` window is the healthy baseline, the `during` window shows the
//! fault biting, the re-convergence `gap` is discarded, and the `post`
//! window is the recovery measurement. A protocol *recovers* when its
//! post-heal windowed delivery ratio is at least 0.9× the pre-fault
//! window's — the E12 acceptance criterion.

use std::fmt;

use campaign::{Protocol, ScenarioSpec, TopologySpec, TrafficSpec};
use netsim::fault::FaultPlan;
use netsim::{GilbertElliott, LinkModel, NodeId, SimDuration, SimTime, WorldStats};

use crate::scenarios::AgentFactory;

/// Node count of the campaign topology (the paper's 5-node line).
pub const NODES: usize = 5;

/// Seconds of warm-up before the first measured window.
pub const WARMUP_S: u64 = 30;
/// Second at which the fault is injected (end of the `pre` window).
pub const FAULT_S: u64 = 60;
/// Second at which the fault heals (end of the `during` window).
pub const HEAL_S: u64 = 90;
/// Start of the `post` window, after the re-convergence gap.
pub const POST_START_S: u64 = 120;
/// End of the `post` window and of CBR traffic.
pub const POST_END_S: u64 = 150;

fn secs(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(n)
}

/// Windowed delivery measurements around one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Healthy pre-fault window.
    pub pre: WorldStats,
    /// Window while the fault is active.
    pub during: WorldStats,
    /// Post-heal window, taken after the re-convergence gap.
    pub post: WorldStats,
    /// Cumulative statistics for the whole run.
    pub total: WorldStats,
}

impl RecoveryReport {
    /// Delivery ratio of the pre-fault window.
    #[must_use]
    pub fn pre_ratio(&self) -> f64 {
        self.pre.delivery_ratio()
    }

    /// Delivery ratio while the fault was active.
    #[must_use]
    pub fn during_ratio(&self) -> f64 {
        self.during.delivery_ratio()
    }

    /// Delivery ratio of the post-heal window.
    #[must_use]
    pub fn post_ratio(&self) -> f64 {
        self.post.delivery_ratio()
    }

    /// The E12 acceptance criterion: traffic flowed in both measured
    /// windows and post-heal delivery is at least 0.9× the pre-fault
    /// baseline.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.pre.data_sent > 0
            && self.post.data_sent > 0
            && self.post_ratio() >= 0.9 * self.pre_ratio()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pre {:5.1}% | during {:5.1}% | post {:5.1}% ({})",
            100.0 * self.pre_ratio(),
            100.0 * self.during_ratio(),
            100.0 * self.post_ratio(),
            if self.recovered() {
                "recovered"
            } else {
                "NOT recovered"
            }
        )
    }
}

/// The chaos scenario every campaign shares: the paper's 5-node line with
/// CBR traffic node 0 → node 4 at 4 pkt/s across the measured phases (the
/// first packet lands half an interval past warm-up, so every send falls
/// unambiguously inside one window).
#[must_use]
pub fn chaos_scenario(link: LinkModel) -> ScenarioSpec {
    ScenarioSpec::builder()
        .topology(TopologySpec::Line(NODES))
        .link_model(link)
        .traffic(TrafficSpec::cbr(
            NodeId(0),
            NodeId(NODES - 1),
            SimDuration::from_millis(250),
        ))
        .warmup(SimDuration::from_secs(WARMUP_S))
        .duration(SimDuration::from_secs(POST_END_S - WARMUP_S))
        .build()
}

/// Runs one campaign: the [`chaos_scenario`] under the given fault plan
/// and link model, with windowed measurement per the module timeline.
#[must_use]
pub fn run_campaign(
    make: &AgentFactory,
    seed: u64,
    plan: FaultPlan,
    link: LinkModel,
) -> RecoveryReport {
    let scenario = chaos_scenario(link);
    let mut world = scenario.world_builder().seed(seed).fault_plan(plan).build();
    for i in 0..NODES {
        world.install_agent(NodeId(i), make());
    }
    scenario.install_traffic(&mut world);

    let mut window = world.stats_window();
    world.run_until(secs(WARMUP_S));
    window.skip(&world); // discard the warm-up window
    world.run_until(secs(FAULT_S));
    let pre = window.advance(&world);
    world.run_until(secs(HEAL_S));
    let during = window.advance(&world);
    world.run_until(secs(POST_START_S));
    window.skip(&world); // discard the re-convergence gap
    world.run_until(secs(POST_END_S) + SimDuration::from_secs(1));
    let post = window.advance(&world);
    RecoveryReport {
        pre,
        during,
        post,
        total: world.stats(),
    }
}

/// Partition campaign: the line is cut between nodes 2 and 3 for the
/// fault window, severing the CBR flow, then healed.
#[must_use]
pub fn partition_campaign(make: &AgentFactory, seed: u64) -> RecoveryReport {
    let plan = FaultPlan::builder(seed)
        .partition(
            secs(FAULT_S),
            secs(HEAL_S),
            "chaos-cut",
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4)],
            ],
        )
        .build();
    run_campaign(make, seed, plan, LinkModel::default())
}

/// Crash campaign: the mid-line relay (node 2) crashes for the fault
/// window — route table flushed, buffered packets dropped — then reboots
/// cold and must rejoin the network.
#[must_use]
pub fn crash_campaign(make: &AgentFactory, seed: u64) -> RecoveryReport {
    let plan = FaultPlan::builder(seed)
        .crash_for(
            secs(FAULT_S),
            NodeId(NODES / 2),
            SimDuration::from_secs(HEAL_S - FAULT_S),
        )
        .build();
    run_campaign(make, seed, plan, LinkModel::default())
}

/// Flap campaign: every link runs a Gilbert–Elliott bursty-loss chain for
/// the whole run. The "fault" is stationary, so recovery here means the
/// protocol holds its delivery ratio window over window despite the
/// flapping (short near-total-loss bursts, ≈4% stationary loss).
#[must_use]
pub fn flap_campaign(make: &AgentFactory, seed: u64) -> RecoveryReport {
    let link = LinkModel {
        burst: Some(GilbertElliott {
            p_bad: 0.02,
            p_good: 0.5,
            loss_good: 0.0,
            loss_bad: 0.9,
        }),
        ..LinkModel::default()
    };
    run_campaign(make, seed, FaultPlan::builder(seed).build(), link)
}

/// The MANETKit protocol stacks every campaign is run against.
#[must_use]
pub fn protocol_factories() -> Vec<(&'static str, AgentFactory)> {
    Protocol::MANETKIT
        .into_iter()
        .map(|p| (p.name(), p.factory()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_campaign_recovers_for_every_protocol() {
        for (name, make) in protocol_factories() {
            let r = partition_campaign(&make, 7);
            assert_eq!(r.total.partitions_started, 1, "{name}");
            assert_eq!(r.total.partitions_healed, 1, "{name}");
            assert!(
                r.during_ratio() < 0.5,
                "{name}: partition did not bite: {r}"
            );
            assert!(r.recovered(), "{name} failed to recover: {r}");
        }
    }

    #[test]
    fn crash_campaign_recovers_for_every_protocol() {
        for (name, make) in protocol_factories() {
            let r = crash_campaign(&make, 7);
            assert_eq!(r.total.node_crashes, 1, "{name}");
            assert_eq!(r.total.node_reboots, 1, "{name}");
            assert!(r.during_ratio() < 0.5, "{name}: crash did not bite: {r}");
            assert!(r.recovered(), "{name} failed to recover: {r}");
        }
    }

    #[test]
    fn flap_campaign_sustains_delivery() {
        for (name, make) in protocol_factories() {
            let r = flap_campaign(&make, 7);
            assert!(r.total.link_flaps > 0, "{name}: no bursts fired");
            assert!(r.recovered(), "{name} degraded under flapping: {r}");
        }
    }

    #[test]
    fn same_seed_campaign_replays_identically() {
        let make = Protocol::MkitOlsr.factory();
        let a = partition_campaign(&make, 11);
        let b = partition_campaign(&make, 11);
        assert_eq!(a.total, b.total, "whole-run stats must be byte-identical");
        assert_eq!((a.pre, a.during, a.post), (b.pre, b.during, b.post));
    }
}
