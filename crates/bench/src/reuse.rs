//! Code-reuse analysis over this workspace (Table 3 and Fig. 7).
//!
//! The paper quantifies MANETKit's reuse claim by listing the generic
//! components each protocol composition uses, with their sizes, against the
//! protocol-specific components. This module reproduces that analysis from
//! the *actual* source tree: each row maps a component to the files that
//! implement it, lines are counted on disk, and per-protocol reuse
//! percentages are derived.

use std::path::{Path, PathBuf};

/// Which protocol compositions use a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsedBy {
    /// Part of the OLSR composition (MPR + OLSR CFs).
    pub olsr: bool,
    /// Part of the DYMO composition (ND + DYMO CFs).
    pub dymo: bool,
    /// Part of the AODV composition (ND + AODV CFs).
    pub aodv: bool,
}

/// One analysis row: a component, its implementing files, its users.
#[derive(Debug, Clone)]
pub struct ComponentRow {
    /// Component name as reported in the table.
    pub name: &'static str,
    /// Whether the component is generic (reusable) or protocol-specific.
    pub generic: bool,
    /// Files implementing it, relative to the workspace root.
    pub files: Vec<&'static str>,
    /// Which protocols use it.
    pub used_by: UsedBy,
    /// Counted lines of code (filled by [`analyse`]).
    pub loc: usize,
}

fn row(
    name: &'static str,
    generic: bool,
    files: &[&'static str],
    olsr: bool,
    dymo: bool,
) -> ComponentRow {
    // AODV is reactive like DYMO: it shares exactly the same generic
    // component set (System CF, ND CF, netlink, framework machinery).
    let aodv = generic && dymo;
    ComponentRow {
        name,
        generic,
        files: files.to_vec(),
        used_by: UsedBy { olsr, dymo, aodv },
        loc: 0,
    }
}

fn aodv_row(name: &'static str, files: &[&'static str]) -> ComponentRow {
    ComponentRow {
        name,
        generic: false,
        files: files.to_vec(),
        used_by: UsedBy {
            olsr: false,
            dymo: false,
            aodv: true,
        },
        loc: 0,
    }
}

/// The component inventory of this reproduction, mirroring Table 3's rows
/// (adapted to this codebase's layout).
#[must_use]
pub fn inventory() -> Vec<ComponentRow> {
    vec![
        // ---- generic, reusable components ---------------------------------
        row(
            "System CF (driver/netlink/power)",
            true,
            &["crates/core/src/system.rs"],
            true,
            true,
        ),
        row(
            "Framework Manager + event wiring",
            true,
            &["crates/core/src/manager.rs", "crates/core/src/registry.rs"],
            true,
            true,
        ),
        row(
            "Event ontology",
            true,
            &["crates/core/src/event.rs"],
            true,
            true,
        ),
        row(
            "ManetControl CF (CFS pattern)",
            true,
            &["crates/core/src/protocol.rs"],
            true,
            true,
        ),
        row(
            "Deployment / reconfiguration",
            true,
            &["crates/core/src/node.rs"],
            true,
            true,
        ),
        row(
            "Concurrency models",
            true,
            &["crates/core/src/concurrency.rs"],
            true,
            true,
        ),
        row(
            "Neighbour Detection CF",
            true,
            &["crates/core/src/neighbour.rs"],
            false,
            true,
        ),
        row(
            "PacketGenerator/PacketParser (PacketBB)",
            true,
            &[
                "crates/packetbb/src/packet.rs",
                "crates/packetbb/src/message.rs",
                "crates/packetbb/src/addrblock.rs",
                "crates/packetbb/src/tlv.rs",
                "crates/packetbb/src/wire.rs",
                "crates/packetbb/src/address.rs",
                "crates/packetbb/src/time.rs",
                "crates/packetbb/src/registry.rs",
            ],
            true,
            true,
        ),
        row(
            "Kernel RouteTable",
            true,
            &["crates/netsim/src/route.rs"],
            true,
            true,
        ),
        row(
            "OpenCom component runtime",
            true,
            &[
                "crates/opencom/src/kernel.rs",
                "crates/opencom/src/cf.rs",
                "crates/opencom/src/component.rs",
                "crates/opencom/src/interface.rs",
                "crates/opencom/src/arch.rs",
                "crates/opencom/src/quiescence.rs",
            ],
            true,
            true,
        ),
        row(
            "MPR CF (shared flooding service)",
            true,
            &[
                "crates/olsr/src/mpr/state.rs",
                "crates/olsr/src/mpr/components.rs",
                "crates/olsr/src/mpr/mod.rs",
            ],
            true,
            true,
        ), // shared by DYMO's optimised-flooding variant
        // ---- protocol-specific components ----------------------------------
        row(
            "OLSR: topology set + route calc",
            false,
            &["crates/olsr/src/olsr/state.rs"],
            true,
            false,
        ),
        row(
            "OLSR: TC generation/handling",
            false,
            &[
                "crates/olsr/src/olsr/components.rs",
                "crates/olsr/src/olsr/mod.rs",
            ],
            true,
            false,
        ),
        row(
            "OLSR: fisheye variant",
            false,
            &["crates/olsr/src/variants/fisheye.rs"],
            true,
            false,
        ),
        row(
            "OLSR: power-aware variant",
            false,
            &["crates/olsr/src/variants/power.rs"],
            true,
            false,
        ),
        row(
            "DYMO: route table + pending RREQ",
            false,
            &["crates/dymo/src/state.rs"],
            false,
            true,
        ),
        row(
            "DYMO: RE/RERR/UERR handlers",
            false,
            &["crates/dymo/src/handlers.rs"],
            false,
            true,
        ),
        row(
            "DYMO: message formats",
            false,
            &["crates/dymo/src/messages.rs"],
            false,
            true,
        ),
        row(
            "DYMO: multipath variant",
            false,
            &["crates/dymo/src/variants/multipath.rs"],
            false,
            true,
        ),
        row(
            "DYMO: optimised-flooding variant",
            false,
            &["crates/dymo/src/variants/flooding.rs"],
            false,
            true,
        ),
        row(
            "DYMO: gossip-flooding variant",
            false,
            &["crates/dymo/src/variants/gossip.rs"],
            false,
            true,
        ),
        aodv_row(
            "AODV: route table + precursors",
            &["crates/aodv/src/state.rs"],
        ),
        aodv_row(
            "AODV: RREQ/RREP/RERR handlers",
            &["crates/aodv/src/handlers.rs"],
        ),
        aodv_row("AODV: message formats", &["crates/aodv/src/messages.rs"]),
    ]
}

/// Counts non-empty lines of a file (test modules included, as the paper
/// counted whole source files).
fn count_loc(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

/// Locates the workspace root from the compile-time manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

/// Fills in LoC counts from the source tree.
#[must_use]
pub fn analyse(root: &Path) -> Vec<ComponentRow> {
    let mut rows = inventory();
    for r in &mut rows {
        r.loc = r.files.iter().map(|f| count_loc(&root.join(f))).sum();
    }
    rows
}

/// Summary statistics derived from the analysis (Fig. 7's series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseSummary {
    /// Generic components used by the protocol.
    pub generic_components: usize,
    /// Protocol-specific components.
    pub specific_components: usize,
    /// LoC contributed by generic components.
    pub generic_loc: usize,
    /// LoC contributed by protocol-specific components.
    pub specific_loc: usize,
}

impl ReuseSummary {
    /// The proportion of the protocol's codebase that is reused generic
    /// code.
    #[must_use]
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.generic_loc + self.specific_loc;
        if total == 0 {
            return 0.0;
        }
        self.generic_loc as f64 / total as f64
    }
}

/// Per-protocol reuse summary over analysed rows.
#[must_use]
pub fn summarise(rows: &[ComponentRow], protocol: &str) -> ReuseSummary {
    let uses = |r: &ComponentRow| match protocol {
        "olsr" => r.used_by.olsr,
        "dymo" => r.used_by.dymo,
        "aodv" => r.used_by.aodv,
        _ => false,
    };
    let mut s = ReuseSummary {
        generic_components: 0,
        specific_components: 0,
        generic_loc: 0,
        specific_loc: 0,
    };
    for r in rows.iter().filter(|r| uses(r)) {
        if r.generic {
            s.generic_components += 1;
            s.generic_loc += r.loc;
        } else {
            s.specific_components += 1;
            s.specific_loc += r.loc;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_inventory_files_exist_and_are_counted() {
        let root = workspace_root();
        let rows = analyse(&root);
        for r in &rows {
            assert!(r.loc > 0, "component {:?} counted zero lines", r.name);
            for f in &r.files {
                assert!(root.join(f).exists(), "missing file {f}");
            }
        }
    }

    #[test]
    fn generic_components_outnumber_specific_ones() {
        // The paper's headline: generic components outnumber specific by
        // a factor of at least 2 for both protocols.
        let rows = analyse(&workspace_root());
        for proto in ["olsr", "dymo", "aodv"] {
            let s = summarise(&rows, proto);
            assert!(
                2 * s.generic_components >= 3 * s.specific_components,
                "{proto}: {s:?}"
            );
        }
    }

    #[test]
    fn reuse_fraction_is_majority() {
        // Paper: 57% (OLSR) and 66% (DYMO) of each protocol's codebase is
        // reused generic code. Require a majority here.
        let rows = analyse(&workspace_root());
        for proto in ["olsr", "dymo", "aodv"] {
            let s = summarise(&rows, proto);
            assert!(
                s.reuse_fraction() > 0.5,
                "{proto}: reuse {:.2} with {s:?}",
                s.reuse_fraction()
            );
        }
    }
}
