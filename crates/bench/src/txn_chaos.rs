//! Transactional reconfiguration under chaos (E15): drive repeated
//! fleet-wide two-phase protocol switches (OLSR ⇄ DYMO) into the paper's
//! 5-node line while scheduled crashes hit the fleet, and measure the
//! transaction outcome mix — the abort-rate-under-chaos experiment.
//!
//! Every round attempts one atomic switch through
//! [`FleetCoordinator::execute`] with [`Strategy::TwoPhase`]. Chaos
//! produces all three distributed outcomes:
//!
//! * a node that is **down at round start** is skipped and reconciled
//!   best-effort afterwards (its queued ops apply at reboot);
//! * a node that **crashes before preparing** makes the prepare deadline
//!   pass, aborting the round everywhere — every prepared node rolls back
//!   and the fleet keeps its old composition;
//! * a node that **crashes after preparing** dooms its own transaction
//!   (rolled back at reboot) while the rest of the fleet commits; the
//!   coordinator reports it unresolved and the campaign repairs it
//!   best-effort.
//!
//! The acceptance criterion is *consistency*, not a particular mix: after
//! the final settle window no node may be wedged — every node runs exactly
//! the composition the verdict history implies, and the per-node
//! transaction counters balance (`prepared == committed + rolled_back`).

use std::fmt;

use manetkit::neighbour::{hello_registration, neighbour_detection_cf};
use manetkit::{FleetCoordinator, ReconfigOp, ReconfigRequest, Strategy, TxnOptions, TxnVerdict};
use netsim::fault::FaultPlan;
use netsim::{NodeId, SimDuration, SimTime, Topology, World, WorldStats};

/// Node count of the campaign topology (the paper's 5-node line).
pub const NODES: usize = 5;
/// Seconds of warm-up before the first transaction round.
pub const WARMUP_S: u64 = 30;
/// Virtual seconds between round starts.
pub const ROUND_GAP_S: u64 = 15;
/// Number of two-phase switch rounds.
pub const ROUNDS: u32 = 6;
/// End of the run: last round plus a settle window for reboots, repairs
/// and re-convergence.
pub const END_S: u64 = WARMUP_S + ROUNDS as u64 * ROUND_GAP_S + 30;

fn secs(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(n)
}

/// The stack the fleet runs between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stack {
    Olsr,
    Dymo,
}

impl Stack {
    fn flipped(self) -> Stack {
        match self {
            Stack::Olsr => Stack::Dymo,
            Stack::Dymo => Stack::Olsr,
        }
    }

    fn protocols(self) -> Vec<String> {
        match self {
            Stack::Olsr => vec!["mpr".to_string(), "olsr".to_string()],
            Stack::Dymo => vec!["neighbour-detection".to_string(), "dymo".to_string()],
        }
    }

    /// The atomic switch recipe away from this stack.
    fn switch_recipe(self) -> Vec<ReconfigOp> {
        match self {
            Stack::Olsr => vec![
                ReconfigOp::RemoveProtocol {
                    name: "olsr".into(),
                },
                ReconfigOp::RemoveProtocol { name: "mpr".into() },
                ReconfigOp::MutateSystem {
                    op: Box::new(|sys| {
                        manetkit_dymo::register_messages(sys);
                        sys.register_message(hello_registration());
                    }),
                },
                ReconfigOp::AddProtocol(neighbour_detection_cf(Default::default())),
                ReconfigOp::AddProtocol(manetkit_dymo::dymo_cf(Default::default())),
            ],
            Stack::Dymo => vec![
                ReconfigOp::RemoveProtocol {
                    name: "dymo".into(),
                },
                ReconfigOp::RemoveProtocol {
                    name: "neighbour-detection".into(),
                },
                ReconfigOp::MutateSystem {
                    op: Box::new(manetkit_olsr::register_messages),
                },
                ReconfigOp::AddProtocol(manetkit_olsr::mpr_cf(Default::default())),
                ReconfigOp::AddProtocol(manetkit_olsr::olsr_cf(Default::default())),
            ],
        }
    }
}

/// Per-round outcome of the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Transaction id the coordinator assigned.
    pub txn: u64,
    /// Verdict string (`committed` / `aborted` / `reverted`).
    pub verdict: String,
    /// Nodes skipped because they were down at round start.
    pub skipped: Vec<usize>,
    /// Nodes that never acknowledged the verdict (crashed mid-txn).
    pub unresolved: Vec<usize>,
}

/// The E15 campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnChaosReport {
    /// Rounds attempted.
    pub rounds: u32,
    /// Rounds that committed fleet-wide.
    pub committed: u32,
    /// Rounds that aborted (every prepared node rolled back).
    pub aborted: u32,
    /// Rounds reverted by a health gate (none in the default campaign).
    pub reverted: u32,
    /// Nodes reconciled best-effort after missing a committed round.
    pub repairs: u32,
    /// Per-round outcomes, in order.
    pub outcomes: Vec<RoundOutcome>,
    /// Nodes whose final stack disagrees with the verdict history.
    pub wedged: Vec<usize>,
    /// Sum of per-node `txn.prepared` counters.
    pub prepared_count: u64,
    /// Sum of per-node `txn.committed` counters.
    pub committed_count: u64,
    /// Sum of per-node `txn.rolled_back` counters.
    pub rolled_back_count: u64,
    /// Cumulative world statistics for the whole run.
    pub total: WorldStats,
}

impl TxnChaosReport {
    /// Fraction of rounds that aborted.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        f64::from(self.aborted) / f64::from(self.rounds)
    }

    /// The E15 acceptance criterion: no node is wedged in a half-applied
    /// composition and every prepared per-node transaction was resolved
    /// (committed or rolled back) exactly once.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.wedged.is_empty()
            && self.prepared_count == self.committed_count + self.rolled_back_count
    }
}

impl fmt::Display for TxnChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds: {} committed, {} aborted, {} reverted \
             (abort rate {:.0}%), {} repairs ({})",
            self.rounds,
            self.committed,
            self.aborted,
            self.reverted,
            100.0 * self.abort_rate(),
            self.repairs,
            if self.consistent() {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        )
    }
}

/// The E15 fault script, phased against the round starts:
///
/// * node 1 is down across the round-1 start (skip + repair path);
/// * node 3 crashes moments after the round-2 prepare broadcast and stays
///   down past the prepare deadline (fleet-wide abort path);
/// * node 2 crashes mid-round-3, after its prepare (doomed-transaction
///   rollback + repair path).
#[must_use]
pub fn chaos_plan(seed: u64) -> FaultPlan {
    let round = |r: u64| WARMUP_S + r * ROUND_GAP_S;
    FaultPlan::builder(seed)
        .crash_for(secs(round(1) - 1), NodeId(1), SimDuration::from_secs(6))
        // 500 µs after the prepare broadcast: deterministically before the
        // earliest possible post-broadcast callback (the link model's
        // minimum one-hop latency is 800 µs and protocol timers fire on
        // whole-second phases), so the node is guaranteed to die
        // unprepared and the round aborts on the prepare deadline.
        .crash_for(
            secs(round(2)) + SimDuration::from_micros(500),
            NodeId(3),
            SimDuration::from_secs(10),
        )
        .crash_for(
            secs(round(3)) + SimDuration::from_millis(1_500),
            NodeId(2),
            SimDuration::from_secs(6),
        )
        .build()
}

/// Runs the E15 campaign: [`ROUNDS`] alternating OLSR ⇄ DYMO two-phase
/// switches under [`chaos_plan`], with CBR traffic node 0 → node 4
/// throughout and a settle window at the end.
#[must_use]
pub fn run_campaign(seed: u64) -> TxnChaosReport {
    let mut world = World::builder()
        .topology(Topology::line(NODES))
        .seed(seed)
        .fault_plan(chaos_plan(seed))
        .build();
    let mut fleet = FleetCoordinator::default();
    for i in 0..NODES {
        let (node, handle) = manetkit_olsr::node(Default::default());
        fleet.add(handle);
        world.install_agent(NodeId(i), Box::new(node));
    }

    // CBR 0 → 4 at 4 pkt/s across every phase.
    let dst = world.addr(NodeId(NODES - 1));
    let mut t = secs(WARMUP_S) + SimDuration::from_millis(125);
    while t < secs(END_S) {
        world.send_datagram_at(t, NodeId(0), dst, vec![0u8; 64]);
        t += SimDuration::from_millis(250);
    }

    let opts = TxnOptions::default();
    let mut current = Stack::Olsr;
    let mut report = TxnChaosReport {
        rounds: ROUNDS,
        committed: 0,
        aborted: 0,
        reverted: 0,
        repairs: 0,
        outcomes: Vec::new(),
        wedged: Vec::new(),
        prepared_count: 0,
        committed_count: 0,
        rolled_back_count: 0,
        total: WorldStats::default(),
    };
    for r in 0..u64::from(ROUNDS) {
        world.run_until(secs(WARMUP_S + r * ROUND_GAP_S));
        let from = current;
        let fleet_report = fleet.execute(
            &mut world,
            ReconfigRequest::new()
                .recipe(|| from.switch_recipe())
                .strategy(Strategy::TwoPhase(opts.clone())),
        );
        let outcome = RoundOutcome {
            txn: fleet_report.txn,
            verdict: fleet_report.verdict.to_string(),
            skipped: fleet_report.skipped.iter().map(|n| n.0).collect(),
            unresolved: fleet_report.unresolved.iter().map(|n| n.0).collect(),
        };
        match fleet_report.verdict {
            TxnVerdict::Committed => {
                report.committed += 1;
                current = current.flipped();
                // Nodes that missed the committed round (down at start, or
                // crashed mid-transaction and doomed to roll back) are
                // reconciled best-effort: the same recipe enqueues on their
                // handle and applies at their next (post-reboot) quiescent
                // point — after the doomed rollback, which runs first.
                for node in outcome.skipped.iter().chain(&outcome.unresolved) {
                    let handle = fleet.handle_of(NodeId(*node)).expect("fleet member");
                    for op in from.switch_recipe() {
                        handle.apply(op);
                    }
                    report.repairs += 1;
                }
            }
            TxnVerdict::Aborted => report.aborted += 1,
            _ => report.reverted += 1,
        }
        report.outcomes.push(outcome);
    }

    // Settle: reboots, doomed rollbacks and repairs all land, then verify
    // nobody is wedged.
    world.run_until(secs(END_S));
    let expected = current.protocols();
    for (i, stack) in fleet.stacks().iter().enumerate() {
        if *stack != expected {
            report.wedged.push(i);
        }
    }
    let stats = world.stats();
    report.prepared_count = stats.agent_counter("txn.prepared");
    report.committed_count = stats.agent_counter("txn.committed");
    report.rolled_back_count = stats.agent_counter("txn.rolled_back");
    report.total = stats;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_chaos_campaign_commits_aborts_and_stays_consistent() {
        let r = run_campaign(7);
        assert_eq!(r.rounds, ROUNDS);
        assert!(r.committed >= 3, "most rounds commit: {r}");
        assert!(r.aborted >= 1, "the pre-prepare crash aborts a round: {r}");
        assert!(r.repairs >= 1, "a missed committed round is repaired: {r}");
        assert!(r.consistent(), "no wedged nodes, balanced counters: {r}");
        assert_eq!(r.total.node_crashes, 3, "{r}");
        assert_eq!(r.total.node_reboots, 3, "{r}");
        assert!(
            r.total.delivery_ratio() > 0.5,
            "traffic keeps flowing across the rounds: {r}"
        );
    }

    #[test]
    fn same_seed_campaign_replays_identically() {
        let a = run_campaign(11);
        let b = run_campaign(11);
        assert_eq!(a, b, "the campaign must be deterministic");
    }
}
