//! End-to-end AODV tests: discovery, intermediate replies,
//! precursor-directed route errors and protocol switching against DYMO.

use manetkit::prelude::*;
use manetkit_aodv::AodvDeployment;
use netsim::{LinkState, NodeId, SimDuration, Topology, World};

fn aodv_world(topology: Topology, seed: u64) -> (World, Vec<NodeHandle>) {
    let n = topology.len();
    let mut world = World::builder().topology(topology).seed(seed).build();
    let mut handles = Vec::new();
    for i in 0..n {
        let (node, handle) = manetkit_aodv::node(AodvDeployment::default());
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    (world, handles)
}

#[test]
fn five_node_line_discovery_and_reverse_route() {
    let (mut world, _h) = aodv_world(Topology::line(5), 1);
    world.run_for(SimDuration::from_secs(3));
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"fwd".to_vec());
    world.run_for(SimDuration::from_secs(3));
    let s = world.stats();
    assert_eq!(s.data_delivered, 1, "{s:?}");
    assert!(s.agent_counter("rrep_received") >= 1);
    // Reverse route exists without a new discovery (learned from the RREQ).
    let back = world.addr(NodeId(0));
    world.send_datagram(NodeId(4), back, b"rev".to_vec());
    world.run_for(SimDuration::from_secs(2));
    let s2 = world.stats();
    assert_eq!(s2.data_delivered, 2);
    assert_eq!(
        s2.agent_counter("route_discovery"),
        s.agent_counter("route_discovery")
    );
}

#[test]
fn intermediate_node_answers_with_fresh_route() {
    // After 0 discovers 4, node 1 holds a fresh route to 4. A discovery
    // from a new branch node attached to 1 should be answered by node 1
    // without the RREQ reaching node 4.
    let mut topo = Topology::line(5);
    // Node 5 hangs off node 1.
    let mut topo6 = Topology::empty(6);
    for a in 0..5 {
        for b in 0..5 {
            if topo.link_up(NodeId(a), NodeId(b)) {
                topo6.set_link(NodeId(a), NodeId(b), LinkState::Up);
            }
        }
    }
    topo6.set_link(NodeId(5), NodeId(1), LinkState::Up);
    topo = topo6;

    let (mut world, _h) = aodv_world(topo, 2);
    world.run_for(SimDuration::from_secs(2));
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"seed".to_vec());
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(world.stats().data_delivered, 1);

    // Quickly (within the route lifetime), node 5 asks for node 4.
    world.send_datagram(NodeId(5), far, b"branch".to_vec());
    world.run_for(SimDuration::from_secs(2));
    let s = world.stats();
    assert_eq!(s.data_delivered, 2, "{s:?}");
    assert!(
        s.agent_counter("intermediate_rrep") >= 1,
        "an intermediate node must have answered: {s:?}"
    );
}

#[test]
fn rerr_goes_to_precursors_and_triggers_rediscovery() {
    let (mut world, _h) = aodv_world(Topology::line(4), 3);
    world.run_for(SimDuration::from_secs(2));
    let far = world.addr(NodeId(3));
    world.send_datagram(NodeId(0), far, b"a".to_vec());
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(world.stats().data_delivered, 1);

    world.set_link(NodeId(1), NodeId(2), LinkState::Down);
    world.set_link(NodeId(2), NodeId(0), LinkState::Up); // repair path 0-2-3
    world.send_datagram(NodeId(0), far, b"b".to_vec());
    world.run_for(SimDuration::from_secs(6));
    let s = world.stats();
    assert!(s.agent_counter("rerr_sent") >= 1, "{s:?}");
    // Rediscovery over the repaired topology delivers subsequent traffic.
    world.send_datagram(NodeId(0), far, b"c".to_vec());
    world.run_for(SimDuration::from_secs(6));
    assert!(world.stats().data_delivered >= 2, "{:?}", world.stats());
}

#[test]
fn unreachable_destination_backs_off_and_gives_up() {
    let (mut world, _h) = aodv_world(Topology::line(2), 4);
    world.run_for(SimDuration::from_secs(1));
    let ghost = packetbb::Address::v4([10, 9, 9, 9]);
    world.send_datagram(NodeId(0), ghost, b"x".to_vec());
    world.run_for(SimDuration::from_secs(20));
    let s = world.stats();
    assert_eq!(s.agent_counter("route_discovery_failed"), 1);
    assert!(s.agent_counter("rreq_retry") >= 2);
    assert_eq!(s.data_delivered, 0);
}

#[test]
fn switch_aodv_to_dymo_at_runtime() {
    let (mut world, handles) = aodv_world(Topology::line(3), 5);
    world.run_for(SimDuration::from_secs(2));
    // Retire AODV, deploy DYMO in its place (both reactive: remove first).
    for h in &handles {
        h.apply(ReconfigOp::RemoveProtocol {
            name: manetkit_aodv::AODV_CF.into(),
        });
        h.apply(ReconfigOp::MutateSystem {
            op: Box::new(manetkit_dymo::register_messages),
        });
        h.apply(ReconfigOp::AddProtocol(manetkit_dymo::dymo_cf(
            Default::default(),
        )));
    }
    world.run_for(SimDuration::from_secs(2));
    for h in &handles {
        let st = h.status();
        assert!(st.last_error.is_none(), "{:?}", st.last_error);
        assert!(st.protocols.contains(&"dymo".to_string()));
        assert!(!st.protocols.contains(&"aodv".to_string()));
    }
    let far = world.addr(NodeId(2));
    world.send_datagram(NodeId(0), far, b"post-switch".to_vec());
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(world.stats().data_delivered, 1);
}

#[test]
fn aodv_dymo_mixed_network_does_not_interoperate_but_does_not_crash() {
    // AODV and DYMO use different message types; a mixed network must not
    // panic, and discoveries simply fail (messages of unknown types are
    // counted and dropped by the System CF).
    let mut world = World::builder().topology(Topology::line(3)).seed(6).build();
    let (n0, _h0) = manetkit_aodv::node(AodvDeployment::default());
    let (n1, _h1) = manetkit_dymo::node(Default::default());
    let (n2, _h2) = manetkit_aodv::node(AodvDeployment::default());
    world.install_agent(NodeId(0), Box::new(n0));
    world.install_agent(NodeId(1), Box::new(n1));
    world.install_agent(NodeId(2), Box::new(n2));
    world.run_for(SimDuration::from_secs(2));
    let far = world.addr(NodeId(2));
    world.send_datagram(NodeId(0), far, b"x".to_vec());
    world.run_for(SimDuration::from_secs(10));
    assert_eq!(world.stats().data_delivered, 0, "protocols must not mix");
}
