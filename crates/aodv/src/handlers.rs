//! Plug-in components of the AODV CF.

use manetkit::event::{types, Event, EventType, Payload, RouteCtl};
use manetkit::protocol::{proto_stop_event, EventHandler, ProtoCtx, StateSlot, PROTO_STOP_EVENT};
use packetbb::Address;

use crate::messages::{Rerr, Rrep, Rreq};
use crate::state::{seq_newer, AodvState};

/// Timer name of the AODV housekeeping sweep.
pub const AODV_SWEEP_TIMER: &str = "aodv:sweep";

manetkit::cached_event_type! {
    /// The interned [`AODV_SWEEP_TIMER`] type (cached, no per-call lookup).
    pub fn aodv_sweep_timer => AODV_SWEEP_TIMER;
}

fn install_kernel(ctx: &mut ProtoCtx<'_>, dst: Address, next_hop: Address, hops: u8) {
    ctx.os()
        .route_table_mut()
        .add_host_route(dst, next_hop, u32::from(hops));
}

fn remove_kernel(ctx: &mut ProtoCtx<'_>, dst: Address) {
    ctx.os().route_table_mut().remove_host_route(dst);
}

fn send_rreq(s: &mut AodvState, dst: Address, ctx: &mut ProtoCtx<'_>) {
    let orig_seq = s.next_seq();
    let rreq_id = s.next_rreq_id();
    let target_seq = s.routes.get(&dst).and_then(|r| r.seq);
    let rreq = Rreq {
        orig: ctx.local_addr(),
        orig_seq,
        rreq_id,
        target: dst,
        target_seq,
        hop_count: 0,
        hop_limit: s.params.hop_limit,
    };
    s.check_seen(rreq.orig, rreq_id, ctx.now());
    ctx.os().bump("rreq_sent");
    ctx.emit(Event::message_out(types::re_out(), rreq.to_message()));
}

/// Starts route discovery on `NO_ROUTE` traps.
pub struct AodvDiscoveryHandler;

impl EventHandler for AodvDiscoveryHandler {
    fn name(&self) -> &str {
        "route-discovery-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::no_route()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(RouteCtl::NoRoute { dst }) = event.route_ctl() else {
            return;
        };
        let dst = *dst;
        let now = ctx.now();
        let s = state.get_mut::<AodvState>();
        if let Some(route) = s.live_route(dst, now).cloned() {
            install_kernel(ctx, dst, route.next_hop, route.hop_count);
            ctx.emit(Event {
                ty: types::route_found(),
                payload: Payload::RouteCtl(RouteCtl::RouteFound { dst }),
                meta: Default::default(),
            });
            return;
        }
        if s.pending.contains_key(&dst) {
            return;
        }
        s.pending.insert(
            dst,
            crate::state::PendingDiscovery {
                attempts: 1,
                next_retry: now + s.params.rreq_wait,
            },
        );
        ctx.os().bump("route_discovery");
        send_rreq(s, dst, ctx);
    }
}

/// Handles RREQs: learns the reverse route to the originator, answers as
/// destination (or as an intermediate with a fresh-enough route), or
/// re-floods.
pub struct RreqHandler;

impl RreqHandler {
    fn reply(s: &mut AodvState, rreq: &Rreq, from: Address, rrep: Rrep, ctx: &mut ProtoCtx<'_>) {
        // The reverse route to the originator carries the reply; the
        // neighbour we received the RREQ from becomes a precursor of the
        // forward route (it will route traffic through us).
        let next_hop = s
            .live_route(rreq.orig, ctx.now())
            .map_or(from, |r| r.next_hop);
        s.add_precursor(rrep.dst, next_hop);
        ctx.os().bump("rrep_sent");
        ctx.emit(Event::message_out(types::re_out(), rrep.to_message()).to(next_hop));
    }
}

impl EventHandler for RreqHandler {
    fn name(&self) -> &str {
        "rreq-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::re_in()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(msg) = event.message() else { return };
        let Some(from) = event.meta.from else { return };
        let Some(rreq) = Rreq::from_message(msg) else {
            return;
        };
        let local = ctx.local_addr();
        if rreq.orig == local {
            return;
        }
        let now = ctx.now();
        let s = state.get_mut::<AodvState>();

        // Reverse route to the transmitting neighbour and the originator.
        if s.offer_route(from, from, None, 1, now) {
            install_kernel(ctx, from, from, 1);
        }
        if s.offer_route(
            rreq.orig,
            from,
            Some(rreq.orig_seq),
            rreq.hop_count + 1,
            now,
        ) {
            install_kernel(ctx, rreq.orig, from, rreq.hop_count + 1);
        }

        if s.check_seen(rreq.orig, rreq.rreq_id, now) {
            ctx.os().bump("rreq_duplicate");
            return;
        }

        if rreq.target == local {
            // RFC 3561 §6.6.1: the destination bumps its seq to at least
            // the requested one.
            if let Some(req) = rreq.target_seq {
                if seq_newer(req, s.own_seq) {
                    s.own_seq = req;
                }
            }
            let dst_seq = s.next_seq();
            let rrep = Rrep {
                dst: local,
                dst_seq,
                orig: rreq.orig,
                hop_count: 0,
                lifetime_ms: s.params.active_route_timeout.as_millis(),
            };
            Self::reply(s, &rreq, from, rrep, ctx);
            return;
        }

        // Intermediate reply when we hold a fresh-enough forward route.
        if s.params.intermediate_reply {
            if let Some(route) = s.live_route(rreq.target, now).cloned() {
                if let Some(known) = route.seq {
                    let fresh = rreq
                        .target_seq
                        .is_none_or(|req| known == req || seq_newer(known, req));
                    if fresh {
                        let rrep = Rrep {
                            dst: rreq.target,
                            dst_seq: known,
                            orig: rreq.orig,
                            hop_count: route.hop_count,
                            lifetime_ms: s.params.active_route_timeout.as_millis(),
                        };
                        ctx.os().bump("intermediate_rrep");
                        // The next hop toward the target learns traffic may
                        // come from the reverse direction.
                        let reverse_hop = s.live_route(rreq.orig, now).map_or(from, |r| r.next_hop);
                        s.add_precursor(rreq.target, reverse_hop);
                        Self::reply(s, &rreq, from, rrep, ctx);
                        return;
                    }
                }
            }
        }

        // Re-flood.
        if let Some(fwd) = rreq.forwarded() {
            ctx.os().bump("rreq_relayed");
            ctx.emit(Event::message_out(types::re_out(), fwd.to_message()));
        }
    }
}

/// Handles RREPs: installs the forward route, maintains precursors, relays
/// toward the originator.
pub struct RrepHandler;

impl EventHandler for RrepHandler {
    fn name(&self) -> &str {
        "rrep-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::re_in()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(msg) = event.message() else { return };
        let Some(from) = event.meta.from else { return };
        let Some(rrep) = Rrep::from_message(msg) else {
            return;
        };
        let local = ctx.local_addr();
        let now = ctx.now();
        let s = state.get_mut::<AodvState>();

        // Forward route to the destination via the transmitting neighbour.
        if s.offer_route(from, from, None, 1, now) {
            install_kernel(ctx, from, from, 1);
        }
        if s.offer_route(rrep.dst, from, Some(rrep.dst_seq), rrep.hop_count + 1, now) {
            install_kernel(ctx, rrep.dst, from, rrep.hop_count + 1);
        }

        if rrep.orig == local {
            // Our discovery concluded.
            if s.pending.remove(&rrep.dst).is_some() {
                ctx.os().bump("rrep_received");
            }
            ctx.emit(Event {
                ty: types::route_found(),
                payload: Payload::RouteCtl(RouteCtl::RouteFound { dst: rrep.dst }),
                meta: Default::default(),
            });
            return;
        }
        // Relay along the reverse route; precursor bookkeeping per §6.7.
        let Some(reverse) = s.live_route(rrep.orig, now).cloned() else {
            ctx.os().bump("rrep_relay_failed");
            return;
        };
        s.add_precursor(rrep.dst, reverse.next_hop);
        s.add_precursor(rrep.orig, from);
        ctx.os().bump("rrep_relayed");
        ctx.emit(
            Event::message_out(types::re_out(), rrep.forwarded().to_message()).to(reverse.next_hop),
        );
    }
}

fn report_breaks(
    s: &mut AodvState,
    broken: Vec<(Address, u16, std::collections::BTreeSet<Address>)>,
    ctx: &mut ProtoCtx<'_>,
) {
    if broken.is_empty() {
        return;
    }
    for (dst, _, _) in &broken {
        remove_kernel(ctx, *dst);
    }
    // Precursor-directed reporting: unicast when a single precursor,
    // broadcast otherwise (RFC 3561 §6.11).
    let all_precursors: std::collections::BTreeSet<Address> = broken
        .iter()
        .flat_map(|(_, _, p)| p.iter().copied())
        .collect();
    if all_precursors.is_empty() {
        return; // nobody routes through us; nothing to report
    }
    let unreachable: Vec<(Address, u16)> = broken.iter().map(|(d, q, _)| (*d, *q)).collect();
    let seq = s.next_seq();
    let rerr = Rerr {
        reporter: ctx.local_addr(),
        unreachable,
    };
    ctx.os().bump("rerr_sent");
    let msg = rerr.to_message(seq);
    if all_precursors.len() == 1 {
        let only = *all_precursors.iter().next().expect("len 1");
        ctx.emit(Event::message_out(types::rerr_out(), msg).to(only));
    } else {
        ctx.emit(Event::message_out(types::rerr_out(), msg));
    }
}

/// Handles breakage: link feedback, forwarding failures, neighbourhood
/// losses and incoming RERRs (propagated to precursors).
pub struct AodvRerrHandler;

impl EventHandler for AodvRerrHandler {
    fn name(&self) -> &str {
        "rerr-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![
            types::rerr_in(),
            types::send_route_err(),
            types::tx_failed(),
            types::nhood_change(),
        ]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let s = state.get_mut::<AodvState>();
        if event.ty == types::rerr_in() {
            let Some(msg) = event.message() else { return };
            let Some(from) = event.meta.from else { return };
            let Some(rerr) = Rerr::from_message(msg) else {
                return;
            };
            let mut broken = Vec::new();
            for (dst, seq) in &rerr.unreachable {
                let via_sender = s
                    .routes
                    .get(dst)
                    .is_some_and(|r| r.next_hop == from && !r.broken);
                if via_sender {
                    if let Some(r) = s.routes.get_mut(dst) {
                        r.broken = true;
                        r.seq = Some(*seq);
                        broken.push((*dst, *seq, r.precursors.clone()));
                    }
                }
            }
            ctx.os().bump("rerr_processed");
            report_breaks(s, broken, ctx);
            return;
        }
        match event.route_ctl() {
            Some(RouteCtl::ForwardFailure { dst, .. }) => {
                let broken = match s.routes.get_mut(dst) {
                    Some(r) if !r.broken => {
                        r.broken = true;
                        let seq = r.seq.map_or(0, |q| q.wrapping_add(1));
                        r.seq = Some(seq);
                        vec![(*dst, seq, r.precursors.clone())]
                    }
                    _ => vec![],
                };
                report_breaks(s, broken, ctx);
            }
            Some(RouteCtl::TxFailed { neighbour }) => {
                let broken = s.break_routes_via(*neighbour);
                report_breaks(s, broken, ctx);
            }
            _ => {
                if let Payload::Neighbourhood(nh) = &event.payload {
                    for lost in nh.lost.clone() {
                        let broken = s.break_routes_via(lost);
                        report_breaks(s, broken, ctx);
                    }
                }
            }
        }
    }
}

/// Refreshes lifetimes on `ROUTE_UPDATE` (active-route timeout reset).
pub struct AodvLifetimeHandler;

impl EventHandler for AodvLifetimeHandler {
    fn name(&self) -> &str {
        "route-lifetime-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::route_update()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(RouteCtl::RouteUsed { dst, next_hop }) = event.route_ctl() else {
            return;
        };
        let now = ctx.now();
        let s = state.get_mut::<AodvState>();
        s.refresh_route(*dst, now);
        s.refresh_route(*next_hop, now);
        ctx.os().bump("route_refreshed");
    }
}

/// Housekeeping sweep: RREQ retries (expanding backoff), route expiry,
/// kernel cleanup; also the shutdown hook.
pub struct AodvSweepHandler;

impl EventHandler for AodvSweepHandler {
    fn name(&self) -> &str {
        "sweep-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![aodv_sweep_timer(), proto_stop_event()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let now = ctx.now();
        let s = state.get_mut::<AodvState>();
        if event.ty.as_str() == PROTO_STOP_EVENT {
            for (dst, _) in std::mem::take(&mut s.routes) {
                remove_kernel(ctx, dst);
            }
            for (dst, _) in std::mem::take(&mut s.pending) {
                ctx.os().drop_buffered(dst);
            }
            return;
        }
        let due: Vec<Address> = s
            .pending
            .iter()
            .filter(|(_, p)| p.next_retry <= now)
            .map(|(d, _)| *d)
            .collect();
        for dst in due {
            let (attempts, give_up) = {
                let p = s.pending.get(&dst).expect("just listed");
                (p.attempts, p.attempts >= s.params.rreq_tries)
            };
            if give_up {
                s.pending.remove(&dst);
                ctx.os().bump("route_discovery_failed");
                ctx.os().drop_buffered(dst);
            } else {
                let backoff = s.params.rreq_wait.mul_f64(f64::from(1 << attempts));
                if let Some(p) = s.pending.get_mut(&dst) {
                    p.attempts += 1;
                    p.next_retry = now + backoff;
                }
                ctx.os().bump("rreq_retry");
                send_rreq(s, dst, ctx);
            }
        }
        for dst in s.expire(now) {
            remove_kernel(ctx, dst);
            ctx.os().bump("route_expired");
        }
        let sweep = s.params.sweep;
        ctx.set_timer(sweep, aodv_sweep_timer());
    }
}
