//! AODV for MANETKit — the paper's original proof-of-concept protocol.
//!
//! §5 of the paper: *"In the first instance, as a proof of concept, we used
//! an initial Java-based implementation of MANETKit to build the well-known
//! AODV protocol."* This crate provides that protocol for the Rust
//! reproduction: RFC 3561 semantics — hop-by-hop reverse/forward route
//! learning (no path accumulation), RREQ-id duplicate suppression,
//! intermediate replies from fresh routes, precursor lists and
//! precursor-directed route errors.
//!
//! Composition-wise AODV showcases MANETKit's reuse story a third time: it
//! shares the Neighbour Detection CF, the System CF's NetLink plug-in and
//! all framework machinery with DYMO, differing only in its handlers,
//! messages and S component. The paper also notes an AODV implementation
//! "might piggyback routing table entries so that neighbours can learn new
//! routes" via the Neighbour Detection CF's dissemination — our RREQ/RREP
//! exchange plus the `offer_route(from, …)` neighbour learning covers the
//! same route-learning effect.
//!
//! # Example
//!
//! ```
//! use manetkit::prelude::*;
//! use netsim::{NodeId, SimDuration, Topology, World};
//!
//! let mut world = World::builder().topology(Topology::line(4)).seed(3).build();
//! for i in 0..4 {
//!     let (node, _handle) = manetkit_aodv::node(Default::default());
//!     world.install_agent(NodeId(i), Box::new(node));
//! }
//! world.run_for(SimDuration::from_secs(3));
//! let far = world.addr(NodeId(3));
//! world.send_datagram(NodeId(0), far, b"hello".to_vec());
//! world.run_for(SimDuration::from_secs(2));
//! assert_eq!(world.stats().data_delivered, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod handlers;
pub mod messages;
pub mod state;

use manetkit::event::types;
use manetkit::neighbour::{hello_registration, neighbour_detection_cf, NeighbourConfig};
use manetkit::node::{Deployment, ManetNode, NodeHandle};
use manetkit::prelude::ConcurrencyModel;
use manetkit::protocol::{ManetProtocolCf, StateSlot};
use manetkit::registry::EventTuple;
use manetkit::system::SystemCf;
use packetbb::registry::msg_type;

pub use handlers::{
    AodvDiscoveryHandler, AodvLifetimeHandler, AodvRerrHandler, AodvSweepHandler, RrepHandler,
    RreqHandler, AODV_SWEEP_TIMER,
};
pub use messages::{Rerr, Rrep, Rreq};
pub use state::{AodvParams, AodvRoute, AodvState};

/// The name under which the AODV CF registers.
pub const AODV_CF: &str = "aodv";

/// Joint configuration for an AODV deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AodvDeployment {
    /// Protocol parameters.
    pub params: AodvParams,
    /// Neighbour detection configuration.
    pub neighbour: NeighbourConfig,
}

/// Builds the AODV CF.
#[must_use]
pub fn aodv_cf(params: AodvParams) -> ManetProtocolCf {
    let state = AodvState {
        params,
        ..AodvState::default()
    };
    ManetProtocolCf::builder(AODV_CF)
        .reactive()
        .tuple(
            EventTuple::new()
                .requires(types::re_in())
                .requires(types::rerr_in())
                .requires(types::no_route())
                .requires(types::route_update())
                .requires(types::send_route_err())
                .requires(types::tx_failed())
                .requires(types::nhood_change())
                .provides(types::re_out())
                .provides(types::rerr_out())
                .provides(types::route_found()),
        )
        .state(StateSlot::new(state))
        .startup_timer(params.sweep, handlers::aodv_sweep_timer())
        .handler(Box::new(AodvDiscoveryHandler))
        .handler(Box::new(RreqHandler))
        .handler(Box::new(RrepHandler))
        .handler(Box::new(AodvRerrHandler))
        .handler(Box::new(AodvLifetimeHandler))
        .handler(Box::new(AodvSweepHandler))
        .build()
}

/// Registers the message types AODV needs and enables the NetLink plug-in.
pub fn register_messages(system: &mut SystemCf) {
    system.register_in_out(msg_type::AODV_RREQ, types::re_in(), types::re_out());
    system.register_in_out(msg_type::AODV_RREP, types::re_in(), types::re_out());
    system.register_in_out(msg_type::AODV_RERR, types::rerr_in(), types::rerr_out());
    system.enable_netlink();
}

/// Installs AODV plus the Neighbour Detection CF into a deployment.
///
/// # Errors
///
/// Propagates integrity violations (e.g. another reactive protocol is
/// already deployed).
pub fn deploy(dep: &mut Deployment, config: AodvDeployment) -> Result<(), manetkit::DeployError> {
    register_messages(dep.system_mut());
    dep.system_mut().register_message(hello_registration());
    dep.add_protocol_offline(neighbour_detection_cf(config.neighbour))?;
    dep.add_protocol_offline(aodv_cf(config.params))?;
    Ok(())
}

/// Builds a ready-to-install node running AODV, plus its control handle.
#[must_use]
pub fn node(config: AodvDeployment) -> (ManetNode, NodeHandle) {
    let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
    deploy(node.deployment_mut(), config).expect("fresh deployment accepts AODV");
    let handle = node.handle();
    (node, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cf_composition() {
        let cf = aodv_cf(AodvParams::default());
        assert_eq!(cf.name(), AODV_CF);
        assert!(cf.is_reactive());
        let names = cf.plugin_names();
        for expected in [
            "route-discovery-handler",
            "rreq-handler",
            "rrep-handler",
            "rerr-handler",
            "route-lifetime-handler",
            "sweep-handler",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn aodv_and_dymo_are_mutually_exclusive() {
        // Both are reactive: the deployment-level integrity rule allows
        // only one at a time.
        let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
        dep.add_protocol_offline(aodv_cf(AodvParams::default()))
            .unwrap();
        let second = aodv_cf(AodvParams::default());
        assert!(dep.add_protocol_offline(second).is_err());
    }
}
