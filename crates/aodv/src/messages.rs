//! AODV message formats (RFC 3561 semantics over PacketBB).
//!
//! Unlike DYMO, AODV accumulates no path: an RREQ carries only the
//! originator (with sequence number and flood id) and the sought target;
//! reverse routes are learned hop by hop from the transmitting neighbour
//! and the hop count.

use packetbb::registry::{msg_type, tlv_type};
use packetbb::{Address, AddressBlock, AddressTlv, Message, MessageBuilder, Tlv};

/// An AODV route request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rreq {
    /// The requesting node.
    pub orig: Address,
    /// The originator's sequence number.
    pub orig_seq: u16,
    /// Per-originator flood identifier (duplicate suppression key).
    pub rreq_id: u16,
    /// The sought destination.
    pub target: Address,
    /// Last sequence number known for the target (`None` = unknown flag).
    pub target_seq: Option<u16>,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Remaining flood budget.
    pub hop_limit: u8,
}

impl Rreq {
    /// Serializes into a PacketBB message.
    #[must_use]
    pub fn to_message(&self) -> Message {
        let mut target_block = AddressBlock::new(vec![self.target]).expect("one target");
        match self.target_seq {
            Some(ts) => target_block.add_tlv(AddressTlv::single(
                Tlv::with_value(tlv_type::TARGET_SEQ_NUM, ts.to_be_bytes().to_vec()),
                0,
            )),
            None => target_block.add_tlv(AddressTlv::single(Tlv::flag(tlv_type::UNKNOWN_SEQ), 0)),
        }
        MessageBuilder::new(msg_type::AODV_RREQ)
            .originator(self.orig)
            .seq_num(self.orig_seq)
            .hop_count(self.hop_count)
            .hop_limit(self.hop_limit)
            .push_tlv(Tlv::with_value(
                tlv_type::RREQ_ID,
                self.rreq_id.to_be_bytes().to_vec(),
            ))
            .push_address_block(target_block)
            .build()
    }

    /// Parses from a PacketBB message, or `None` for other kinds.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Rreq> {
        if msg.msg_type() != msg_type::AODV_RREQ {
            return None;
        }
        let orig = msg.originator()?;
        let orig_seq = msg.seq_num()?;
        let rreq_id = msg.find_tlv(tlv_type::RREQ_ID)?.value_u16()?;
        let block = msg.address_blocks().first()?;
        let target = *block.addresses().first()?;
        let target_seq = block
            .tlvs()
            .iter()
            .find(|t| t.tlv().tlv_type() == tlv_type::TARGET_SEQ_NUM)
            .and_then(|t| t.tlv().value_u16());
        Some(Rreq {
            orig,
            orig_seq,
            rreq_id,
            target,
            target_seq,
            hop_count: msg.hop_count().unwrap_or(0),
            hop_limit: msg.hop_limit().unwrap_or(1),
        })
    }

    /// A copy prepared for re-flooding, or `None` when the budget is spent.
    #[must_use]
    pub fn forwarded(&self) -> Option<Rreq> {
        if self.hop_limit <= 1 {
            return None;
        }
        let mut next = *self;
        next.hop_limit -= 1;
        next.hop_count = next.hop_count.saturating_add(1);
        Some(next)
    }
}

/// An AODV route reply, travelling hop by hop along reverse routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rrep {
    /// The destination the route leads to.
    pub dst: Address,
    /// The destination's sequence number.
    pub dst_seq: u16,
    /// The node the reply must reach (the request's originator).
    pub orig: Address,
    /// Hops from the replying node travelled so far.
    pub hop_count: u8,
    /// Route lifetime granted, in milliseconds.
    pub lifetime_ms: u64,
}

impl Rrep {
    /// Serializes into a PacketBB message.
    #[must_use]
    pub fn to_message(&self) -> Message {
        MessageBuilder::new(msg_type::AODV_RREP)
            .originator(self.dst)
            .seq_num(self.dst_seq)
            .hop_count(self.hop_count)
            .hop_limit(32)
            .push_tlv(Tlv::with_value(
                tlv_type::LIFETIME,
                vec![packetbb::time::encode_time(self.lifetime_ms)],
            ))
            .push_address_block(AddressBlock::new(vec![self.orig]).expect("one orig"))
            .build()
    }

    /// Parses from a PacketBB message, or `None` for other kinds.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Rrep> {
        if msg.msg_type() != msg_type::AODV_RREP {
            return None;
        }
        let dst = msg.originator()?;
        let dst_seq = msg.seq_num()?;
        let orig = *msg.address_blocks().first()?.addresses().first()?;
        let lifetime_ms = msg
            .find_tlv(tlv_type::LIFETIME)
            .and_then(Tlv::value_u8)
            .map_or(5_000, packetbb::time::decode_time);
        Some(Rrep {
            dst,
            dst_seq,
            orig,
            hop_count: msg.hop_count().unwrap_or(0),
            lifetime_ms,
        })
    }

    /// A copy with the hop count incremented (for relaying).
    #[must_use]
    pub fn forwarded(&self) -> Rrep {
        let mut next = *self;
        next.hop_count = next.hop_count.saturating_add(1);
        next
    }
}

/// An AODV route error: unreachable destinations with their sequence
/// numbers, sent toward precursors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rerr {
    /// The reporting node.
    pub reporter: Address,
    /// `(destination, seq)` pairs now unreachable via the reporter.
    pub unreachable: Vec<(Address, u16)>,
}

impl Rerr {
    /// Serializes into a PacketBB message.
    ///
    /// # Panics
    ///
    /// Panics when `unreachable` is empty.
    #[must_use]
    pub fn to_message(&self, seq: u16) -> Message {
        assert!(!self.unreachable.is_empty(), "RERR needs destinations");
        let addrs: Vec<Address> = self.unreachable.iter().map(|(a, _)| *a).collect();
        let mut block = AddressBlock::new(addrs).expect("non-empty");
        for (i, (_, s)) in self.unreachable.iter().enumerate() {
            block.add_tlv(AddressTlv::single(
                Tlv::with_value(tlv_type::ADDR_SEQ_NUM, s.to_be_bytes().to_vec()),
                i as u8,
            ));
        }
        MessageBuilder::new(msg_type::AODV_RERR)
            .originator(self.reporter)
            .seq_num(seq)
            .hop_limit(1)
            .push_address_block(block)
            .build()
    }

    /// Parses from a PacketBB message, or `None` for other kinds.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Rerr> {
        if msg.msg_type() != msg_type::AODV_RERR {
            return None;
        }
        let reporter = msg.originator()?;
        let mut unreachable = Vec::new();
        for block in msg.address_blocks() {
            for (addr, tlvs) in block.iter_with_tlvs() {
                let seq = tlvs
                    .iter()
                    .find(|t| t.tlv().tlv_type() == tlv_type::ADDR_SEQ_NUM)
                    .and_then(|t| t.tlv().value_u16())
                    .unwrap_or(0);
                unreachable.push((addr, seq));
            }
        }
        (!unreachable.is_empty()).then_some(Rerr {
            reporter,
            unreachable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::v4([10, 0, 0, n])
    }

    #[test]
    fn rreq_round_trip_with_and_without_target_seq() {
        for target_seq in [Some(7u16), None] {
            let rreq = Rreq {
                orig: addr(1),
                orig_seq: 5,
                rreq_id: 99,
                target: addr(9),
                target_seq,
                hop_count: 2,
                hop_limit: 8,
            };
            let wire = packetbb::Packet::single(rreq.to_message()).encode_to_vec();
            let back = packetbb::Packet::decode(&wire).unwrap();
            assert_eq!(Rreq::from_message(&back.messages()[0]), Some(rreq));
        }
    }

    #[test]
    fn rreq_forwarding_counts_and_stops() {
        let rreq = Rreq {
            orig: addr(1),
            orig_seq: 1,
            rreq_id: 1,
            target: addr(9),
            target_seq: None,
            hop_count: 0,
            hop_limit: 2,
        };
        let f = rreq.forwarded().unwrap();
        assert_eq!((f.hop_count, f.hop_limit), (1, 1));
        assert!(f.forwarded().is_none());
    }

    #[test]
    fn rrep_round_trip() {
        let rrep = Rrep {
            dst: addr(9),
            dst_seq: 12,
            orig: addr(1),
            hop_count: 0,
            lifetime_ms: 5_000,
        };
        let wire = packetbb::Packet::single(rrep.to_message()).encode_to_vec();
        let back = packetbb::Packet::decode(&wire).unwrap();
        let parsed = Rrep::from_message(&back.messages()[0]).unwrap();
        assert_eq!(parsed.dst, rrep.dst);
        assert_eq!(parsed.orig, rrep.orig);
        // The RFC 5497 lifetime codec rounds up slightly.
        assert!(parsed.lifetime_ms >= 5_000 && parsed.lifetime_ms < 6_000);
        assert_eq!(parsed.forwarded().hop_count, 1);
    }

    #[test]
    fn rerr_round_trip() {
        let rerr = Rerr {
            reporter: addr(3),
            unreachable: vec![(addr(9), 4), (addr(8), 1)],
        };
        let wire = packetbb::Packet::single(rerr.to_message(2)).encode_to_vec();
        let back = packetbb::Packet::decode(&wire).unwrap();
        assert_eq!(Rerr::from_message(&back.messages()[0]), Some(rerr));
    }

    #[test]
    fn cross_parsing_rejects_other_kinds() {
        let rreq = Rreq {
            orig: addr(1),
            orig_seq: 1,
            rreq_id: 1,
            target: addr(9),
            target_seq: None,
            hop_count: 0,
            hop_limit: 2,
        };
        let msg = rreq.to_message();
        assert!(Rrep::from_message(&msg).is_none());
        assert!(Rerr::from_message(&msg).is_none());
    }
}
