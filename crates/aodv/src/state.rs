//! The AODV CF's S element: route table with precursor lists, pending
//! discoveries and RREQ-id duplicate suppression.

use std::collections::{BTreeMap, BTreeSet};

use netsim::{SimDuration, SimTime};
use packetbb::Address;

/// Wraparound-aware sequence comparison: is `a` newer than `b`?
#[must_use]
pub fn seq_newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// One AODV routing table entry (RFC 3561 §2: with precursor list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodvRoute {
    /// Next hop toward the destination.
    pub next_hop: Address,
    /// Destination sequence number (`None` = never learned: invalid for
    /// comparisons until an authoritative value arrives).
    pub seq: Option<u16>,
    /// Hop count.
    pub hop_count: u8,
    /// Expiry unless refreshed.
    pub expiry: SimTime,
    /// Whether a link break invalidated this route.
    pub broken: bool,
    /// Upstream neighbours that route *through us* to this destination —
    /// the nodes a RERR must reach when the route breaks.
    pub precursors: BTreeSet<Address>,
}

/// A discovery in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDiscovery {
    /// RREQ attempts so far.
    pub attempts: u8,
    /// When to retry or give up.
    pub next_retry: SimTime,
}

/// Tunable AODV parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AodvParams {
    /// Active route lifetime.
    pub active_route_timeout: SimDuration,
    /// First RREQ retry delay (doubles per attempt).
    pub rreq_wait: SimDuration,
    /// Maximum RREQ attempts.
    pub rreq_tries: u8,
    /// Flood budget for RREQs.
    pub hop_limit: u8,
    /// Housekeeping sweep period.
    pub sweep: SimDuration,
    /// Whether intermediate nodes with fresh routes may answer RREQs.
    pub intermediate_reply: bool,
}

impl Default for AodvParams {
    fn default() -> Self {
        AodvParams {
            active_route_timeout: SimDuration::from_secs(5),
            rreq_wait: SimDuration::from_millis(1_000),
            rreq_tries: 3,
            hop_limit: 10,
            sweep: SimDuration::from_millis(250),
            intermediate_reply: true,
        }
    }
}

/// The AODV CF state.
#[derive(Debug, Clone, Default)]
pub struct AodvState {
    /// The routing table.
    pub routes: BTreeMap<Address, AodvRoute>,
    /// Our own sequence number.
    pub own_seq: u16,
    /// Our RREQ flood id counter.
    pub rreq_id: u16,
    /// Discoveries in flight.
    pub pending: BTreeMap<Address, PendingDiscovery>,
    /// Seen `(originator, rreq_id)` floods → expiry.
    pub seen_rreqs: BTreeMap<(Address, u16), SimTime>,
    /// Parameters.
    pub params: AodvParams,
}

impl AodvState {
    /// Bumps and returns our sequence number.
    pub fn next_seq(&mut self) -> u16 {
        self.own_seq = self.own_seq.wrapping_add(1);
        self.own_seq
    }

    /// Bumps and returns our RREQ flood id.
    pub fn next_rreq_id(&mut self) -> u16 {
        self.rreq_id = self.rreq_id.wrapping_add(1);
        self.rreq_id
    }

    /// RFC 3561 §6.2 update rule: accept when the offer is strictly newer,
    /// equal-but-shorter, or the existing entry is broken/seqless. Returns
    /// whether the table changed (caller then syncs the kernel).
    pub fn offer_route(
        &mut self,
        dst: Address,
        next_hop: Address,
        seq: Option<u16>,
        hop_count: u8,
        now: SimTime,
    ) -> bool {
        let expiry = now + self.params.active_route_timeout;
        match self.routes.get_mut(&dst) {
            None => {
                self.routes.insert(
                    dst,
                    AodvRoute {
                        next_hop,
                        seq,
                        hop_count,
                        expiry,
                        broken: false,
                        precursors: BTreeSet::new(),
                    },
                );
                true
            }
            Some(existing) => {
                let accept = existing.broken
                    || match (seq, existing.seq) {
                        (Some(new), Some(old)) => {
                            seq_newer(new, old) || (new == old && hop_count < existing.hop_count)
                        }
                        (Some(_), None) => true,
                        (None, _) => hop_count < existing.hop_count,
                    };
                if accept {
                    existing.next_hop = next_hop;
                    if seq.is_some() {
                        existing.seq = seq;
                    }
                    existing.hop_count = hop_count;
                    existing.expiry = expiry;
                    existing.broken = false;
                    true
                } else {
                    // A same-next-hop duplicate still refreshes lifetime.
                    if existing.next_hop == next_hop && !existing.broken {
                        existing.expiry = existing.expiry.max(expiry);
                    }
                    false
                }
            }
        }
    }

    /// Adds a precursor to the route toward `dst`.
    pub fn add_precursor(&mut self, dst: Address, precursor: Address) {
        if let Some(r) = self.routes.get_mut(&dst) {
            r.precursors.insert(precursor);
        }
    }

    /// The live route to `dst`.
    #[must_use]
    pub fn live_route(&self, dst: Address, now: SimTime) -> Option<&AodvRoute> {
        self.routes
            .get(&dst)
            .filter(|r| !r.broken && r.expiry > now)
    }

    /// Extends the lifetime of the route to `dst`.
    pub fn refresh_route(&mut self, dst: Address, now: SimTime) {
        let lifetime = self.params.active_route_timeout;
        if let Some(r) = self.routes.get_mut(&dst) {
            if !r.broken {
                r.expiry = now + lifetime;
            }
        }
    }

    /// Breaks every route via `via`; returns `(dst, seq, precursors)` per
    /// broken route, with the destination sequence number incremented as
    /// RFC 3561 §6.11 requires.
    pub fn break_routes_via(&mut self, via: Address) -> Vec<(Address, u16, BTreeSet<Address>)> {
        let mut out = Vec::new();
        for (dst, r) in self.routes.iter_mut() {
            if r.next_hop == via && !r.broken {
                r.broken = true;
                let seq = r.seq.map_or(0, |s| s.wrapping_add(1));
                r.seq = Some(seq);
                out.push((*dst, seq, r.precursors.clone()));
            }
        }
        out
    }

    /// Records an RREQ flood; returns `true` when already seen.
    pub fn check_seen(&mut self, orig: Address, rreq_id: u16, now: SimTime) -> bool {
        let expiry = now + SimDuration::from_secs(10);
        self.seen_rreqs.insert((orig, rreq_id), expiry).is_some()
    }

    /// Housekeeping; returns destinations whose routes lapsed.
    pub fn expire(&mut self, now: SimTime) -> Vec<Address> {
        let hold = self.params.active_route_timeout;
        let mut lapsed = Vec::new();
        self.routes.retain(|dst, r| {
            let keep = r.expiry > now || (r.broken && r.expiry + hold > now);
            if !keep {
                lapsed.push(*dst);
            }
            keep
        });
        self.seen_rreqs.retain(|_, exp| *exp > now);
        lapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::v4([10, 0, 0, n])
    }

    #[test]
    fn update_rule_follows_rfc() {
        let mut s = AodvState::default();
        let now = SimTime::ZERO;
        assert!(s.offer_route(addr(9), addr(2), Some(5), 3, now));
        // Older seq rejected.
        assert!(!s.offer_route(addr(9), addr(3), Some(4), 1, now));
        // Equal seq, longer hops rejected.
        assert!(!s.offer_route(addr(9), addr(3), Some(5), 4, now));
        // Equal seq, shorter wins.
        assert!(s.offer_route(addr(9), addr(3), Some(5), 2, now));
        // Newer seq always wins.
        assert!(s.offer_route(addr(9), addr(4), Some(6), 9, now));
        // Seqless offer only on shorter hops.
        assert!(!s.offer_route(addr(9), addr(5), None, 9, now));
        assert!(s.offer_route(addr(9), addr(5), None, 1, now));
        // Seq survives a seqless accept.
        assert_eq!(s.routes[&addr(9)].seq, Some(6));
    }

    #[test]
    fn seqless_existing_accepts_any_seq() {
        let mut s = AodvState::default();
        let now = SimTime::ZERO;
        assert!(s.offer_route(addr(9), addr(2), None, 3, now));
        assert!(s.offer_route(addr(9), addr(3), Some(1), 9, now));
        assert_eq!(s.routes[&addr(9)].seq, Some(1));
    }

    #[test]
    fn breaking_increments_seq_and_reports_precursors() {
        let mut s = AodvState::default();
        let now = SimTime::ZERO;
        s.offer_route(addr(9), addr(2), Some(5), 3, now);
        s.add_precursor(addr(9), addr(7));
        s.add_precursor(addr(9), addr(8));
        let broken = s.break_routes_via(addr(2));
        assert_eq!(broken.len(), 1);
        let (dst, seq, precursors) = &broken[0];
        assert_eq!(*dst, addr(9));
        assert_eq!(*seq, 6, "seq incremented on break");
        assert_eq!(precursors.len(), 2);
        assert!(s.live_route(addr(9), now).is_none());
    }

    #[test]
    fn rreq_id_duplicates() {
        let mut s = AodvState::default();
        assert!(!s.check_seen(addr(1), 1, SimTime::ZERO));
        assert!(s.check_seen(addr(1), 1, SimTime::ZERO));
        assert!(!s.check_seen(addr(1), 2, SimTime::ZERO));
        s.expire(SimTime::ZERO + SimDuration::from_secs(11));
        assert!(!s.check_seen(addr(1), 1, SimTime::ZERO + SimDuration::from_secs(11)));
    }

    #[test]
    fn refresh_and_expiry() {
        let mut s = AodvState::default();
        let now = SimTime::ZERO;
        s.offer_route(addr(9), addr(2), Some(1), 1, now);
        s.refresh_route(addr(9), now + SimDuration::from_secs(4));
        assert!(s
            .live_route(addr(9), now + SimDuration::from_secs(8))
            .is_some());
        let lapsed = s.expire(now + SimDuration::from_secs(10));
        assert_eq!(lapsed, vec![addr(9)]);
    }
}
