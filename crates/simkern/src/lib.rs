//! # simkern — a reusable discrete-event simulation kernel
//!
//! The kernel is the protocol-agnostic bottom layer of the simulator stack:
//!
//! ```text
//! campaign   — scenario × protocol × fault × seed grids, parallel engine
//!    │
//! netsim     — nodes, links, frames, faults: the network-shaped World
//!    │
//! simkern    — virtual clock + (time, seq)-ordered event queue   ← this crate
//! ```
//!
//! It knows nothing about packets or topologies. It provides exactly three
//! things:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock in whole microseconds.
//! * [`EventQueue`] — a hierarchical timing-wheel scheduler with an
//!   arena-backed event store. Events pop in `(time, seq)` order, where
//!   `seq` counts insertions; this total order is the determinism contract
//!   every layer above relies on.
//! * [`HeapQueue`] — the textbook `BinaryHeap` scheduler with the same API,
//!   kept as the property-test oracle and bench baseline.
//!
//! Any client that schedules identical events in an identical order gets an
//! identical pop sequence — regardless of which queue implementation runs
//! underneath, how far apart the deadlines are, or how often the clock is
//! advanced. The property tests in `tests/` pin the two implementations to
//! each other over arbitrary interleavings.

mod arena;
mod heap;
mod queue;
mod time;

pub use arena::Arena;
pub use heap::HeapQueue;
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
