//! Virtual time: instants and durations measured in simulated microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. All timer
/// and delivery scheduling in an [`EventQueue`](crate::EventQueue) uses this
/// type — the wall clock never leaks into simulation logic, which is what
/// makes runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time value that compares greater than any reachable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Builds a time from microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Microseconds in this duration.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales the duration by a float factor (saturating, non-negative).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.as_millis(), 1500);
        assert_eq!(t.as_micros(), 1_500_000);
        let d = t - SimTime::from_micros(500_000);
        assert_eq!(d, SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_millis(500),
            SimDuration::from_millis(1500)
        );
        assert_eq!(
            SimDuration::from_secs(2) - SimDuration::from_secs(3),
            SimDuration::ZERO,
            "saturating"
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::MAX > SimTime::from_micros(u64::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
