//! A reference scheduler backed by a comparison `BinaryHeap`.
//!
//! [`HeapQueue`] implements the same `(time, seq)` contract as
//! [`EventQueue`](crate::EventQueue) with the textbook data structure —
//! payloads inline in heap nodes, O(log n) sift per operation. It exists as
//! the oracle for the order-equivalence property tests and as the baseline
//! the kernel bench measures the timing wheel against; it is not used by the
//! simulator itself.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct HeapEntry<E> {
    t: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    /// Reversed `(t, seq)` order so the max-heap pops the earliest entry.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// A binary-heap discrete-event queue with the [`EventQueue`](crate::EventQueue) API.
pub struct HeapQueue<E> {
    now: u64,
    seq: u64,
    heap: BinaryHeap<HeapEntry<E>>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        HeapQueue {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The virtual clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.now)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` for `at`, clamped to the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let t = at.as_micros().max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { t, seq, event });
    }

    /// Pops the earliest pending event if its deadline is ≤ `limit`,
    /// advancing the clock to that deadline.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let due = self.heap.peek().map(|e| e.t <= limit.as_micros());
        if due != Some(true) {
            return None;
        }
        let entry = self.heap.pop().expect("peeked");
        self.now = entry.t;
        Some((SimTime::from_micros(entry.t), entry.event))
    }

    /// Advances the clock to `t` without popping.
    pub fn advance_to(&mut self, t: SimTime) {
        let t = t.as_micros();
        if t > self.now {
            self.now = t;
        }
    }

    /// Earliest pending deadline, if any.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime::from_micros(e.t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_queue_contract() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::from_micros(50), "b");
        q.schedule(SimTime::from_micros(50), "c");
        q.schedule(SimTime::from_micros(7), "a");
        let order: Vec<&str> =
            std::iter::from_fn(|| q.pop_due(SimTime::MAX).map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(50));
    }
}
