//! The hierarchical timing-wheel event queue.
//!
//! [`EventQueue`] is the kernel's scheduler: a virtual clock plus a pending
//! set ordered by `(time, seq)`, where `seq` is a monotonically increasing
//! insertion counter. The `(time, seq)` total order is the contract clients
//! replay against — two runs that schedule the same events in the same order
//! pop them in the same order, which is what keeps same-seed simulations
//! byte-identical.
//!
//! # Structure
//!
//! Pending events live in one of four places:
//!
//! * `due` — events at exactly the current time, in seq order. Popping is a
//!   `VecDeque` pop.
//! * the **wheel** — [`LEVELS`] levels of 64 slots each. Level `k` slots are
//!   `64^k` µs wide, so level 0 resolves single microseconds and the whole
//!   wheel spans `64^6` µs (≈ 19 h of simulated time) ahead of the clock. A
//!   per-level `u64` occupancy bitmap makes "next non-empty slot" a single
//!   `trailing_zeros`. An event sits at the *lowest* level whose current
//!   window contains its deadline; as the clock enters a higher-level slot,
//!   that slot cascades down one level in insertion order, preserving seq
//!   order without ever comparing entries.
//! * `overflow` — a `BinaryHeap` for the rare event scheduled beyond the
//!   wheel span; migrated into the wheel when the clock catches up.
//!
//! Slot entries are 16-byte `(time, arena index)` pairs; payloads live in an
//! [`Arena`] so cascades move compact records, not event structs. Seq order
//! is positional: slots, cascades and `due` all preserve insertion order.
//!
//! Scheduling and popping are O(1) amortised versus O(log n) comparison-heap
//! operations — the difference that lets 10k-node worlds with hundreds of
//! thousands of in-flight events dispatch at tens of millions of events/sec.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arena::Arena;
use crate::time::SimTime;

/// Number of wheel levels.
pub const LEVELS: usize = 6;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Bit shift above which a deadline no longer fits any wheel level.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// A scheduled entry: deadline and payload index — 16 bytes, so cascades
/// stream compact records. No sequence number: insertion order within a
/// slot IS seq order, cascades preserve it (same-deadline entries always
/// travel to the same lower slot together), and the one structure that
/// genuinely reorders — the overflow heap — carries its own `(t, seq, idx)`
/// triples and replays them back in order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    t: u64,
    idx: u32,
}

/// A discrete-event queue with a virtual clock.
///
/// Events are any `E`; the queue imposes no trait bounds beyond what the
/// containers need. See the crate docs for the layout.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    now: u64,
    seq: u64,
    len: usize,
    arena: Arena<E>,
    /// Flat `LEVELS × SLOTS` grid: `slots[k * SLOTS + i]` holds entries for
    /// level-`k` slot `i`, in seq order. Slot buffers are recycled across
    /// cascades (never dropped), so a steady-state queue stops allocating.
    slots: Vec<Vec<Entry>>,
    /// Occupancy bitmap per level: bit `i` set ⇔ `slots[k][i]` non-empty.
    occupied: [u64; LEVELS],
    /// Events at exactly `now`, in seq order: `due[due_head..]` is pending.
    /// A `Vec` plus cursor (not a `VecDeque`) so the fast path can claim a
    /// whole level-0 slot by buffer swap instead of copying entries.
    due: Vec<Entry>,
    due_head: usize,
    /// Events beyond the wheel span, ordered by `(t, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            now: 0,
            seq: 0,
            len: 0,
            arena: Arena::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            due: Vec::new(),
            due_head: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// The virtual clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.now)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` for `at`, clamped to the current time — the clock
    /// never runs backwards, so a stale deadline fires immediately rather
    /// than silently in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let t = at.as_micros().max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.arena.insert(event);
        self.len += 1;
        if t >> SPAN_BITS != self.now >> SPAN_BITS {
            // Beyond the wheel span: the overflow heap needs the explicit
            // seq for tie-breaking, wheel slots get it from insertion order.
            self.overflow.push(Reverse((t, seq, idx)));
        } else {
            self.insert_entry(Entry { t, idx });
        }
    }

    /// Pops the earliest pending event if its deadline is ≤ `limit`,
    /// advancing the clock to that deadline. Returns `None` — with the
    /// clock untouched — when the next event lies beyond the horizon, so a
    /// horizon miss is observationally free and the clock only ever sits on
    /// popped deadlines or explicit [`advance_to`](Self::advance_to) marks.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let limit = limit.as_micros();
        if self.due_is_empty() {
            if let Some(slot) = self.scan_level(0) {
                // Fast path: the next deadline sits in the clock's current
                // 64 µs window. Every entry in a level-0 slot shares one
                // exact deadline, and jumping within the window crosses no
                // level boundary — no scans, no cascades.
                let t = self.slots[slot][0].t;
                if t > limit {
                    return None;
                }
                debug_assert!(t > self.now && t >> SLOT_BITS == self.now >> SLOT_BITS);
                self.now = t;
                self.drain_current_into_due();
            } else {
                // Jump the clock straight to the exact next deadline;
                // cascades happen inside `set_now` and land the deadline's
                // events in `due` (via insert-at-now) or the current
                // level-0 slot.
                let deadline = self.next_deadline()?.as_micros();
                if deadline > limit {
                    return None;
                }
                self.set_now(deadline);
                self.drain_current_into_due();
            }
        } else if self.now > limit {
            return None;
        }
        let entry = self.due[self.due_head];
        self.due_head += 1;
        if self.due_head == self.due.len() {
            self.due.clear();
            self.due_head = 0;
        }
        self.len -= 1;
        let event = self.arena.remove(entry.idx);
        Some((SimTime::from_micros(entry.t), event))
    }

    /// True when no event at exactly `now` is waiting in `due`.
    fn due_is_empty(&self) -> bool {
        self.due_head >= self.due.len()
    }

    /// Advances the clock to `t` without popping.
    ///
    /// The caller must have drained every event due at or before `t` (via
    /// [`pop_due`](Self::pop_due)); skipping pending events is a logic error.
    pub fn advance_to(&mut self, t: SimTime) {
        let t = t.as_micros();
        if t > self.now {
            debug_assert!(self.due_is_empty(), "advance_to skipped due events");
            self.set_now(t);
        }
    }

    /// Earliest pending deadline, if any.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.is_empty() {
            return None;
        }
        if let Some(entry) = self.due.get(self.due_head) {
            return Some(SimTime::from_micros(entry.t));
        }
        // The lowest occupied level holds the minimum (higher levels only
        // cover deadlines beyond the current lower-level windows), and
        // within it the first occupied slot; slot entries are unsorted, so
        // scan that one slot for the exact deadline.
        for k in 0..LEVELS {
            if let Some(slot) = self.scan_level(k) {
                let min = self.slots[k * SLOTS + slot]
                    .iter()
                    .map(|e| e.t)
                    .min()
                    .expect("occupancy bit set on empty slot");
                return Some(SimTime::from_micros(min));
            }
        }
        self.overflow
            .peek()
            .map(|Reverse((t, _, _))| SimTime::from_micros(*t))
    }

    /// Places an entry into `due` or a wheel slot. The deadline must be
    /// within the wheel span (callers route far deadlines to overflow).
    fn insert_entry(&mut self, entry: Entry) {
        debug_assert!(entry.t >= self.now);
        if entry.t == self.now {
            self.due.push(entry);
            return;
        }
        // Lowest level whose current window contains the deadline: level k
        // covers deadlines sharing the clock's level-(k+1) slot, i.e. the
        // highest bit where deadline and clock differ picks the level.
        let high_bit = 63 - (entry.t ^ self.now).leading_zeros();
        let k = (high_bit / SLOT_BITS) as usize;
        debug_assert!(k < LEVELS, "insert_entry deadline beyond the wheel span");
        let slot = ((entry.t >> (SLOT_BITS * k as u32)) & 63) as usize;
        self.slots[k * SLOTS + slot].push(entry);
        self.occupied[k] |= 1 << slot;
    }

    /// Index of the first occupied level-`k` slot ahead of the clock. The
    /// clock's own slot is excluded: at level 0 it is drained into `due` the
    /// moment the clock lands on it, and at higher levels it cascades down
    /// when the clock enters it, so a set bit there would be a stale past
    /// entry, not pending work.
    fn scan_level(&self, k: usize) -> Option<usize> {
        let bits = self.occupied[k];
        if bits == 0 {
            return None;
        }
        let shift = SLOT_BITS * k as u32;
        let cur = ((self.now >> shift) & 63) as u32;
        let ahead = bits & ((!0u64 << cur) << 1);
        if ahead == 0 {
            return None;
        }
        Some(ahead.trailing_zeros() as usize)
    }

    /// Moves the clock to `t`, cascading every higher-level slot the clock
    /// enters down one level (preserving seq order) and migrating overflow
    /// entries that now fit the wheel.
    fn set_now(&mut self, t: u64) {
        let old = self.now;
        if t == old {
            return;
        }
        debug_assert!(t > old);
        self.now = t;
        for k in (1..LEVELS).rev() {
            let shift = SLOT_BITS * k as u32;
            if t >> shift == old >> shift {
                continue;
            }
            let slot = ((t >> shift) & 63) as usize;
            if self.occupied[k] & (1 << slot) != 0 {
                self.occupied[k] &= !(1 << slot);
                let mut entries = std::mem::take(&mut self.slots[k * SLOTS + slot]);
                for entry in entries.drain(..) {
                    debug_assert!(entry.t >= t, "cascade found an event in the past");
                    self.insert_entry(entry);
                }
                // Cascaded entries always land at a lower level (their
                // deadline shares the clock's level-k slot), so the slot is
                // still empty — hand its buffer back for reuse.
                self.slots[k * SLOTS + slot] = entries;
            }
        }
        if t >> SPAN_BITS != old >> SPAN_BITS {
            while let Some(Reverse((et, _, _))) = self.overflow.peek() {
                if et >> SPAN_BITS != t >> SPAN_BITS {
                    break;
                }
                let Reverse((et, _seq, idx)) = self.overflow.pop().expect("peeked");
                // Popped in (t, seq) order, so insertion order restores the
                // tie-break that wheel slots encode positionally.
                self.insert_entry(Entry { t: et, idx });
            }
        }
    }

    /// Drains the level-0 slot at the current index into `due`. Those
    /// entries are exactly at `now`: level-0 indices equal `t & 63`, and the
    /// slot only holds deadlines in the clock's current 64 µs window.
    fn drain_current_into_due(&mut self) {
        let cur = (self.now & 63) as usize;
        if self.occupied[0] & (1 << cur) != 0 {
            self.occupied[0] &= !(1 << cur);
            debug_assert!(self.slots[cur].iter().all(|e| e.t == self.now));
            if self.due_is_empty() {
                // The common case: claim the slot wholesale by buffer swap
                // (the emptied `due` buffer becomes the slot's next one).
                self.due.clear();
                self.due_head = 0;
                std::mem::swap(&mut self.due, &mut self.slots[cur]);
            } else {
                let EventQueue { due, slots, .. } = self;
                due.append(&mut slots[cur]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn drain<E>(q: &mut EventQueue<E>) -> Vec<(u64, E)> {
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop_due(SimTime::MAX) {
            out.push((t.as_micros(), e));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(500), "c");
        q.schedule(at(3), "a");
        q.schedule(at(70), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q), vec![(3, "a"), (70, "b"), (500, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(at(1_000), i);
        }
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stale_deadlines_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(at(100), "late");
        assert!(q.pop_due(SimTime::MAX).is_some());
        assert_eq!(q.now(), at(100));
        q.schedule(at(5), "stale");
        let (t, e) = q.pop_due(SimTime::MAX).unwrap();
        assert_eq!((t, e), (at(100), "stale"));
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(at(10), ());
        q.schedule(at(200), ());
        assert!(q.pop_due(at(100)).is_some());
        assert!(q.pop_due(at(100)).is_none());
        assert!(q.now() <= at(100));
        q.advance_to(at(100));
        // An event scheduled after a horizon miss still sorts correctly.
        q.schedule(at(150), ());
        let (t, ()) = q.pop_due(SimTime::MAX).unwrap();
        assert_eq!(t, at(150));
        let (t, ()) = q.pop_due(SimTime::MAX).unwrap();
        assert_eq!(t, at(200));
    }

    #[test]
    fn schedule_at_now_during_drain_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(at(50), 1u32);
        q.schedule(at(50), 2);
        let (t, e) = q.pop_due(SimTime::MAX).unwrap();
        assert_eq!((t.as_micros(), e), (50, 1));
        // Scheduled mid-dispatch at the current instant: runs after the
        // already-due entry, same time.
        q.schedule(q.now(), 3);
        assert_eq!(drain(&mut q), vec![(50, 2), (50, 3)]);
    }

    #[test]
    fn far_deadlines_cross_every_level_and_overflow() {
        let mut q = EventQueue::new();
        let span = 1u64 << SPAN_BITS;
        let times = [
            1,
            63,
            64,
            64 * 64 + 7,
            64 * 64 * 64 + 1,
            span - 1,
            span,
            span + 123,
            3 * span + 5,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(at(t), i);
        }
        let popped: Vec<u64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        let mut expect = times.to_vec();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let step = SimDuration::from_millis(7);
        let mut expected = 0u64;
        q.schedule(at(0), ());
        for _ in 0..1_000 {
            let (t, ()) = q.pop_due(SimTime::MAX).unwrap();
            assert_eq!(t.as_micros(), expected);
            expected += step.as_micros();
            q.schedule(q.now() + step, ());
        }
    }

    #[test]
    fn next_deadline_is_exact_across_levels() {
        let mut q = EventQueue::<u8>::new();
        assert_eq!(q.next_deadline(), None);
        q.schedule(at(64 * 64 + 9), 0);
        assert_eq!(q.next_deadline(), Some(at(64 * 64 + 9)));
        q.schedule(at(40), 1);
        assert_eq!(q.next_deadline(), Some(at(40)));
    }
}
