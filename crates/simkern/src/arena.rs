//! A slab arena for event payloads.
//!
//! Scheduler slots hold a compact `(time, seq, index)` triple instead of the
//! payload itself, so moving entries between wheel levels shifts 20-byte
//! records rather than full event structs. The payload lives here, addressed
//! by a stable `u32` index, and freed slots are recycled through a free list.

/// Arena-backed storage with O(1) insert/remove and index reuse.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `cap` payloads before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores a payload and returns its index.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none());
            self.slots[idx as usize] = Some(value);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena capacity exceeded u32");
            self.slots.push(Some(value));
            idx
        }
    }

    /// Removes and returns the payload at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is vacant — scheduler indices are handed out exactly
    /// once, so a vacant hit is a kernel bug, not a recoverable condition.
    pub fn remove(&mut self, idx: u32) -> T {
        let value = self.slots[idx as usize]
            .take()
            .expect("arena slot already vacated");
        self.len -= 1;
        self.free.push(idx);
        value
    }

    /// Number of live payloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no payloads are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.remove(a), "a");
        assert_eq!(arena.remove(b), "b");
        assert!(arena.is_empty());
    }

    #[test]
    fn indices_are_recycled() {
        let mut arena = Arena::new();
        let a = arena.insert(1u32);
        arena.remove(a);
        let b = arena.insert(2u32);
        assert_eq!(a, b, "freed slot must be reused before growing");
        assert_eq!(arena.remove(b), 2);
    }

    #[test]
    #[should_panic(expected = "already vacated")]
    fn double_remove_panics() {
        let mut arena = Arena::new();
        let a = arena.insert(());
        arena.remove(a);
        arena.remove(a);
    }
}
