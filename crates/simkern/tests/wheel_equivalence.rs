//! Property tests pinning the timing-wheel [`EventQueue`] to the reference
//! [`HeapQueue`] over arbitrary interleavings of schedule / pop / advance.
//!
//! Both queues promise the same contract — events pop in `(time, seq)`
//! order, the clock never runs backwards, horizons are respected — so any
//! program driven against both must observe identical `(time, event)`
//! sequences. The generated programs deliberately cover the wheel's edge
//! geometry: zero delays, deadlines exactly on slot and level boundaries,
//! and deadlines beyond the wheel span that land in the overflow heap.

use proptest::prelude::*;
use simkern::{EventQueue, HeapQueue, SimTime};

/// One step of a queue-driving program.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at `now + delay` µs.
    Schedule { delay: u64 },
    /// Pop up to `count` events with deadlines within `horizon` µs of now.
    Pop { count: usize, horizon: u64 },
    /// Advance the clock `ahead` µs past the last popped deadline.
    Advance { ahead: u64 },
}

/// Delays spanning every wheel regime: the current instant, the level-0
/// window, each higher level, the exact span boundary, and overflow.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        5 => 1u64..64,
        5 => 64u64..4096,
        4 => 4096u64..262_144,
        2 => 262_144u64..(1 << 24),
        1 => (1u64 << 30)..(1 << 37),
        1 => (1u64 << 36) - 2..(1u64 << 36) + 2,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => delay_strategy().prop_map(|delay| Op::Schedule { delay }),
        3 => (1usize..8, 0u64..100_000).prop_map(|(count, horizon)| Op::Pop { count, horizon }),
        1 => (0u64..50_000).prop_map(|ahead| Op::Advance { ahead }),
    ]
}

/// Runs `ops` against a queue via the shared API, logging every pop.
///
/// Pops use `now + horizon` as the limit and `Advance` moves to the popped
/// frontier plus `ahead` — both queues see the exact same call sequence, so
/// their logs must match entry for entry.
macro_rules! run_program {
    ($queue:expr, $ops:expr) => {{
        let mut q = $queue;
        let mut log: Vec<(u64, u32)> = Vec::new();
        let mut tag: u32 = 0;
        for op in $ops {
            match *op {
                Op::Schedule { delay } => {
                    let at = SimTime::from_micros(q.now().as_micros().saturating_add(delay));
                    q.schedule(at, tag);
                    tag += 1;
                }
                Op::Pop { count, horizon } => {
                    let limit = SimTime::from_micros(q.now().as_micros().saturating_add(horizon));
                    for _ in 0..count {
                        match q.pop_due(limit) {
                            Some((t, e)) => log.push((t.as_micros(), e)),
                            None => break,
                        }
                    }
                }
                Op::Advance { ahead } => {
                    // Drain everything due first so neither queue is asked
                    // to jump over pending events (a documented usage error
                    // for `advance_to`).
                    let target = SimTime::from_micros(q.now().as_micros().saturating_add(ahead));
                    while let Some((t, e)) = q.pop_due(target) {
                        log.push((t.as_micros(), e));
                    }
                    q.advance_to(target);
                }
            }
        }
        // Flush: every still-pending event must come out, in order.
        while let Some((t, e)) = q.pop_due(SimTime::MAX) {
            log.push((t.as_micros(), e));
        }
        assert!(q.is_empty());
        log
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The wheel and the heap observe identical pop sequences for any
    /// program of schedules, bounded pops and clock advances.
    #[test]
    fn wheel_is_order_equivalent_to_heap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let wheel_log = run_program!(EventQueue::<u32>::new(), &ops);
        let heap_log = run_program!(HeapQueue::<u32>::new(), &ops);
        prop_assert_eq!(wheel_log, heap_log);
    }

    /// Same-deadline events pop in schedule order even when they arrive via
    /// different routes (due list, wheel cascade, overflow migration).
    #[test]
    fn equal_deadline_bursts_preserve_seq_order(
        base in delay_strategy(),
        burst in 2usize..32,
        pre_pop in any::<bool>(),
    ) {
        let mut q = EventQueue::<usize>::new();
        // An earlier sentinel lets the clock advance before the burst pops,
        // exercising the cascade path rather than the direct due path.
        if pre_pop && base > 0 {
            q.schedule(SimTime::from_micros(base / 2), usize::MAX);
        }
        for i in 0..burst {
            q.schedule(SimTime::from_micros(base), i);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop_due(SimTime::MAX) {
            if e != usize::MAX {
                prop_assert_eq!(t.as_micros(), base);
                popped.push(e);
            }
        }
        prop_assert_eq!(popped, (0..burst).collect::<Vec<_>>());
    }

    /// `pop_due` never advances the clock past the horizon, and
    /// `next_deadline` always reports the exact next pop time.
    #[test]
    fn horizon_and_deadline_reporting(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut q = EventQueue::<u32>::new();
        let mut tag = 0u32;
        for op in &ops {
            match *op {
                Op::Schedule { delay } => {
                    q.schedule(SimTime::from_micros(q.now().as_micros().saturating_add(delay)), tag);
                    tag += 1;
                }
                Op::Pop { count, horizon } => {
                    let limit = SimTime::from_micros(q.now().as_micros().saturating_add(horizon));
                    for _ in 0..count {
                        let expected = q.next_deadline();
                        match q.pop_due(limit) {
                            Some((t, _)) => prop_assert_eq!(Some(t), expected),
                            None => {
                                if let Some(d) = expected {
                                    prop_assert!(d > limit);
                                }
                                break;
                            }
                        }
                        prop_assert!(q.now() <= limit);
                    }
                }
                Op::Advance { ahead } => {
                    let target = SimTime::from_micros(q.now().as_micros().saturating_add(ahead));
                    while q.pop_due(target).is_some() {}
                    q.advance_to(target);
                    prop_assert_eq!(q.now(), target);
                }
            }
        }
    }
}
