//! The checked scenario: a fleet-wide OLSR → DYMO switch committed
//! two-phase while the scheduler is free to reorder deliveries, drop
//! messages, and crash/reboot nodes.
//!
//! # The coordinator abstraction
//!
//! The real two-phase strategy ([`FleetCoordinator::execute`]
//! (manetkit::FleetCoordinator::execute) with `Strategy::TwoPhase`)
//! advances the world
//! itself (`run_for` + polling), which the controlled world forbids — the
//! checker owns the clock. The scenario therefore models the coordinator
//! as a *reaction function* with the same phase structure: after every
//! scheduled choice it re-reads the participants' statuses and decides
//! the same verdict the real coordinator would (commit when everyone
//! prepared, abort when anyone failed or died). The *decision* is
//! instantly reactive — the coordinator's polling latency is not a choice
//! point — but the **verdict transport is**: deciding fills a per-node
//! outbox, and each participant only learns the outcome when the
//! scheduler plays [`Choice::Verdict`] for it. That window — some nodes
//! told to commit while others still sit prepared — is exactly where
//! split-brain compositions would appear, so it must be schedulable.
//! Verdicts ride the in-process control channel (reliable), so they can
//! be delayed and reordered against everything else but not dropped.
//!
//! # The dedup abstraction
//!
//! [`TwoPhaseSwitch::fingerprint`] hashes the transaction-relevant
//! projection of the state: per-node liveness, transaction phase,
//! published composition hash, `txn.*` ledgers, queued verbs, the pending
//! message multiset (class/owner/sender, **not** absolute arrival times),
//! the coordinator phase and the spent budgets. Routing soft state
//! (neighbour tables, sequence numbers) is deliberately outside the
//! abstraction — it churns with every frame and cannot influence the
//! checked invariants, so folding it in would explode the state count
//! without adding discriminating power.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use manetkit::{structural_hash, NodeHandle, ReconfigOp, TxnCounters, TxnCtl};
use netsim::{NodeId, PendingClass, Topology, World};

use crate::explorer::Model;
use crate::invariant::{CoordPhase, NodeObs, Observation};
use crate::schedule::Choice;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Fleet size (full-mesh topology).
    pub nodes: usize,
    /// Crash budget: total crashes the scheduler may inject.
    pub max_crashes: u32,
    /// Drop budget: total message drops the scheduler may inject.
    pub max_drops: u32,
    /// World seed (link delays etc.; exploration is exhaustive per seed).
    pub seed: u64,
    /// Build the world with the flight recorder, so
    /// [`Model::timeline`] can export a counterexample timeline. Only
    /// effective with the `trace` feature.
    pub trace: bool,
    /// Arm the seeded mutation: nodes *claim* the doomed-transaction
    /// rollback after a crash but skip the unwind (see
    /// [`manetkit::ManetNode::set_skip_doomed_rollback`]). The checker
    /// must catch this.
    pub skip_doomed_rollback: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            nodes: 3,
            max_crashes: 2,
            max_drops: 3,
            seed: 7,
            trace: false,
            skip_doomed_rollback: false,
        }
    }
}

/// The OLSR → DYMO switch recipe (the same composition change the E14/E15
/// experiments commit).
#[must_use]
pub fn olsr_to_dymo() -> Vec<ReconfigOp> {
    vec![
        ReconfigOp::RemoveProtocol {
            name: "olsr".into(),
        },
        ReconfigOp::RemoveProtocol { name: "mpr".into() },
        ReconfigOp::MutateSystem {
            op: Box::new(|sys| {
                manetkit_dymo::register_messages(sys);
                sys.register_message(manetkit::neighbour::hello_registration());
            }),
        },
        ReconfigOp::AddProtocol(manetkit::neighbour::neighbour_detection_cf(
            Default::default(),
        )),
        ReconfigOp::AddProtocol(manetkit_dymo::dymo_cf(Default::default())),
    ]
}

/// The transaction id the scenario's single 2PC round uses.
const TXN_ID: u64 = 1;

/// A decided-but-undelivered coordinator verdict sitting in the outbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerdictKind {
    Commit,
    Abort,
}

/// A fleet mid-switch under a controlled scheduler. Implements
/// [`Model`]; build fresh instances via a closure over a
/// [`ScenarioConfig`] and hand them to an
/// [`Explorer`](crate::explorer::Explorer).
pub struct TwoPhaseSwitch {
    world: World,
    handles: Vec<NodeHandle>,
    cfg: ScenarioConfig,
    name: String,
    /// Structural hash every node starts from (the rollback target).
    baseline: u64,
    coord: CoordPhase,
    /// Decided verdicts not yet delivered — one slot per node, filled
    /// when the coordinator decides, emptied by [`Choice::Verdict`].
    outbox: Vec<Option<VerdictKind>>,
    crashes_used: u32,
    drops_used: u32,
}

impl TwoPhaseSwitch {
    /// Builds the initial state: a full-mesh OLSR fleet in controlled
    /// mode, agents started, `Prepare` verbs already queued at every
    /// node (processing them is the scheduler's business).
    #[must_use]
    pub fn new(cfg: ScenarioConfig) -> Self {
        let builder = World::builder()
            .topology(Topology::full(cfg.nodes))
            .seed(cfg.seed);
        #[cfg(feature = "trace")]
        let builder = if cfg.trace {
            builder.trace(1 << 14)
        } else {
            builder
        };
        let mut world = builder.build();
        world.set_controlled(true);
        let mut handles = Vec::new();
        let mut baseline = 0;
        for i in 0..cfg.nodes {
            let (mut node, handle) = manetkit_olsr::node(Default::default());
            node.set_publish_composition(true);
            if cfg.skip_doomed_rollback {
                node.set_skip_doomed_rollback(true);
            }
            baseline = structural_hash(node.deployment());
            handles.push(handle);
            world.install_agent(NodeId(i), Box::new(node));
        }
        let name = format!("olsr_to_dymo_{}", cfg.nodes);
        let outbox = vec![None; cfg.nodes];
        let mut s = TwoPhaseSwitch {
            world,
            handles,
            cfg,
            name,
            baseline,
            coord: CoordPhase::Preparing,
            outbox,
            crashes_used: 0,
            drops_used: 0,
        };
        // Start the agents (parked StartAgent infra events) so every node
        // has published a composition before the first choice.
        s.settle();
        // Phase 1: prepare everywhere. `quiesce_within: ZERO` is the
        // deterministic try-lock probe — no wall-clock budget can leak
        // host timing into the exploration.
        for h in &s.handles {
            h.txn_ctl(TxnCtl::Prepare {
                id: TXN_ID,
                ops: olsr_to_dymo(),
                requested: None,
                deadline: None,
                quiesce_within: Duration::ZERO,
            });
        }
        s
    }

    /// Drains everything that is not a scheduling choice: infrastructure
    /// events (agent starts after install/reboot) and behaviourally inert
    /// pending events (arrivals addressed to crashed nodes, timers from a
    /// previous boot epoch) — the world accounts them exactly as a free
    /// run would, and leaving them pending would only pollute the choice
    /// set and the fingerprint.
    fn settle(&mut self) {
        loop {
            let infra = self.world.run_controlled_infra();
            let dead: Vec<u64> = self
                .world
                .pending_controlled()
                .iter()
                .filter(|e| !e.live)
                .map(|e| e.id)
                .collect();
            let drained = dead.len();
            for id in dead {
                self.world.deliver_controlled(id);
            }
            if infra == 0 && drained == 0 {
                break;
            }
        }
    }

    /// One reaction step of the modelled coordinator, iterated to a fixed
    /// point (each step can advance at most one phase).
    fn react(&mut self) {
        loop {
            let before = self.coord;
            self.coord_step();
            if self.coord == before {
                break;
            }
        }
    }

    fn coord_step(&mut self) {
        match self.coord {
            CoordPhase::Preparing => {
                let mut all_prepared = true;
                let mut any_failed = false;
                for h in &self.handles {
                    let st = h.status();
                    if !st.alive {
                        // The real coordinator times the dead node out of
                        // its prepare window; the model reacts immediately.
                        any_failed = true;
                        continue;
                    }
                    match st.txn {
                        Some(r) if r.id == TXN_ID => match r.phase {
                            manetkit::TxnPhase::Prepared | manetkit::TxnPhase::Committed => {}
                            _ => any_failed = true,
                        },
                        _ => all_prepared = false,
                    }
                }
                if any_failed {
                    self.outbox = vec![Some(VerdictKind::Abort); self.cfg.nodes];
                    self.coord = CoordPhase::Aborting;
                } else if all_prepared {
                    self.outbox = vec![Some(VerdictKind::Commit); self.cfg.nodes];
                    self.coord = CoordPhase::Committing;
                }
            }
            CoordPhase::Committing => {
                if self.verdict_settled() {
                    self.coord = CoordPhase::Committed;
                }
            }
            CoordPhase::Aborting => {
                if self.verdict_settled() {
                    self.coord = CoordPhase::Aborted;
                }
            }
            CoordPhase::Committed | CoordPhase::Aborted => {}
        }
    }

    /// The coordinator's resolve-drain condition: every participant has
    /// either left `Prepared` or crashed (a dead participant counts as
    /// unresolved-but-drained, exactly like
    /// `FleetTxnReport::unresolved` — its own doomed rollback squares it
    /// with the fleet if it ever reboots).
    fn verdict_settled(&self) -> bool {
        self.handles.iter().all(|h| {
            let st = h.status();
            !st.alive
                || matches!(st.txn, Some(ref r) if r.id == TXN_ID
                    && r.phase != manetkit::TxnPhase::Prepared)
        })
    }

    /// Earliest live pending message on the `from → node` channel. The
    /// descriptor list is (time, id)-sorted, so "earliest" is the frame
    /// the radio would deliver first on that channel — per-channel FIFO.
    fn earliest_message(&self, node: usize, from: usize) -> Option<u64> {
        self.world
            .pending_controlled()
            .iter()
            .find(|e| {
                e.live
                    && e.node == NodeId(node)
                    && e.from == Some(NodeId(from))
                    && matches!(e.class, PendingClass::Control | PendingClass::Data)
            })
            .map(|e| e.id)
    }

    /// Delivers the outbox verdict for `node`: the participant's control
    /// queue receives the same verb the real coordinator would send. The
    /// verb is processed at the node's next quiescent point — delivery
    /// and processing stay separately schedulable.
    fn deliver_verdict(&mut self, node: usize) -> bool {
        let Some(kind) = self.outbox[node].take() else {
            return false;
        };
        self.handles[node].txn_ctl(match kind {
            VerdictKind::Commit => TxnCtl::Commit { id: TXN_ID },
            VerdictKind::Abort => TxnCtl::Abort {
                id: TXN_ID,
                reason: "peer_abort",
            },
        });
        true
    }

    /// Earliest live armed timer on `node`.
    fn earliest_timer(&self, node: usize) -> Option<u64> {
        self.world
            .pending_controlled()
            .iter()
            .find(|e| e.live && e.node == NodeId(node) && e.class == PendingClass::Timer)
            .map(|e| e.id)
    }
}

impl Model for TwoPhaseSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn enabled(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for node in 0..self.cfg.nodes {
            for from in 0..self.cfg.nodes {
                if from != node && self.earliest_message(node, from).is_some() {
                    out.push(Choice::Deliver { node, from });
                    if self.drops_used < self.cfg.max_drops {
                        out.push(Choice::Drop { node, from });
                    }
                }
            }
        }
        for node in 0..self.cfg.nodes {
            if self.earliest_timer(node).is_some() {
                out.push(Choice::Timer { node });
            }
        }
        for node in 0..self.cfg.nodes {
            if self.outbox[node].is_some() {
                out.push(Choice::Verdict { node });
            }
        }
        for node in 0..self.cfg.nodes {
            if self.world.node_up(NodeId(node)) {
                if self.crashes_used < self.cfg.max_crashes {
                    out.push(Choice::Crash { node });
                }
            } else {
                out.push(Choice::Reboot { node });
            }
        }
        out
    }

    fn apply(&mut self, choice: Choice) -> bool {
        let ok = match choice {
            Choice::Deliver { node, from } => self
                .earliest_message(node, from)
                .is_some_and(|id| self.world.deliver_controlled(id)),
            Choice::Drop { node, from } => {
                self.drops_used < self.cfg.max_drops
                    && self.earliest_message(node, from).is_some_and(|id| {
                        self.drops_used += 1;
                        self.world.drop_controlled(id)
                    })
            }
            Choice::Timer { node } => self
                .earliest_timer(node)
                .is_some_and(|id| self.world.deliver_controlled(id)),
            Choice::Verdict { node } => self.deliver_verdict(node),
            Choice::Crash { node } => {
                let up = self.world.node_up(NodeId(node));
                if up && self.crashes_used < self.cfg.max_crashes {
                    self.crashes_used += 1;
                    self.world.force_crash(NodeId(node));
                    true
                } else {
                    false
                }
            }
            Choice::Reboot { node } => {
                if self.world.node_up(NodeId(node)) {
                    false
                } else {
                    self.world.force_reboot(NodeId(node));
                    true
                }
            }
        };
        if ok {
            self.settle();
            self.react();
        }
        ok
    }

    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (i, handle) in self.handles.iter().enumerate() {
            let st = handle.status();
            self.world.node_up(NodeId(i)).hash(&mut h);
            match st.txn.as_ref().filter(|r| r.id == TXN_ID) {
                Some(r) => phase_code(r.phase).hash(&mut h),
                None => u8::MAX.hash(&mut h),
            }
            st.composition_hash.unwrap_or(0).hash(&mut h);
            let os = self.world.os(NodeId(i));
            for c in [
                "txn.prepared",
                "txn.committed",
                "txn.rolled_back",
                "txn.aborted",
                "txn.reverted",
                "txn.rollback_mismatch",
            ] {
                os.counter(c).hash(&mut h);
            }
            handle.pending_txn_ctl().hash(&mut h);
            handle.pending_ops().hash(&mut h);
        }
        // Pending multiset under the no-absolute-time abstraction. The
        // descriptor list is (at, id)-sorted, which is itself a
        // time-derived order — re-sort on time-free keys so two states
        // differing only in arrival timestamps collide.
        let mut pending: Vec<(u8, usize, usize, u64)> = self
            .world
            .pending_controlled()
            .iter()
            .map(|e| {
                let class = match e.class {
                    PendingClass::Control => 0u8,
                    PendingClass::Data => 1,
                    PendingClass::Timer => 2,
                    PendingClass::Infra => 3,
                };
                (
                    class,
                    e.node.0,
                    e.from.map_or(usize::MAX, |n| n.0),
                    e.detail,
                )
            })
            .collect();
        pending.sort_unstable();
        pending.hash(&mut h);
        coord_code(self.coord).hash(&mut h);
        for v in &self.outbox {
            match v {
                None => 0u8,
                Some(VerdictKind::Commit) => 1,
                Some(VerdictKind::Abort) => 2,
            }
            .hash(&mut h);
        }
        self.crashes_used.hash(&mut h);
        self.drops_used.hash(&mut h);
        h.finish()
    }

    fn observe(&self) -> Observation {
        let nodes: Vec<NodeObs> = (0..self.cfg.nodes)
            .map(|i| {
                let st = self.handles[i].status();
                let os = self.world.os(NodeId(i));
                NodeObs {
                    node: i,
                    alive: self.world.node_up(NodeId(i)),
                    phase: st.txn.as_ref().filter(|r| r.id == TXN_ID).map(|r| r.phase),
                    composition_hash: st.composition_hash,
                    counters: TxnCounters::from_lookup(|c| os.counter(c)),
                    rollback_mismatch: os.counter("txn.rollback_mismatch"),
                    pending_ctl: self.handles[i].pending_txn_ctl(),
                    verdict_in_flight: self.outbox[i].is_some(),
                }
            })
            .collect();
        let terminal = self.coord.is_done()
            && self.outbox.iter().all(Option::is_none)
            && nodes.iter().all(|n| {
                n.pending_ctl == 0
                    && matches!(n.phase, Some(p) if p != manetkit::TxnPhase::Prepared)
            });
        Observation {
            txn: TXN_ID,
            baseline_hash: self.baseline,
            coordinator: self.coord,
            terminal,
            nodes,
        }
    }

    #[cfg(feature = "trace")]
    fn timeline(&self) -> Option<String> {
        if !self.cfg.trace {
            return None;
        }
        // The counterexample timeline keeps the reconfiguration and
        // fault records — the story of the transaction — and drops the
        // per-frame chatter.
        use netsim::trace::TraceKind;
        let cut = self.world.trace().filter(|r| {
            r.kind.is_reconfig()
                || matches!(
                    r.kind,
                    TraceKind::Fault | TraceKind::NodeCrash | TraceKind::NodeReboot
                )
        });
        Some(cut.to_jsonl())
    }
}

/// Stable per-phase codes for the fingerprint (not `#[derive(Hash)]` on
/// the upstream enum, so reordering variants there cannot silently change
/// persisted fingerprints).
fn phase_code(p: manetkit::TxnPhase) -> u8 {
    match p {
        manetkit::TxnPhase::Prepared => 0,
        manetkit::TxnPhase::Committed => 1,
        manetkit::TxnPhase::Aborted => 2,
        manetkit::TxnPhase::RolledBack => 3,
        manetkit::TxnPhase::Reverted => 4,
    }
}

fn coord_code(c: CoordPhase) -> u8 {
    match c {
        CoordPhase::Preparing => 0,
        CoordPhase::Committing => 1,
        CoordPhase::Aborting => 2,
        CoordPhase::Committed => 3,
        CoordPhase::Aborted => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manetkit::TxnPhase;

    /// Drives every node's earliest timer once, in node order.
    fn tick_all(s: &mut TwoPhaseSwitch) {
        for node in 0..s.cfg.nodes {
            if s.earliest_timer(node).is_some() {
                assert!(s.apply(Choice::Timer { node }));
            }
        }
    }

    /// Delivers every decided-but-undelivered verdict, in node order.
    fn deliver_verdicts(s: &mut TwoPhaseSwitch) {
        for node in 0..s.cfg.nodes {
            if s.outbox[node].is_some() {
                assert!(s.apply(Choice::Verdict { node }));
            }
        }
    }

    #[test]
    fn undisturbed_run_commits_everywhere() {
        let mut s = TwoPhaseSwitch::new(ScenarioConfig::default());
        assert_eq!(s.coord, CoordPhase::Preparing);
        // First timer tick per node processes the Prepare verb.
        tick_all(&mut s);
        assert_eq!(s.coord, CoordPhase::Committing);
        // The commit verdicts reach every participant, and the next tick
        // processes them.
        deliver_verdicts(&mut s);
        tick_all(&mut s);
        assert_eq!(s.coord, CoordPhase::Committed);
        let obs = s.observe();
        assert!(obs.terminal, "{obs:?}");
        for n in &obs.nodes {
            assert_eq!(n.phase, Some(TxnPhase::Committed));
            let hash = n.composition_hash.expect("published");
            assert_ne!(hash, obs.baseline_hash, "the switch changed the stack");
        }
        for inv in crate::invariant::default_suite() {
            assert!(inv.check(&obs).is_ok(), "{}", inv.name());
        }
    }

    #[test]
    fn crash_during_prepare_aborts_and_rolls_back() {
        let mut s = TwoPhaseSwitch::new(ScenarioConfig::default());
        // Node 0 prepares, then dies; the coordinator reacts by aborting.
        assert!(s.apply(Choice::Timer { node: 0 }));
        assert!(s.apply(Choice::Crash { node: 0 }));
        assert_eq!(s.coord, CoordPhase::Aborting);
        // The abort verdicts go out (the dead node's verb queues up for
        // its next boot) and the survivors process Prepare then Abort.
        deliver_verdicts(&mut s);
        for _ in 0..2 {
            for node in 1..3 {
                assert!(s.apply(Choice::Timer { node }));
            }
        }
        assert_eq!(s.coord, CoordPhase::Aborted);
        // The dead node reboots: its doomed rollback runs at start-up.
        assert!(s.apply(Choice::Reboot { node: 0 }));
        let obs = s.observe();
        assert_eq!(obs.nodes[0].phase, Some(TxnPhase::RolledBack));
        assert_eq!(
            obs.nodes[0].composition_hash,
            Some(obs.baseline_hash),
            "rollback restored the checkpoint"
        );
        for inv in crate::invariant::default_suite() {
            assert!(inv.check(&obs).is_ok(), "{}", inv.name());
        }
    }

    #[test]
    fn replaying_the_same_choices_reproduces_the_fingerprint() {
        // Self-pacing script: at each step apply the last enabled choice
        // (crashes/reboots come last in the canonical order, so this
        // exercises the fault paths too), recording choice + fingerprint.
        let run = || {
            let mut s = TwoPhaseSwitch::new(ScenarioConfig::default());
            let mut log = vec![(None, s.fingerprint())];
            for _ in 0..8 {
                let c = *s.enabled().last().expect("some choice enabled");
                assert!(s.apply(c), "{c}");
                log.push((Some(c), s.fingerprint()));
            }
            log
        };
        assert_eq!(run(), run(), "choices and fingerprints replay identically");
    }

    #[test]
    fn idle_timer_cycles_collapse_under_the_abstraction() {
        let mut s = TwoPhaseSwitch::new(ScenarioConfig::default());
        tick_all(&mut s);
        deliver_verdicts(&mut s);
        tick_all(&mut s);
        assert_eq!(s.coord, CoordPhase::Committed);
        // Deliver all in-flight hellos, then let the fleet idle: fire
        // every timer and deliver every hello for a few rounds. Committed
        // quiescent states must revisit a previously seen fingerprint —
        // otherwise exploration of the post-transaction orbit would never
        // close.
        let mut seen = std::collections::HashSet::new();
        let mut collided = false;
        for _ in 0..6 {
            tick_all(&mut s);
            for node in 0..3 {
                for from in 0..3 {
                    while let Some(id) = s.earliest_message(node, from) {
                        s.world.deliver_controlled(id);
                    }
                }
            }
            s.settle();
            if !seen.insert(s.fingerprint()) {
                collided = true;
                break;
            }
        }
        assert!(collided, "the idle orbit never revisited a state");
    }
}
