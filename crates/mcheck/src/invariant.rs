//! Safety invariants checked at every explored state.
//!
//! An [`Invariant`] sees an [`Observation`] — the transaction-level
//! abstraction of one world state — and either passes or returns a
//! violation message. The three core invariants mirror the guarantees the
//! transactional reconfiguration engine claims:
//!
//! * [`CounterConservation`] — the `prepared == committed + rolled_back`
//!   ledger (the reusable law from `manetkit::txn::invariants`), per node,
//!   with an open-transaction allowance.
//! * [`RollbackExactness`] — a node whose transaction aborted, rolled back
//!   or reverted is structurally identical to its checkpoint.
//! * [`NoSplitBrain`] — at no observable point do two *different*
//!   committed compositions coexist on live nodes.
//!
//! [`StuckResolution`] is the liveness-ish companion: once the coordinator
//! has resolved the transaction, no live node may be wedged in `Prepared`
//! with nothing in flight that could ever resolve it.

use manetkit::{TxnCounters, TxnPhase};
use std::collections::BTreeSet;

/// Where the modelled coordinator stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordPhase {
    /// Prepare verbs sent; waiting for every participant to prepare.
    Preparing,
    /// Commit verbs sent; waiting for participants to commit.
    Committing,
    /// Abort verbs sent; waiting for participants to roll back.
    Aborting,
    /// Resolved: the transaction committed fleet-wide.
    Committed,
    /// Resolved: the transaction aborted fleet-wide.
    Aborted,
}

impl CoordPhase {
    /// Whether the coordinator has reached a verdict.
    #[must_use]
    pub fn is_done(self) -> bool {
        matches!(self, CoordPhase::Committed | CoordPhase::Aborted)
    }
}

/// The transaction-level abstraction of one node at one state.
#[derive(Debug, Clone)]
pub struct NodeObs {
    /// Node id.
    pub node: usize,
    /// Whether the node is up.
    pub alive: bool,
    /// The node's latest report for the checked transaction (`None` until
    /// it first processes a verb for it).
    pub phase: Option<TxnPhase>,
    /// Published structural hash of the node's live composition (`None`
    /// until the node publishes its first status).
    pub composition_hash: Option<u64>,
    /// The node's `txn.prepared`/`txn.committed`/`txn.rolled_back` ledger.
    pub counters: TxnCounters,
    /// The node's `txn.rollback_mismatch` counter: unwinds whose result
    /// did not verify byte-identical to the checkpoint.
    pub rollback_mismatch: u64,
    /// Control verbs queued at the node but not yet processed.
    pub pending_ctl: usize,
    /// A coordinator verdict for this node has been decided but not yet
    /// delivered (it sits in the coordinator's outbox). The node can
    /// still be resolved, so it is not stuck.
    pub verdict_in_flight: bool,
}

/// The transaction-level abstraction of one explored state.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The transaction id under test.
    pub txn: u64,
    /// Structural hash of the pre-transaction composition every node
    /// started from.
    pub baseline_hash: u64,
    /// Modelled coordinator phase.
    pub coordinator: CoordPhase,
    /// Whether the state is terminal: coordinator resolved, every node's
    /// report resolved, no unprocessed verbs.
    pub terminal: bool,
    /// Per-node observations, in node-id order.
    pub nodes: Vec<NodeObs>,
}

/// A safety property over [`Observation`]s, checked at every explored
/// state. Implementations must be pure: same observation, same verdict —
/// the explorer checks each deduplicated state exactly once.
pub trait Invariant {
    /// Stable name, used in violation reports and counterexample files.
    fn name(&self) -> &'static str;

    /// Checks the observation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    fn check(&self, obs: &Observation) -> Result<(), String>;
}

/// Per-node `prepared == committed + rolled_back (+ open)` conservation,
/// delegating the law itself to [`manetkit::TxnCounters::conservation`] —
/// the same helper the engine's property tests assert.
#[derive(Debug, Default)]
pub struct CounterConservation;

impl Invariant for CounterConservation {
    fn name(&self) -> &'static str {
        "counter_conservation"
    }

    fn check(&self, obs: &Observation) -> Result<(), String> {
        for n in &obs.nodes {
            // A node reporting `Prepared` holds exactly one open
            // transaction (crashed nodes included: the prepared state
            // survives in memory and is doomed-rolled-back on reboot).
            let open = u64::from(n.phase == Some(TxnPhase::Prepared));
            n.counters
                .conservation(open)
                .map_err(|v| format!("node {}: {v}", n.node))?;
        }
        Ok(())
    }
}

/// A node that reports its transaction aborted, rolled back or reverted
/// must be structurally identical to the checkpoint: its published
/// composition hash equals the baseline and no unwind ever failed
/// fingerprint verification.
#[derive(Debug, Default)]
pub struct RollbackExactness;

impl Invariant for RollbackExactness {
    fn name(&self) -> &'static str {
        "rollback_exactness"
    }

    fn check(&self, obs: &Observation) -> Result<(), String> {
        for n in &obs.nodes {
            if !n.alive {
                // A crashed node's published status is stale by
                // definition; it is re-checked once it reboots and
                // publishes again.
                continue;
            }
            let rolled_back = matches!(
                n.phase,
                Some(TxnPhase::Aborted | TxnPhase::RolledBack | TxnPhase::Reverted)
            );
            if !rolled_back {
                continue;
            }
            if n.rollback_mismatch > 0 {
                return Err(format!(
                    "node {}: {} unwind(s) failed fingerprint verification",
                    n.node, n.rollback_mismatch
                ));
            }
            match n.composition_hash {
                Some(h) if h == obs.baseline_hash => {}
                Some(h) => {
                    let phase = n.phase.expect("matched a resolved phase above");
                    return Err(format!(
                        "node {}: reports {phase} but composition hash {h:#018x} != checkpoint {:#018x}",
                        n.node, obs.baseline_hash
                    ));
                }
                None => {
                    return Err(format!(
                        "node {}: reports a resolved transaction but never published a composition",
                        n.node
                    ));
                }
            }
        }
        Ok(())
    }
}

/// No two *different* committed compositions may be alive at once, and a
/// committed composition must actually differ from the checkpoint (a
/// commit that changed nothing means the switch was silently lost).
///
/// The engine's documented post-crash wrinkle is tolerated by
/// construction: a participant that crashes after preparing and reboots
/// after the fleet committed rolls its copy back and reports
/// `RolledBack`, not `Committed`, so it does not enter this check.
#[derive(Debug)]
pub struct NoSplitBrain {
    /// Require committed compositions to differ from the baseline.
    pub expect_changed: bool,
}

impl Default for NoSplitBrain {
    fn default() -> Self {
        NoSplitBrain {
            expect_changed: true,
        }
    }
}

impl Invariant for NoSplitBrain {
    fn name(&self) -> &'static str {
        "no_split_brain"
    }

    fn check(&self, obs: &Observation) -> Result<(), String> {
        let mut hashes = BTreeSet::new();
        for n in &obs.nodes {
            if !n.alive || n.phase != Some(TxnPhase::Committed) {
                continue;
            }
            let h = n.composition_hash.ok_or_else(|| {
                format!(
                    "node {}: committed but never published a composition",
                    n.node
                )
            })?;
            if self.expect_changed && h == obs.baseline_hash {
                return Err(format!(
                    "node {}: committed composition is identical to the checkpoint",
                    n.node
                ));
            }
            hashes.insert(h);
        }
        if hashes.len() > 1 {
            return Err(format!(
                "{} distinct committed compositions alive at once",
                hashes.len()
            ));
        }
        Ok(())
    }
}

/// Liveness-ish: once the coordinator has resolved the transaction, a live
/// node still reporting `Prepared` with an empty verb queue *and no
/// verdict on its way* can never resolve — its commit/abort verb was
/// lost, which the delivery model makes impossible (verbs ride the
/// handle, not the radio, and verdicts wait in the coordinator's outbox
/// until delivered). The outbox clause matters: a node that crashed
/// before preparing and reboots after the fleet resolved processes its
/// still-queued `Prepare` and sits legitimately prepared until its
/// verdict arrives.
#[derive(Debug, Default)]
pub struct StuckResolution;

impl Invariant for StuckResolution {
    fn name(&self) -> &'static str {
        "stuck_resolution"
    }

    fn check(&self, obs: &Observation) -> Result<(), String> {
        if !obs.coordinator.is_done() {
            return Ok(());
        }
        for n in &obs.nodes {
            if n.alive
                && n.phase == Some(TxnPhase::Prepared)
                && n.pending_ctl == 0
                && !n.verdict_in_flight
            {
                return Err(format!(
                    "node {}: coordinator resolved txn {} but the node is wedged in prepared with no verb in flight",
                    n.node, obs.txn
                ));
            }
        }
        Ok(())
    }
}

/// The default invariant suite the experiments run.
#[must_use]
pub fn default_suite() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(CounterConservation),
        Box::new(RollbackExactness),
        Box::new(NoSplitBrain::default()),
        Box::new(StuckResolution),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize) -> NodeObs {
        NodeObs {
            node: id,
            alive: true,
            phase: None,
            composition_hash: Some(1),
            counters: TxnCounters::default(),
            rollback_mismatch: 0,
            pending_ctl: 0,
            verdict_in_flight: false,
        }
    }

    fn obs(nodes: Vec<NodeObs>) -> Observation {
        Observation {
            txn: 1,
            baseline_hash: 1,
            coordinator: CoordPhase::Preparing,
            terminal: false,
            nodes,
        }
    }

    #[test]
    fn conservation_flags_a_lost_rollback() {
        let mut n = node(0);
        n.phase = Some(TxnPhase::RolledBack);
        n.counters = TxnCounters {
            prepared: 1,
            committed: 0,
            rolled_back: 0,
        };
        let err = CounterConservation.check(&obs(vec![n])).unwrap_err();
        assert!(err.contains("node 0"), "{err}");
        assert!(err.contains("prepared 1"), "{err}");
    }

    #[test]
    fn conservation_allows_an_open_transaction() {
        let mut n = node(0);
        n.phase = Some(TxnPhase::Prepared);
        n.counters = TxnCounters {
            prepared: 1,
            committed: 0,
            rolled_back: 0,
        };
        assert!(CounterConservation.check(&obs(vec![n])).is_ok());
    }

    #[test]
    fn exactness_flags_a_divergent_rollback() {
        let mut n = node(0);
        n.phase = Some(TxnPhase::RolledBack);
        n.composition_hash = Some(99);
        let err = RollbackExactness.check(&obs(vec![n])).unwrap_err();
        assert!(err.contains("checkpoint"), "{err}");
    }

    #[test]
    fn split_brain_flags_two_committed_compositions() {
        let mut a = node(0);
        a.phase = Some(TxnPhase::Committed);
        a.composition_hash = Some(2);
        let mut b = node(1);
        b.phase = Some(TxnPhase::Committed);
        b.composition_hash = Some(3);
        let err = NoSplitBrain::default().check(&obs(vec![a, b])).unwrap_err();
        assert!(err.contains("2 distinct"), "{err}");
    }

    #[test]
    fn stuck_resolution_needs_a_done_coordinator() {
        let mut n = node(0);
        n.phase = Some(TxnPhase::Prepared);
        let mut o = obs(vec![n]);
        assert!(StuckResolution.check(&o).is_ok(), "still preparing");
        o.coordinator = CoordPhase::Committed;
        assert!(StuckResolution.check(&o).is_err(), "wedged after verdict");
        o.nodes[0].pending_ctl = 1;
        assert!(StuckResolution.check(&o).is_ok(), "verb still in flight");
        o.nodes[0].pending_ctl = 0;
        o.nodes[0].verdict_in_flight = true;
        assert!(StuckResolution.check(&o).is_ok(), "verdict still in outbox");
    }
}
