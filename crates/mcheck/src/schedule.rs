//! Schedules: the serialized form of one explored interleaving.
//!
//! A schedule is a sequence of [`Choice`]s — the exact decisions the
//! explorer made at every nondeterministic point. Because the controlled
//! world is deterministic given the same choice sequence, a schedule *is* a
//! state: replaying it from a fresh world reconstructs the state it led
//! to. Counterexamples are therefore shipped as schedule files
//! ([`Schedule::to_jsonl`], byte-stable) that re-execute the violating
//! interleaving through the normal `World`, not through any
//! checker-internal snapshot format.

use std::fmt;

/// One scheduling decision at a nondeterministic choice point.
///
/// Message choices address the **earliest pending** message on a
/// *channel* — one `from → node` sender/destination pair. Messages on the
/// same channel stay FIFO (the radio does not reorder one sender's frames
/// to one receiver): that is the partial-order reduction. Messages from
/// different senders interleave freely at a destination, arrivals at
/// different destinations interleave freely, and any message can be
/// dropped instead of delivered while the drop budget lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Deliver the earliest pending message on the `from → node` channel.
    Deliver {
        /// Destination node.
        node: usize,
        /// Sending node.
        from: usize,
    },
    /// Drop the earliest pending message on the `from → node` channel
    /// (consumes one unit of the drop budget).
    Drop {
        /// Destination node.
        node: usize,
        /// Sending node.
        from: usize,
    },
    /// Fire the earliest armed timer on `node`.
    Timer {
        /// Owning node.
        node: usize,
    },
    /// Deliver the coordinator's pending 2PC verdict (commit or abort) to
    /// `node`. Verdicts travel the in-process control channel — reliable,
    /// so not droppable — but *when* each participant learns the outcome
    /// is the scheduler's call: this is the window where split-brain
    /// compositions would live.
    Verdict {
        /// Receiving node.
        node: usize,
    },
    /// Crash `node` (consumes one unit of the crash budget).
    Crash {
        /// Crashing node.
        node: usize,
    },
    /// Reboot the crashed `node`.
    Reboot {
        /// Rebooting node.
        node: usize,
    },
}

impl Choice {
    /// Stable operation name (the JSONL `op` value).
    #[must_use]
    pub fn op(self) -> &'static str {
        match self {
            Choice::Deliver { .. } => "deliver",
            Choice::Drop { .. } => "drop",
            Choice::Timer { .. } => "timer",
            Choice::Verdict { .. } => "verdict",
            Choice::Crash { .. } => "crash",
            Choice::Reboot { .. } => "reboot",
        }
    }

    /// The node the choice acts on (the destination, for message
    /// choices).
    #[must_use]
    pub fn node(self) -> usize {
        match self {
            Choice::Deliver { node, .. }
            | Choice::Drop { node, .. }
            | Choice::Timer { node }
            | Choice::Verdict { node }
            | Choice::Crash { node }
            | Choice::Reboot { node } => node,
        }
    }

    /// The sending node, for message choices.
    #[must_use]
    pub fn from(self) -> Option<usize> {
        match self {
            Choice::Deliver { from, .. } | Choice::Drop { from, .. } => Some(from),
            Choice::Timer { .. }
            | Choice::Verdict { .. }
            | Choice::Crash { .. }
            | Choice::Reboot { .. } => None,
        }
    }

    /// Rebuilds a choice from its stable name, node and (for message
    /// choices) sender.
    #[must_use]
    pub fn parse(op: &str, node: usize, from: Option<usize>) -> Option<Choice> {
        Some(match (op, from) {
            ("deliver", Some(from)) => Choice::Deliver { node, from },
            ("drop", Some(from)) => Choice::Drop { node, from },
            ("timer", None) => Choice::Timer { node },
            ("verdict", None) => Choice::Verdict { node },
            ("crash", None) => Choice::Crash { node },
            ("reboot", None) => Choice::Reboot { node },
            _ => return None,
        })
    }
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from() {
            Some(from) => write!(f, "{}@{}<-{}", self.op(), self.node(), from),
            None => write!(f, "{}@{}", self.op(), self.node()),
        }
    }
}

/// A replayable interleaving: the scenario it belongs to plus the ordered
/// choice sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Name of the scenario the schedule replays against (sanity-checked
    /// at replay time; the format carries it so a schedule file is
    /// self-describing).
    pub scenario: String,
    /// The ordered choices.
    pub choices: Vec<Choice>,
}

impl Schedule {
    /// Byte-stable JSONL serialization: a header line
    /// (`{"v":1,"format":"mcheck-schedule",...}`) followed by one line per
    /// step, fixed key order, no whitespace.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(64 + self.choices.len() * 40);
        let _ = writeln!(
            out,
            "{{\"v\":1,\"format\":\"mcheck-schedule\",\"scenario\":\"{}\",\"steps\":{}}}",
            self.scenario,
            self.choices.len()
        );
        for (i, c) in self.choices.iter().enumerate() {
            match c.from() {
                Some(from) => {
                    let _ = writeln!(
                        out,
                        "{{\"step\":{},\"op\":\"{}\",\"node\":{},\"from\":{}}}",
                        i,
                        c.op(),
                        c.node(),
                        from
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{{\"step\":{},\"op\":\"{}\",\"node\":{}}}",
                        i,
                        c.op(),
                        c.node()
                    );
                }
            }
        }
        out
    }

    /// Parses a schedule produced by [`Schedule::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message on a malformed header, step line,
    /// unknown op, out-of-order step index, or step-count mismatch.
    pub fn from_jsonl(s: &str) -> Result<Schedule, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| "empty schedule".to_string())?;
        if !header.contains("\"format\":\"mcheck-schedule\"") {
            return Err("line 1: not an mcheck-schedule header".to_string());
        }
        let scenario = str_field(header, "scenario")
            .ok_or_else(|| "line 1: header missing \"scenario\"".to_string())?;
        let steps = num_field(header, "steps")
            .ok_or_else(|| "line 1: header missing \"steps\"".to_string())?;
        let mut choices = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let step = num_field(line, "step")
                .ok_or_else(|| format!("line {lineno}: missing \"step\""))?;
            if step != choices.len() {
                return Err(format!(
                    "line {lineno}: step {step} out of order (expected {})",
                    choices.len()
                ));
            }
            let op =
                str_field(line, "op").ok_or_else(|| format!("line {lineno}: missing \"op\""))?;
            let node = num_field(line, "node")
                .ok_or_else(|| format!("line {lineno}: missing \"node\""))?;
            let from = num_field(line, "from");
            let choice = Choice::parse(&op, node, from)
                .ok_or_else(|| format!("line {lineno}: bad op/from combination {op:?}"))?;
            choices.push(choice);
        }
        if choices.len() != steps {
            return Err(format!(
                "header promised {steps} steps, found {}",
                choices.len()
            ));
        }
        Ok(Schedule { scenario, choices })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule[{}]", self.scenario)?;
        for c in &self.choices {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// Extracts `"key":"value"` from a flat one-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key":number` from a flat one-line JSON object.
fn num_field(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            scenario: "olsr_to_dymo_3".to_string(),
            choices: vec![
                Choice::Timer { node: 0 },
                Choice::Deliver { node: 2, from: 0 },
                Choice::Drop { node: 1, from: 2 },
                Choice::Verdict { node: 1 },
                Choice::Crash { node: 0 },
                Choice::Reboot { node: 0 },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let s = sample();
        let jsonl = s.to_jsonl();
        let back = Schedule::from_jsonl(&jsonl).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.to_jsonl(), jsonl, "serialization is byte-stable");
    }

    #[test]
    fn parser_rejects_tampered_files() {
        let s = sample();
        let jsonl = s.to_jsonl();
        let no_header = jsonl.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(Schedule::from_jsonl(&no_header).is_err());
        let bad_op = jsonl.replace("\"op\":\"crash\"", "\"op\":\"meltdown\"");
        assert!(Schedule::from_jsonl(&bad_op)
            .unwrap_err()
            .contains("meltdown"));
        let truncated: String = jsonl.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(Schedule::from_jsonl(&truncated)
            .unwrap_err()
            .contains("promised 6 steps"));
    }
}
