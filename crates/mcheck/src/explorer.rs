//! The bounded state-graph explorer.
//!
//! The checker is **replay-based** (stateless-model-checking style): a
//! controlled [`World`](netsim::World) cannot be cloned, so an explored
//! state is represented by the schedule prefix that leads to it, and
//! visiting a state means replaying its prefix through a fresh model built
//! by the factory. Determinism of the controlled world makes replay exact:
//! same prefix, same state, same pending-event ids.
//!
//! The frontier holds schedule prefixes; popping one replays it, hashes
//! the resulting state into the dedup set, runs every [`Invariant`], and —
//! unless the state is terminal, at the depth bound, or pruned — pushes
//! one extended prefix per enabled [`Choice`]. A [`Vec`]-backed pop from
//! the tail gives DFS, a pop from the head gives BFS; BFS is the default
//! because with hash dedup it visits every state at its *shallowest*
//! depth, so no state is ever dropped for depth reasons that a shorter
//! path could have reached.

use std::collections::{HashSet, VecDeque};

use crate::invariant::{Invariant, Observation};
use crate::schedule::{Choice, Schedule};

/// A system the explorer can drive: deterministic, rebuildable from
/// nothing, with enumerable choice points.
pub trait Model {
    /// Scenario name, recorded in schedules.
    fn name(&self) -> &str;

    /// The choices enabled at the current state, in a canonical order
    /// (the order is part of the exploration determinism).
    fn enabled(&self) -> Vec<Choice>;

    /// Applies one choice. Returns `false` if the choice is not enabled
    /// (only reachable by replaying a foreign or stale schedule).
    fn apply(&mut self, choice: Choice) -> bool;

    /// A collision-resistant digest of the current state under the
    /// checker's abstraction, used for dedup. Must not incorporate
    /// absolute virtual time (states differing only by elapsed idle time
    /// must collide).
    fn fingerprint(&self) -> u64;

    /// The transaction-level observation invariants are checked against.
    fn observe(&self) -> Observation;

    /// A trace-crate timeline of everything that happened so far
    /// (`None` when the model was built without the flight recorder).
    fn timeline(&self) -> Option<String> {
        None
    }
}

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Depth-first: low memory, finds deep violations fast.
    Dfs,
    /// Breadth-first: shortest counterexamples, depth-optimal dedup.
    #[default]
    Bfs,
}

/// One invariant violation, with the schedule that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable description.
    pub detail: String,
    /// Depth (schedule length) at which it was found.
    pub depth: usize,
    /// The replayable schedule reaching the violating state.
    pub schedule: Schedule,
}

/// Exploration statistics and outcome.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// States visited (schedule prefixes replayed).
    pub states_explored: u64,
    /// States that survived dedup and were invariant-checked.
    pub states_unique: u64,
    /// States whose fingerprint had already been seen.
    pub dedup_hits: u64,
    /// Unique states that were terminal (transaction fully resolved).
    pub terminal_states: u64,
    /// Unique states cut off by the depth bound.
    pub bound_hits: u64,
    /// Unique states cut off by the pruning hook.
    pub pruned: u64,
    /// Deepest unique state reached.
    pub max_depth: usize,
    /// Whether the state cap stopped exploration before the frontier
    /// drained.
    pub truncated: bool,
    /// Violations found (at most one unless `keep_going` was set).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Whether every explored path ended in a terminal state — i.e. the
    /// bounded exploration was actually exhaustive for this scenario and
    /// the transaction resolved on every interleaving (the liveness-ish
    /// complement to the safety invariants).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        !self.truncated && self.bound_hits == 0 && self.pruned == 0
    }
}

/// A counterexample in its two exported forms.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Byte-stable schedule file replaying the violating interleaving
    /// through the normal `World` (see [`Schedule::to_jsonl`]).
    pub schedule_jsonl: String,
    /// Byte-stable trace-crate timeline of the violating run (empty when
    /// the model has no flight recorder).
    pub timeline_jsonl: String,
}

/// A pruning hook: observation + schedule prefix → skip this subtree?
type PruneHook = Box<dyn Fn(&Observation, &[Choice]) -> bool>;

/// The bounded model checker.
pub struct Explorer<M: Model> {
    factory: Box<dyn Fn() -> M>,
    invariants: Vec<Box<dyn Invariant>>,
    strategy: Strategy,
    depth_bound: usize,
    max_states: u64,
    stop_at_first: bool,
    prune: Option<PruneHook>,
}

impl<M: Model> Explorer<M> {
    /// An explorer over fresh models built by `factory`: BFS, depth bound
    /// 20, no state cap, stop at the first violation, no pruning, no
    /// invariants (add them with [`Explorer::invariant`]).
    pub fn new(factory: impl Fn() -> M + 'static) -> Self {
        Explorer {
            factory: Box::new(factory),
            invariants: Vec::new(),
            strategy: Strategy::default(),
            depth_bound: 20,
            max_states: u64::MAX,
            stop_at_first: true,
            prune: None,
        }
    }

    /// Adds an invariant to check at every unique state.
    #[must_use]
    pub fn invariant(mut self, inv: impl Invariant + 'static) -> Self {
        self.invariants.push(Box::new(inv));
        self
    }

    /// Adds a whole invariant suite (e.g.
    /// [`default_suite`](crate::invariant::default_suite)).
    #[must_use]
    pub fn invariants(mut self, invs: Vec<Box<dyn Invariant>>) -> Self {
        self.invariants.extend(invs);
        self
    }

    /// Sets the frontier discipline.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the schedule-length bound.
    #[must_use]
    pub fn depth_bound(mut self, depth: usize) -> Self {
        self.depth_bound = depth;
        self
    }

    /// Caps the number of states visited (smoke-test budget).
    #[must_use]
    pub fn max_states(mut self, max: u64) -> Self {
        self.max_states = max;
        self
    }

    /// Collect every violation instead of stopping at the first.
    #[must_use]
    pub fn keep_going(mut self) -> Self {
        self.stop_at_first = false;
        self
    }

    /// Installs a pruning hook: called at every unique non-terminal state
    /// with its observation and schedule prefix; returning `true` skips
    /// expanding the state's successors (the state itself is still
    /// counted and invariant-checked).
    #[must_use]
    pub fn prune(mut self, hook: impl Fn(&Observation, &[Choice]) -> bool + 'static) -> Self {
        self.prune = Some(Box::new(hook));
        self
    }

    /// Rebuilds the state a schedule leads to by replaying it through a
    /// fresh model.
    ///
    /// # Errors
    ///
    /// Returns the offending step index when a choice is not enabled —
    /// the schedule belongs to a different scenario or code version.
    pub fn replay(&self, schedule: &Schedule) -> Result<M, String> {
        let mut model = (self.factory)();
        if schedule.scenario != model.name() {
            return Err(format!(
                "schedule is for scenario {:?}, model is {:?}",
                schedule.scenario,
                model.name()
            ));
        }
        for (i, &c) in schedule.choices.iter().enumerate() {
            if !model.apply(c) {
                return Err(format!("step {i}: choice {c} not applicable"));
            }
        }
        Ok(model)
    }

    /// Replays a violating schedule and packages both counterexample
    /// artifacts. Build the explorer with a *traced* factory to get a
    /// non-empty timeline.
    ///
    /// # Errors
    ///
    /// Propagates [`Explorer::replay`] errors.
    pub fn counterexample(&self, schedule: &Schedule) -> Result<Counterexample, String> {
        let model = self.replay(schedule)?;
        Ok(Counterexample {
            schedule_jsonl: schedule.to_jsonl(),
            timeline_jsonl: model.timeline().unwrap_or_default(),
        })
    }

    /// Explores the bounded state graph, checking every invariant at every
    /// unique state.
    #[must_use]
    pub fn run(&self) -> ExploreReport {
        let mut report = ExploreReport::default();
        self.walk(|_, _| false, &mut report);
        report
    }

    /// Directed search: explores until `goal` returns `true` for some
    /// unique state, returning the schedule that reaches it. Use BFS for
    /// a shortest such schedule. Invariants are still checked along the
    /// way (their violations land in the discarded report; use
    /// [`Explorer::run`] to audit them).
    #[must_use]
    pub fn find(&self, goal: impl Fn(&Observation) -> bool) -> Option<Schedule> {
        let mut report = ExploreReport::default();
        self.walk(|obs, _| goal(obs), &mut report)
            .map(|(name, choices)| Schedule {
                scenario: name,
                choices,
            })
    }

    /// The shared exploration loop. `stop` is consulted at every unique
    /// state; returning `true` ends the walk with that state's prefix.
    fn walk(
        &self,
        stop: impl Fn(&Observation, &[Choice]) -> bool,
        report: &mut ExploreReport,
    ) -> Option<(String, Vec<Choice>)> {
        let mut frontier: VecDeque<Vec<Choice>> = VecDeque::new();
        frontier.push_back(Vec::new());
        let mut seen: HashSet<u64> = HashSet::new();
        while let Some(prefix) = match self.strategy {
            Strategy::Dfs => frontier.pop_back(),
            Strategy::Bfs => frontier.pop_front(),
        } {
            if report.states_explored >= self.max_states {
                report.truncated = true;
                break;
            }
            report.states_explored += 1;
            let mut model = (self.factory)();
            let mut replay_ok = true;
            for &c in &prefix {
                if !model.apply(c) {
                    // Enabled sets are computed one step before the replay,
                    // so this indicates a nondeterministic model — surface
                    // it loudly rather than exploring garbage.
                    replay_ok = false;
                    break;
                }
            }
            assert!(replay_ok, "replay diverged: model is not deterministic");
            if !seen.insert(model.fingerprint()) {
                report.dedup_hits += 1;
                continue;
            }
            report.states_unique += 1;
            report.max_depth = report.max_depth.max(prefix.len());
            let obs = model.observe();
            for inv in &self.invariants {
                if let Err(detail) = inv.check(&obs) {
                    report.violations.push(Violation {
                        invariant: inv.name(),
                        detail,
                        depth: prefix.len(),
                        schedule: Schedule {
                            scenario: model.name().to_string(),
                            choices: prefix.clone(),
                        },
                    });
                    if self.stop_at_first {
                        return None;
                    }
                }
            }
            if stop(&obs, &prefix) {
                return Some((model.name().to_string(), prefix));
            }
            if obs.terminal {
                report.terminal_states += 1;
                continue;
            }
            if prefix.len() >= self.depth_bound {
                report.bound_hits += 1;
                continue;
            }
            if let Some(hook) = &self.prune {
                if hook(&obs, &prefix) {
                    report.pruned += 1;
                    continue;
                }
            }
            for c in model.enabled() {
                let mut child = prefix.clone();
                child.push(c);
                frontier.push_back(child);
            }
        }
        None
    }
}
