//! `mcheck` — a bounded model checker for transactional reconfiguration.
//!
//! The transactional machinery (prepare/commit/rollback, doomed-transaction
//! recovery, fleet 2PC) is exercised elsewhere by property tests and chaos
//! campaigns, but both sample the interleaving space. This crate walks it
//! **exhaustively** up to a bound: the deterministic `netsim` world is put
//! in controlled-delivery mode, where nothing is scheduled behind the
//! checker's back, and every nondeterministic decision — which pending
//! message to deliver next, whether to drop it instead, when a node
//! crashes or reboots, which timer fires — becomes an explicit
//! [`Choice`]. The [`Explorer`] then drives a fleet-wide 2PC protocol
//! switch through every schedulable interleaving within the crash/drop
//! budgets, checking a reusable [`Invariant`] suite at every state:
//! rollback exactness, no split-brain composition, and the
//! `prepared == committed + rolled_back` ledger shared with the engine's
//! own tests via `manetkit::txn::invariants`.
//!
//! Because the world is deterministic and cannot be cloned, the checker is
//! replay-based: a state *is* the schedule prefix that reaches it, and
//! visiting it means replaying the prefix through a fresh
//! [`TwoPhaseSwitch`] (CHESS-style stateless search with fingerprint
//! dedup). On a violation the schedule ships as the counterexample — a
//! byte-stable JSONL file that re-executes the exact interleaving through
//! the normal `World`, plus a trace-crate timeline of the violating run
//! when the flight recorder is on.
//!
//! ```
//! use mcheck::{default_suite, Explorer, ScenarioConfig, TwoPhaseSwitch};
//!
//! let cfg = ScenarioConfig {
//!     max_crashes: 1,
//!     max_drops: 1,
//!     ..ScenarioConfig::default()
//! };
//! let report = Explorer::new(move || TwoPhaseSwitch::new(cfg.clone()))
//!     .invariants(default_suite())
//!     .depth_bound(8)
//!     .max_states(2_000)
//!     .run();
//! assert!(report.violations.is_empty());
//! assert!(report.states_unique > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod invariant;
mod scenario;
mod schedule;

pub use explorer::{Counterexample, ExploreReport, Explorer, Model, Strategy, Violation};
pub use invariant::{
    default_suite, CoordPhase, CounterConservation, Invariant, NoSplitBrain, NodeObs, Observation,
    RollbackExactness, StuckResolution,
};
pub use scenario::{olsr_to_dymo, ScenarioConfig, TwoPhaseSwitch};
pub use schedule::{Choice, Schedule};
