//! Satellite regression: a node that crashes *between* prepare and
//! commit must come back on the checkpointed composition, and the pinned
//! interleaving must survive the full counterexample pipeline — directed
//! search, schedule-file export, re-parse, replay through the normal
//! `World`.
//!
//! This is the 2PC window the paper's reconfiguration protocol is most
//! exposed in: the participant voted yes, holds the prepared (already
//! applied) composition, and dies before the verdict reaches it. On
//! reboot the doomed-transaction rollback must restore the checkpoint
//! byte-exactly.

use manetkit::TxnPhase;
use mcheck::{
    default_suite, Choice, CoordPhase, Explorer, Model, ScenarioConfig, Schedule, TwoPhaseSwitch,
};

fn explorer(cfg: ScenarioConfig) -> Explorer<TwoPhaseSwitch> {
    Explorer::new(move || TwoPhaseSwitch::new(cfg.clone()))
}

#[test]
fn replayed_schedule_pins_crash_between_prepare_and_commit() {
    // Directed search for the shortest interleaving where a participant
    // died holding a prepared transaction after the coordinator had
    // already decided to commit (BFS ⇒ shortest schedule, so the pinned
    // file stays minimal).
    let cfg = ScenarioConfig::default();
    let found = explorer(cfg.clone())
        .depth_bound(8)
        .find(|obs| {
            matches!(
                obs.coordinator,
                CoordPhase::Committing | CoordPhase::Committed
            ) && obs
                .nodes
                .iter()
                .any(|n| !n.alive && n.phase == Some(TxnPhase::Prepared))
        })
        .expect("a crash-between-prepare-and-commit state exists within depth 8");

    let model = explorer(cfg.clone())
        .replay(&found)
        .expect("search result replays");
    let obs = model.observe();
    let victim = obs
        .nodes
        .iter()
        .find(|n| !n.alive && n.phase == Some(TxnPhase::Prepared))
        .expect("the goal guaranteed a dead prepared node")
        .node;

    // Extend the interleaving: the victim reboots, which is where the
    // doomed-transaction recovery runs.
    let mut pinned = found.clone();
    pinned.choices.push(Choice::Reboot { node: victim });

    // Ship it exactly like a counterexample ships: byte-stable JSONL out,
    // strict parse back in.
    let path = std::env::temp_dir().join("mcheck_crash_between_prepare_and_commit.jsonl");
    std::fs::write(&path, pinned.to_jsonl()).expect("write schedule file");
    let bytes = std::fs::read_to_string(&path).expect("read schedule file");
    let parsed = Schedule::from_jsonl(&bytes).expect("exported schedule parses");
    assert_eq!(parsed, pinned, "round trip is lossless");

    // Replay the file through a fresh world and pin the recovery.
    let model = explorer(cfg).replay(&parsed).expect("schedule replays");
    let obs = model.observe();
    let n = &obs.nodes[victim];
    assert!(n.alive, "the victim rebooted");
    assert_eq!(
        n.phase,
        Some(TxnPhase::RolledBack),
        "the doomed prepared transaction rolled back at start-up"
    );
    assert_eq!(
        n.composition_hash,
        Some(obs.baseline_hash),
        "recovery restored the checkpointed composition byte-exactly"
    );
    assert_eq!(n.counters.prepared, 1, "{:?}", n.counters);
    assert_eq!(n.counters.rolled_back, 1, "{:?}", n.counters);
    assert_eq!(n.rollback_mismatch, 0);
    for inv in default_suite() {
        assert!(
            inv.check(&obs).is_ok(),
            "{} holds on the recovered state",
            inv.name()
        );
    }
}
