//! Golden-file pin of the counterexample export format.
//!
//! The mutation hunt (doomed-transaction rollback disabled via
//! `ScenarioConfig::skip_doomed_rollback`) is fully deterministic: BFS
//! order, first violation, traced replay. Its two artifacts — the
//! replayable schedule file and the trace-crate timeline — must stay
//! byte-identical to the checked-in goldens, so any accidental format
//! drift (key order, whitespace, record selection) fails loudly instead
//! of silently breaking downstream consumers of exported
//! counterexamples.
//!
//! To regenerate after an *intentional* format change:
//! `cargo run --release --example mcheck_2pc -- --smoke` and copy
//! `BENCH_mcheck_counterexample.jsonl` / `BENCH_mcheck_timeline.jsonl`
//! over the files in `tests/golden/`.

use mcheck::{default_suite, Explorer, ScenarioConfig, Strategy, TwoPhaseSwitch};

const GOLDEN_SCHEDULE: &str = include_str!("golden/mutation_counterexample_schedule.jsonl");
#[cfg(feature = "trace")]
const GOLDEN_TIMELINE: &str = include_str!("golden/mutation_counterexample_timeline.jsonl");

/// Runs the seeded-mutation hunt exactly like the E17 experiment does and
/// returns the exported counterexample.
fn hunt() -> mcheck::Counterexample {
    let mutated = ScenarioConfig {
        skip_doomed_rollback: true,
        ..ScenarioConfig::default()
    };
    let report = Explorer::new({
        let mutated = mutated.clone();
        move || TwoPhaseSwitch::new(mutated.clone())
    })
    .invariants(default_suite())
    .strategy(Strategy::Bfs)
    .depth_bound(6)
    .max_states(10_000)
    .run();
    let violation = report
        .violations
        .first()
        .expect("the disabled doomed rollback is always caught");
    let traced = ScenarioConfig {
        trace: true,
        ..mutated
    };
    Explorer::<TwoPhaseSwitch>::new(move || TwoPhaseSwitch::new(traced.clone()))
        .counterexample(&violation.schedule)
        .expect("violating schedule replays")
}

#[test]
fn counterexample_schedule_matches_golden_bytes() {
    let cx = hunt();
    assert_eq!(
        cx.schedule_jsonl, GOLDEN_SCHEDULE,
        "schedule export format drifted from the golden file"
    );
}

#[cfg(feature = "trace")]
#[test]
fn counterexample_timeline_matches_golden_bytes() {
    let cx = hunt();
    assert_eq!(
        cx.timeline_jsonl, GOLDEN_TIMELINE,
        "timeline export format drifted from the golden file"
    );
}
