//! Pcap-style binary export of the packet-level records.
//!
//! Produces a classic libpcap capture file (magic `0xa1b2c3d4`, version
//! 2.4, microsecond timestamps) with `LINKTYPE_USER0` (147) frames. Each
//! frame's payload is a compact synthetic encoding of the trace record —
//! the simulator does not retain raw frame bytes in the ring, so the
//! export reconstructs a self-describing packet per record:
//!
//! ```text
//! offset  size  field
//! 0       1     record kind (TraceKind discriminant name's first byte is
//!               NOT used — this is the stable kind index below)
//! 1       4     emitting node (LE u32)
//! 5       8     payload word `a` (LE u64)
//! 13      8     payload word `b` (LE u64)
//! 21      n     tag bytes (UTF-8, to end of packet)
//! ```
//!
//! The timestamp fields carry the record's **virtual** time, so two runs of
//! the same seed export byte-identical captures.

use crate::record::{TraceKind, TraceRecord};
use crate::Trace;

/// `LINKTYPE_USER0`: reserved for private use — appropriate for the
/// synthetic encoding documented in the module header.
pub const LINKTYPE_USER0: u32 = 147;

/// Stable one-byte wire index of a record kind (independent of the Rust
/// discriminant so the format survives enum reordering).
#[must_use]
pub fn kind_wire_index(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::FrameTx => 1,
        TraceKind::FrameRx => 2,
        TraceKind::FrameDrop => 3,
        TraceKind::DataSend => 4,
        TraceKind::DataHop => 5,
        TraceKind::DataDeliver => 6,
        TraceKind::DataDrop => 7,
        _ => 0,
    }
}

/// Exports every packet-level record (`TraceKind::is_packet`) of the trace
/// as a pcap capture.
#[must_use]
pub fn export(trace: &Trace) -> Vec<u8> {
    let packets: Vec<&TraceRecord> = trace
        .records()
        .iter()
        .filter(|r| r.kind.is_packet())
        .collect();
    let mut out = Vec::with_capacity(24 + packets.len() * 48);
    // Global header.
    out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic, µs timestamps
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_USER0.to_le_bytes()); // network
    for r in packets {
        let payload = encode_payload(r);
        let len = payload.len() as u32;
        out.extend_from_slice(&((r.t_us / 1_000_000) as u32).to_le_bytes()); // ts_sec
        out.extend_from_slice(&((r.t_us % 1_000_000) as u32).to_le_bytes()); // ts_usec
        out.extend_from_slice(&len.to_le_bytes()); // incl_len
        out.extend_from_slice(&len.to_le_bytes()); // orig_len
        out.extend_from_slice(&payload);
    }
    out
}

fn encode_payload(r: &TraceRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(21 + r.tag.len());
    p.push(kind_wire_index(r.kind));
    p.extend_from_slice(&r.node.to_le_bytes());
    p.extend_from_slice(&r.a.to_le_bytes());
    p.extend_from_slice(&r.b.to_le_bytes());
    p.extend_from_slice(r.tag.as_bytes());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            t_us,
            node: 3,
            kind,
            tag: "frame.control",
            a: 52,
            b: 2,
        }
    }

    #[test]
    fn header_is_classic_pcap_with_user0_linktype() {
        let cap = export(&Trace::default());
        assert_eq!(cap.len(), 24, "empty capture is just the global header");
        assert_eq!(&cap[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&cap[20..24], &LINKTYPE_USER0.to_le_bytes());
    }

    #[test]
    fn packet_records_are_exported_with_virtual_timestamps() {
        let t = Trace::from_records(vec![
            rec(2_500_123, TraceKind::FrameTx),
            rec(3_000_000, TraceKind::QuiesceBegin), // not a packet: skipped
        ]);
        let cap = export(&t);
        // One record follows the 24-byte global header.
        assert_eq!(&cap[24..28], &2u32.to_le_bytes(), "ts_sec");
        assert_eq!(&cap[28..32], &500_123u32.to_le_bytes(), "ts_usec");
        let incl_len = u32::from_le_bytes(cap[32..36].try_into().unwrap()) as usize;
        assert_eq!(incl_len, 21 + "frame.control".len());
        assert_eq!(cap.len(), 24 + 16 + incl_len, "exactly one packet");
        let payload = &cap[40..];
        assert_eq!(payload[0], kind_wire_index(TraceKind::FrameTx));
        assert_eq!(&payload[1..5], &3u32.to_le_bytes());
        assert_eq!(&payload[21..], b"frame.control");
    }

    #[test]
    fn export_is_deterministic() {
        let t = Trace::from_records(vec![
            rec(1, TraceKind::DataHop),
            rec(2, TraceKind::DataDrop),
        ]);
        assert_eq!(export(&t), export(&t));
    }
}
