//! The fixed-size trace record and its byte-stable JSONL form.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// What a [`TraceRecord`] describes. One byte on the wire; the JSONL form
/// uses the stable snake_case names from [`TraceKind::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[non_exhaustive]
pub enum TraceKind {
    /// Control frame transmitted (`a` = wire bytes, `b` = receiver count).
    FrameTx,
    /// Control frame received (`a` = sender node, `b` = wire bytes).
    FrameRx,
    /// Control frame dropped in flight (`tag` = reason, `a` = intended
    /// receiver node, `b` = wire bytes).
    FrameDrop,
    /// Data packet originated (`a` = destination node or `u64::MAX` when
    /// unresolved, `b` = payload bytes).
    DataSend,
    /// Data packet forwarded one hop (`a` = next-hop node, `b` = TTL left).
    DataHop,
    /// Data packet delivered (`a` = source node, `b` = latency in virtual
    /// microseconds).
    DataDeliver,
    /// Data packet dropped (`tag` = reason, `a` = destination node or
    /// `u64::MAX`, `b` = payload bytes).
    DataDrop,
    /// Event-bus delivery span (`tag` = interned event-type name, `a` =
    /// handler units reached, `b` = queue depth after dispatch).
    BusDeliver,
    /// Reconfiguration quiesce point reached (`a` = pending ops drained,
    /// `b` = virtual microseconds the oldest op waited).
    QuiesceBegin,
    /// Protocol state carried over during a switch (`tag` = op label, `a` =
    /// 1 when state was transferred, 0 for a cold switch).
    StateTransfer,
    /// Component rebind (tuple-space update) applied (`tag` = op label).
    Rebind,
    /// Reconfiguration batch finished, normal processing resumed (`a` =
    /// ops applied, `b` = quiescence-lock reconfig generation).
    Resume,
    /// A single reconfig op applied outside the phase records (`tag` = op
    /// label).
    ReconfigApply,
    /// Transaction prepared: checkpoint taken, ops applied, undo log held
    /// (`a` = transaction id, `b` = ops applied).
    TxnPrepare,
    /// Transaction committed: undo log discarded, new composition final
    /// (`a` = transaction id, `b` = ops that became permanent).
    TxnCommit,
    /// Transaction aborted (`tag` = reason, `a` = transaction id).
    TxnAbort,
    /// Transaction undo log unwound back to the checkpoint (`a` =
    /// transaction id, `b` = undo entries replayed).
    TxnRollback,
    /// Provisionally-committed composition reverted by the health gate
    /// (`a` = transaction id, `b` = undo entries replayed).
    TxnRevert,
    /// Fault injected (`tag` = fault label).
    Fault,
    /// Node crashed (`a` = buffered packets lost).
    NodeCrash,
    /// Node rebooted.
    NodeReboot,
    /// Link state changed (`a` = peer node, `b` = 1 up / 0 down).
    LinkChange,
    /// Node moved to a new position in a spatial topology (`a`/`b` = x/y
    /// scaled by 1e6 — fixed-point keeps the record integer-only).
    NodeMove,
    /// Frame entered a phy transmit queue behind an active transmission
    /// (`a` = queue depth after enqueue, `b` = wire bytes).
    PhyQueue,
    /// Phy transmission started occupying the air (`a` = transmission id,
    /// `b` = wire bytes).
    PhyTx,
    /// Frame tail-dropped by a full phy transmit queue (`a` = packet id or
    /// `u64::MAX` for control frames, `b` = wire bytes).
    PhyDrop,
}

impl TraceKind {
    /// Stable snake_case name (the JSONL `kind` value).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::FrameTx => "frame_tx",
            TraceKind::FrameRx => "frame_rx",
            TraceKind::FrameDrop => "frame_drop",
            TraceKind::DataSend => "data_send",
            TraceKind::DataHop => "data_hop",
            TraceKind::DataDeliver => "data_deliver",
            TraceKind::DataDrop => "data_drop",
            TraceKind::BusDeliver => "bus_deliver",
            TraceKind::QuiesceBegin => "quiesce_begin",
            TraceKind::StateTransfer => "state_transfer",
            TraceKind::Rebind => "rebind",
            TraceKind::Resume => "resume",
            TraceKind::ReconfigApply => "reconfig_apply",
            TraceKind::TxnPrepare => "txn_prepare",
            TraceKind::TxnCommit => "txn_commit",
            TraceKind::TxnAbort => "txn_abort",
            TraceKind::TxnRollback => "txn_rollback",
            TraceKind::TxnRevert => "txn_revert",
            TraceKind::Fault => "fault",
            TraceKind::NodeCrash => "node_crash",
            TraceKind::NodeReboot => "node_reboot",
            TraceKind::LinkChange => "link_change",
            TraceKind::NodeMove => "node_move",
            TraceKind::PhyQueue => "phy_queue",
            TraceKind::PhyTx => "phy_tx",
            TraceKind::PhyDrop => "phy_drop",
        }
    }

    /// Parses a stable name back into a kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceKind> {
        Some(match s {
            "frame_tx" => TraceKind::FrameTx,
            "frame_rx" => TraceKind::FrameRx,
            "frame_drop" => TraceKind::FrameDrop,
            "data_send" => TraceKind::DataSend,
            "data_hop" => TraceKind::DataHop,
            "data_deliver" => TraceKind::DataDeliver,
            "data_drop" => TraceKind::DataDrop,
            "bus_deliver" => TraceKind::BusDeliver,
            "quiesce_begin" => TraceKind::QuiesceBegin,
            "state_transfer" => TraceKind::StateTransfer,
            "rebind" => TraceKind::Rebind,
            "resume" => TraceKind::Resume,
            "reconfig_apply" => TraceKind::ReconfigApply,
            "txn_prepare" => TraceKind::TxnPrepare,
            "txn_commit" => TraceKind::TxnCommit,
            "txn_abort" => TraceKind::TxnAbort,
            "txn_rollback" => TraceKind::TxnRollback,
            "txn_revert" => TraceKind::TxnRevert,
            "fault" => TraceKind::Fault,
            "node_crash" => TraceKind::NodeCrash,
            "node_reboot" => TraceKind::NodeReboot,
            "link_change" => TraceKind::LinkChange,
            "node_move" => TraceKind::NodeMove,
            "phy_queue" => TraceKind::PhyQueue,
            "phy_tx" => TraceKind::PhyTx,
            "phy_drop" => TraceKind::PhyDrop,
            _ => return None,
        })
    }

    /// Whether the record describes a frame/packet event (exported to
    /// pcap).
    #[must_use]
    pub fn is_packet(self) -> bool {
        matches!(
            self,
            TraceKind::FrameTx
                | TraceKind::FrameRx
                | TraceKind::FrameDrop
                | TraceKind::DataSend
                | TraceKind::DataHop
                | TraceKind::DataDeliver
                | TraceKind::DataDrop
        )
    }

    /// Whether the record belongs to the reconfiguration timeline.
    #[must_use]
    pub fn is_reconfig(self) -> bool {
        matches!(
            self,
            TraceKind::QuiesceBegin
                | TraceKind::StateTransfer
                | TraceKind::Rebind
                | TraceKind::Resume
                | TraceKind::ReconfigApply
                | TraceKind::TxnPrepare
                | TraceKind::TxnCommit
                | TraceKind::TxnAbort
                | TraceKind::TxnRollback
                | TraceKind::TxnRevert
        )
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fixed-size flight-recorder entry.
///
/// `tag` is an interned `&'static str` — producers pass names that already
/// live for the program (interned event types, literal reason strings);
/// the JSONL parser interns unknown names via [`intern_tag`]. The `a`/`b`
/// payload words are kind-specific (see [`TraceKind`]'s variant docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual timestamp in microseconds.
    pub t_us: u64,
    /// Emitting node.
    pub node: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific label (event type, drop reason, op name…).
    pub tag: &'static str,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl TraceRecord {
    /// Appends the record's byte-stable JSONL object (no trailing newline).
    ///
    /// Key order is fixed; tags never contain JSON-special characters by
    /// construction (interned identifiers), but quotes/backslashes are
    /// escaped anyway so arbitrary parsed-back tags stay well-formed.
    pub fn write_jsonl(&self, out: &mut String) {
        use fmt::Write;
        out.push_str("{\"t_us\":");
        let _ = write!(out, "{}", self.t_us);
        out.push_str(",\"node\":");
        let _ = write!(out, "{}", self.node);
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"tag\":\"");
        for c in self.tag.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        out.push_str("\",\"a\":");
        let _ = write!(out, "{}", self.a);
        out.push_str(",\"b\":");
        let _ = write!(out, "{}", self.b);
        out.push('}');
    }

    /// Parses one JSONL line written by [`TraceRecord::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse_jsonl(line: &str) -> Result<TraceRecord, String> {
        let t_us = field_u64(line, "t_us")?;
        let node = field_u64(line, "node")?;
        let kind_name = field_str(line, "kind")?;
        let kind = TraceKind::parse(&kind_name)
            .ok_or_else(|| format!("unknown record kind {kind_name:?}"))?;
        let tag = intern_tag(&field_str(line, "tag")?);
        let a = field_u64(line, "a")?;
        let b = field_u64(line, "b")?;
        Ok(TraceRecord {
            t_us,
            node: u32::try_from(node).map_err(|_| "node id overflows u32".to_string())?,
            kind,
            tag,
            a,
            b,
        })
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}us node={} kind={} tag={} a={} b={}",
            self.t_us, self.node, self.kind, self.tag, self.a, self.b
        )
    }
}

/// Interns a tag name, returning a `&'static str` that is pointer-stable
/// for the life of the process (mirrors `manetkit`'s event-type interner;
/// repeated names leak exactly once).
#[must_use]
pub fn intern_tag(name: &str) -> &'static str {
    static TAGS: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = TAGS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), leaked);
    leaked
}

fn find_key(line: &str, key: &str) -> Result<usize, String> {
    let pat = format!("\"{key}\":");
    line.find(&pat)
        .map(|i| i + pat.len())
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    let start = find_key(line, key)?;
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("field {key:?} is not a number"))
}

fn field_str(line: &str, key: &str) -> Result<String, String> {
    let start = find_key(line, key)?;
    let rest = &line[start..];
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return Err(format!("field {key:?} is not a string"));
    }
    let mut out = String::new();
    let mut escaped = false;
    for c in chars {
        match (escaped, c) {
            (true, c) => {
                out.push(c);
                escaped = false;
            }
            (false, '\\') => escaped = true,
            (false, '"') => return Ok(out),
            (false, c) => out.push(c),
        }
    }
    Err(format!("unterminated string field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            TraceKind::FrameTx,
            TraceKind::FrameRx,
            TraceKind::FrameDrop,
            TraceKind::DataSend,
            TraceKind::DataHop,
            TraceKind::DataDeliver,
            TraceKind::DataDrop,
            TraceKind::BusDeliver,
            TraceKind::QuiesceBegin,
            TraceKind::StateTransfer,
            TraceKind::Rebind,
            TraceKind::Resume,
            TraceKind::ReconfigApply,
            TraceKind::TxnPrepare,
            TraceKind::TxnCommit,
            TraceKind::TxnAbort,
            TraceKind::TxnRollback,
            TraceKind::TxnRevert,
            TraceKind::Fault,
            TraceKind::NodeCrash,
            TraceKind::NodeReboot,
            TraceKind::LinkChange,
            TraceKind::NodeMove,
            TraceKind::PhyQueue,
            TraceKind::PhyTx,
            TraceKind::PhyDrop,
        ] {
            assert_eq!(TraceKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TraceKind::parse("nope"), None);
    }

    #[test]
    fn record_jsonl_round_trip_with_escapes() {
        let rec = TraceRecord {
            t_us: 42,
            node: 7,
            kind: TraceKind::FrameDrop,
            tag: intern_tag("weird\"tag\\name"),
            a: u64::MAX,
            b: 0,
        };
        let mut line = String::new();
        rec.write_jsonl(&mut line);
        let back = TraceRecord::parse_jsonl(&line).expect("parses");
        assert_eq!(back, rec);
    }

    #[test]
    fn interning_is_pointer_stable() {
        let a = intern_tag("alpha.beta");
        let b = intern_tag("alpha.beta");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn packet_and_reconfig_classes_are_disjoint() {
        assert!(TraceKind::FrameTx.is_packet());
        assert!(!TraceKind::FrameTx.is_reconfig());
        assert!(TraceKind::Rebind.is_reconfig());
        assert!(!TraceKind::Rebind.is_packet());
        assert!(!TraceKind::Fault.is_packet());
        assert!(!TraceKind::Fault.is_reconfig());
    }
}
