//! Deterministic flight recorder for the MANETKit reproduction.
//!
//! Every layer of the stack — the `netsim` frame/data plane, the `manetkit`
//! event bus and the quiescence-guarded reconfiguration machinery — emits
//! fixed-size [`TraceRecord`]s into per-node [`NodeRing`] buffers. Records
//! carry **virtual** timestamps only, so two runs of the same seeded world
//! produce byte-identical traces however fast the host executed them.
//!
//! The crate is dependency-free and knows nothing about worlds or agents;
//! the `trace` cargo feature on `netsim` decides whether any records are
//! produced at all (compiled out entirely when disabled). Consumers:
//!
//! * [`Trace`] — a merged, deterministically ordered record stream with
//!   byte-stable JSONL serialization ([`Trace::to_jsonl`] /
//!   [`Trace::from_jsonl`]) and a pcap-style binary export
//!   ([`pcap::export`]).
//! * [`first_divergence`] — compares two traces and reports the first
//!   record where they differ (node, virtual time, record kind), the
//!   campaign engine's `--check-determinism` post-mortem.
//! * [`timeline::render_node`] — a per-node reconfiguration timeline
//!   (quiesce-begin → state-transfer → rebind → resume with per-phase
//!   virtual durations) used by the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod record;
mod ring;

pub mod pcap;
pub mod timeline;

pub use diff::{first_divergence, Divergence};
pub use record::{intern_tag, TraceKind, TraceRecord};
pub use ring::NodeRing;

use std::fmt;

/// A merged trace: every node's records in one deterministic order.
///
/// Ordering is `(t_us, node, per-node emission order)` — a *stable* sort of
/// the per-node chronological streams, so ties at the same virtual
/// microsecond resolve identically on every run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Builds a trace from per-node record streams (each already in its
    /// node's emission order). The merge is deterministic.
    #[must_use]
    pub fn from_nodes(nodes: Vec<Vec<TraceRecord>>) -> Self {
        let mut records: Vec<TraceRecord> = nodes.into_iter().flatten().collect();
        records.sort_by_key(|r| (r.t_us, r.node));
        Trace { records }
    }

    /// Builds a trace from an already-ordered record list (no re-sort).
    #[must_use]
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// The ordered records.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A new trace holding only the records matching `pred`, order kept.
    /// The model checker uses this to cut a counterexample timeline down
    /// to the reconfiguration records
    /// (`trace.filter(|r| r.kind.is_reconfig())`).
    #[must_use]
    pub fn filter(&self, pred: impl Fn(&TraceRecord) -> bool) -> Trace {
        Trace {
            records: self.records.iter().copied().filter(pred).collect(),
        }
    }

    /// Byte-stable JSONL serialization: one record per line, fixed key
    /// order, no whitespace, tag names inline (so the bytes are stable
    /// across processes — intern ids never leak into the format).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 64);
        for r in &self.records {
            r.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace produced by [`Trace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message when any line is not a well-formed
    /// record.
    pub fn from_jsonl(s: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec =
                TraceRecord::parse_jsonl(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
            records.push(rec);
        }
        Ok(Trace { records })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace of {} records", self.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, node: u32, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            t_us,
            node,
            kind,
            tag: "test.tag",
            a: 1,
            b: 2,
        }
    }

    #[test]
    fn merge_orders_by_time_then_node_stably() {
        let n0 = vec![rec(5, 0, TraceKind::FrameTx), rec(5, 0, TraceKind::FrameRx)];
        let n1 = vec![
            rec(3, 1, TraceKind::DataSend),
            rec(5, 1, TraceKind::DataHop),
        ];
        let t = Trace::from_nodes(vec![n0, n1]);
        let kinds: Vec<TraceKind> = t.records().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::DataSend, // t=3
                TraceKind::FrameTx,  // t=5 node 0, emission order kept
                TraceKind::FrameRx,
                TraceKind::DataHop, // t=5 node 1
            ]
        );
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let t = Trace::from_nodes(vec![vec![
            rec(1, 0, TraceKind::FrameTx),
            rec(2, 0, TraceKind::QuiesceBegin),
            rec(3, 0, TraceKind::Resume),
        ]]);
        let jsonl = t.to_jsonl();
        let back = Trace::from_jsonl(&jsonl).expect("parses");
        assert_eq!(back, t);
        assert_eq!(back.to_jsonl(), jsonl, "serialization is byte-stable");
    }

    #[test]
    fn filter_keeps_order_and_bytes() {
        let t = Trace::from_nodes(vec![vec![
            rec(1, 0, TraceKind::FrameTx),
            rec(2, 0, TraceKind::QuiesceBegin),
            rec(3, 0, TraceKind::FrameRx),
        ]]);
        let reconfig = t.filter(|r| r.kind.is_reconfig());
        assert_eq!(reconfig.len(), 1);
        assert_eq!(reconfig.records()[0].kind, TraceKind::QuiesceBegin);
        let roundtrip = Trace::from_jsonl(&reconfig.to_jsonl()).expect("parses");
        assert_eq!(roundtrip, reconfig);
    }

    #[test]
    fn jsonl_parse_reports_bad_lines() {
        let err = Trace::from_jsonl("{\"nope\":1}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
