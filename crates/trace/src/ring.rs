//! The fixed-capacity per-node ring buffer.

use crate::record::TraceRecord;

/// A fixed-capacity ring of [`TraceRecord`]s that overwrites its oldest
/// entry when full — the flight-recorder property: memory use is bounded
/// up front and the *most recent* history always survives.
///
/// Pushing is one bounds check and one slot write; no allocation after the
/// ring first reaches capacity.
#[derive(Debug, Clone)]
pub struct NodeRing {
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    buf: Vec<TraceRecord>,
    written: u64,
}

impl NodeRing {
    /// Creates a ring holding at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        NodeRing {
            cap,
            head: 0,
            buf: Vec::with_capacity(cap),
            written: 0,
        }
    }

    /// The ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a record, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
        self.written += 1;
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything overwritten — a
    /// ring never shrinks, so this means nothing was ever pushed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever pushed.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Records lost to overwriting (`written - retained`).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.written - self.buf.len() as u64
    }

    /// The retained records in chronological (emission) order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The retained records as an owned chronological `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceKind;

    fn rec(t_us: u64) -> TraceRecord {
        TraceRecord {
            t_us,
            node: 0,
            kind: TraceKind::FrameTx,
            tag: "t",
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = NodeRing::new(3);
        for t in 0..5 {
            ring.push(rec(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.written(), 5);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<u64> = ring.iter().map(|r| r.t_us).collect();
        assert_eq!(times, vec![2, 3, 4], "newest history survives, in order");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut ring = NodeRing::new(0);
        ring.push(rec(1));
        ring.push(rec(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.to_vec()[0].t_us, 2);
    }

    #[test]
    fn wraps_repeatedly_without_losing_order() {
        let mut ring = NodeRing::new(4);
        for t in 0..103 {
            ring.push(rec(t));
        }
        let times: Vec<u64> = ring.iter().map(|r| r.t_us).collect();
        assert_eq!(times, vec![99, 100, 101, 102]);
        assert_eq!(ring.dropped(), 99);
    }
}
