//! First-divergence comparison of two traces.

use std::fmt;

use crate::record::TraceRecord;
use crate::Trace;

/// The first point where two traces stop agreeing.
///
/// `left`/`right` are the records at the diverging index (`None` when one
/// trace simply ended early). [`fmt::Display`] renders the campaign
/// engine's one-line post-mortem: index, node, virtual time and record
/// kind of both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the merged record streams where the traces differ.
    pub index: usize,
    /// The left trace's record at `index`, if any.
    pub left: Option<TraceRecord>,
    /// The right trace's record at `index`, if any.
    pub right: Option<TraceRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn side(r: &Option<TraceRecord>) -> String {
            match r {
                Some(r) => format!(
                    "node {} at t={}us kind={} tag={} a={} b={}",
                    r.node, r.t_us, r.kind, r.tag, r.a, r.b
                ),
                None => "<end of trace>".to_string(),
            }
        }
        write!(
            f,
            "first divergence at record #{}: {} vs {}",
            self.index,
            side(&self.left),
            side(&self.right)
        )
    }
}

/// Compares two traces record by record and returns the first index where
/// they differ, or `None` when they are identical.
///
/// Because both traces are in the deterministic merged order, the first
/// differing record localises *where* two supposedly identical runs
/// diverged: which node, at which virtual time, doing what.
#[must_use]
pub fn first_divergence(left: &Trace, right: &Trace) -> Option<Divergence> {
    let (l, r) = (left.records(), right.records());
    let n = l.len().max(r.len());
    for i in 0..n {
        let (lr, rr) = (l.get(i).copied(), r.get(i).copied());
        if lr != rr {
            return Some(Divergence {
                index: i,
                left: lr,
                right: rr,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceKind;

    fn rec(t_us: u64, node: u32, a: u64) -> TraceRecord {
        TraceRecord {
            t_us,
            node,
            kind: TraceKind::DataDeliver,
            tag: "data",
            a,
            b: 0,
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = Trace::from_records(vec![rec(1, 0, 1), rec(2, 1, 2)]);
        assert_eq!(first_divergence(&t, &t.clone()), None);
    }

    #[test]
    fn reports_first_differing_record() {
        let a = Trace::from_records(vec![rec(1, 0, 1), rec(2, 1, 2), rec(3, 2, 3)]);
        let b = Trace::from_records(vec![rec(1, 0, 1), rec(2, 1, 9), rec(3, 2, 3)]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().a, 2);
        assert_eq!(d.right.unwrap().a, 9);
        let msg = d.to_string();
        assert!(msg.contains("record #1"), "{msg}");
        assert!(msg.contains("node 1"), "{msg}");
        assert!(msg.contains("t=2us"), "{msg}");
        assert!(msg.contains("kind=data_deliver"), "{msg}");
    }

    #[test]
    fn truncation_counts_as_divergence() {
        let a = Trace::from_records(vec![rec(1, 0, 1), rec(2, 1, 2)]);
        let b = Trace::from_records(vec![rec(1, 0, 1)]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert!(d.right.is_none());
        assert!(d.to_string().contains("<end of trace>"));
    }
}
