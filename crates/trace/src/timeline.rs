//! Per-node reconfiguration timeline rendering.
//!
//! Turns the reconfig-phase records of one node into a human-readable
//! timeline: quiesce-begin → state-transfer → rebind → resume, with the
//! per-phase **virtual** durations (wall-clock never appears — the
//! rendering of a seeded run is deterministic).

use std::fmt::Write;

use crate::record::TraceKind;
use crate::Trace;

/// Renders node `node`'s reconfiguration timeline, plus fault/crash/reboot
/// context lines. Returns an empty string when the node has no such
/// records.
#[must_use]
pub fn render_node(trace: &Trace, node: u32) -> String {
    let mut out = String::new();
    // Virtual time of the batch's quiesce point, for per-phase offsets.
    let mut batch_start: Option<u64> = None;
    for r in trace.records().iter().filter(|r| {
        r.node == node
            && (r.kind.is_reconfig()
                || matches!(
                    r.kind,
                    TraceKind::Fault | TraceKind::NodeCrash | TraceKind::NodeReboot
                ))
    }) {
        if out.is_empty() {
            let _ = writeln!(out, "node {node} reconfig timeline:");
        }
        let t = fmt_time(r.t_us);
        match r.kind {
            TraceKind::QuiesceBegin => {
                batch_start = Some(r.t_us);
                let _ = writeln!(
                    out,
                    "  {t} quiesce-begin      ops={} waited={}",
                    r.a,
                    fmt_dur(r.b)
                );
            }
            TraceKind::StateTransfer => {
                let _ = writeln!(
                    out,
                    "  {t} state-transfer     op={} {} (+{})",
                    r.tag,
                    if r.a == 1 { "carried" } else { "cold" },
                    offset(batch_start, r.t_us)
                );
            }
            TraceKind::Rebind => {
                let _ = writeln!(
                    out,
                    "  {t} rebind             op={} (+{})",
                    r.tag,
                    offset(batch_start, r.t_us)
                );
            }
            TraceKind::ReconfigApply => {
                let _ = writeln!(
                    out,
                    "  {t} apply              op={} (+{})",
                    r.tag,
                    offset(batch_start, r.t_us)
                );
            }
            TraceKind::Resume => {
                let _ = writeln!(
                    out,
                    "  {t} resume             applied={} gen={} (+{})",
                    r.a,
                    r.b,
                    offset(batch_start, r.t_us)
                );
                batch_start = None;
            }
            TraceKind::Fault => {
                let _ = writeln!(out, "  {t} fault              {}", r.tag);
            }
            TraceKind::NodeCrash => {
                let _ = writeln!(out, "  {t} crash              lost={}", r.a);
            }
            TraceKind::NodeReboot => {
                let _ = writeln!(out, "  {t} reboot");
            }
            _ => {}
        }
    }
    out
}

/// Renders the timeline of every node that has one, in node order.
#[must_use]
pub fn render_all(trace: &Trace) -> String {
    let mut nodes: Vec<u32> = trace.records().iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut out = String::new();
    for node in nodes {
        let section = render_node(trace, node);
        if !section.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&section);
        }
    }
    out
}

fn offset(start: Option<u64>, now: u64) -> String {
    match start {
        Some(s) if now >= s => fmt_dur(now - s),
        _ => fmt_dur(0),
    }
}

fn fmt_time(t_us: u64) -> String {
    format!("t={}.{:06}s", t_us / 1_000_000, t_us % 1_000_000)
}

fn fmt_dur(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
    } else if us >= 1_000 {
        format!("{}.{:03}ms", us / 1_000, us % 1_000)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn rec(
        t_us: u64,
        node: u32,
        kind: TraceKind,
        tag: &'static str,
        a: u64,
        b: u64,
    ) -> TraceRecord {
        TraceRecord {
            t_us,
            node,
            kind,
            tag,
            a,
            b,
        }
    }

    #[test]
    fn renders_phases_with_offsets() {
        let t = Trace::from_records(vec![
            rec(30_000_000, 2, TraceKind::QuiesceBegin, "reconfig", 1, 1_500),
            rec(
                30_000_000,
                2,
                TraceKind::StateTransfer,
                "switch_protocol",
                1,
                0,
            ),
            rec(30_000_000, 2, TraceKind::Rebind, "switch_protocol", 0, 0),
            rec(30_000_000, 2, TraceKind::Resume, "reconfig", 1, 1),
            rec(31_000_000, 3, TraceKind::FrameTx, "frame.control", 52, 1),
        ]);
        let out = render_node(&t, 2);
        assert!(out.contains("node 2 reconfig timeline:"), "{out}");
        assert!(
            out.contains("quiesce-begin      ops=1 waited=1.500ms"),
            "{out}"
        );
        assert!(
            out.contains("state-transfer     op=switch_protocol carried"),
            "{out}"
        );
        assert!(
            out.contains("rebind             op=switch_protocol"),
            "{out}"
        );
        assert!(out.contains("resume             applied=1 gen=1"), "{out}");
        assert_eq!(render_node(&t, 3), "", "frame records are not a timeline");
    }

    #[test]
    fn render_all_covers_every_node_with_reconfigs() {
        let t = Trace::from_records(vec![
            rec(1, 0, TraceKind::ReconfigApply, "mutate", 0, 0),
            rec(2, 4, TraceKind::NodeCrash, "fault", 3, 0),
        ]);
        let out = render_all(&t);
        assert!(out.contains("node 0 reconfig timeline:"), "{out}");
        assert!(out.contains("node 4 reconfig timeline:"), "{out}");
        assert!(out.contains("crash              lost=3"), "{out}");
    }
}
