//! Campaign cells run their protocol stacks without ever opening a
//! reconfiguration transaction, so the fleet-wide
//! `prepared == committed + rolled_back` ledger — the same law `mcheck`
//! audits state-by-state and the engine's own fault tests assert after a
//! run — must hold *identically at zero* on every cell. A nonzero
//! counter here means a campaign workload started mutating compositions
//! behind the experiment's back.

use campaign::{
    engine, CampaignSpec, FaultSpec, Protocol, RunConfig, ScenarioSpec, TopologySpec, TrafficSpec,
};
use netsim::{NodeId, SimDuration};

#[test]
fn every_campaign_cell_conserves_the_txn_ledger() {
    let scenario = ScenarioSpec::builder()
        .topology(TopologySpec::Line(4))
        .traffic(TrafficSpec::cbr(
            NodeId(0),
            NodeId(3),
            SimDuration::from_millis(500),
        ))
        .warmup(SimDuration::from_secs(5))
        .duration(SimDuration::from_secs(10))
        .build();
    let spec = CampaignSpec::new("txn-conservation")
        .scenario("line4", scenario)
        .protocols(Protocol::MANETKIT)
        .fault(FaultSpec::None)
        .seeds([3]);
    let report = engine::run(
        &spec,
        &RunConfig {
            threads: 2,
            check_determinism: false,
        },
    );
    assert!(!report.cells.is_empty());
    for cell in &report.cells {
        manetkit::check_fleet_conservation(&cell.stats, 0)
            .unwrap_or_else(|v| panic!("{}: {v}", cell.label()));
        assert_eq!(
            cell.stats.agent_counter("txn.prepared"),
            0,
            "{}: a campaign cell opened a transaction",
            cell.label()
        );
    }
}
