//! E13 acceptance: the 12-cell campaign grid (the three MANETKit
//! stacks × 2 faults × 2 seeds on the 5-node line) produces a
//! byte-identical deterministic report section on 1 and on 4 threads,
//! passes `--check-determinism`, and merges shard statistics exactly.

use campaign::{
    engine, CampaignSpec, FaultSpec, Protocol, RunConfig, ScenarioSpec, TopologySpec, TrafficSpec,
};
use netsim::{NodeId, SimDuration, SimTime, WorldStats};

/// The example's E13 smoke grid, time-compressed so the test stays fast
/// in debug builds: 12 cells (OLSR, DYMO, AODV) over a 5-node line.
fn smoke_grid_spec() -> CampaignSpec {
    let scenario = ScenarioSpec::builder()
        .topology(TopologySpec::Line(5))
        .traffic(TrafficSpec::cbr(
            NodeId(0),
            NodeId(4),
            SimDuration::from_millis(250),
        ))
        .warmup(SimDuration::from_secs(10))
        .duration(SimDuration::from_secs(20))
        .build();
    CampaignSpec::new("e13-acceptance")
        .scenario("line5", scenario)
        .protocols(Protocol::MANETKIT)
        .fault(FaultSpec::None)
        .fault(FaultSpec::CrashFor {
            node: NodeId(2),
            at: SimTime::ZERO + SimDuration::from_secs(15),
            downtime: SimDuration::from_secs(5),
        })
        .seeds([1, 2])
}

#[test]
fn smoke_grid_byte_identical_on_one_and_four_threads() {
    let spec = smoke_grid_spec();
    assert_eq!(spec.cells().len(), 12);

    let one = engine::run(
        &spec,
        &RunConfig {
            threads: 1,
            check_determinism: false,
        },
    );
    let four = engine::run(
        &spec,
        &RunConfig {
            threads: 4,
            check_determinism: false,
        },
    );

    assert_eq!(
        one.deterministic_json(),
        four.deterministic_json(),
        "the campaign section of BENCH_campaign.json must not depend on thread count"
    );
    assert!(
        !one.deterministic_json().contains("wall"),
        "timing must not leak into the deterministic section"
    );

    // The grid exercises both the healthy and the crash cells.
    assert_eq!(one.merged.node_crashes, 6);
    assert_eq!(one.merged.node_reboots, 6);
    assert!(one.merged.delivery_ratio() > 0.5);
    for cell in &one.cells {
        assert!(cell.stats.data_sent > 0, "idle cell: {}", cell.label());
    }
}

#[test]
fn determinism_check_passes_on_the_full_smoke_grid() {
    let spec = smoke_grid_spec();
    let report = engine::run(
        &spec,
        &RunConfig {
            threads: 4,
            check_determinism: true,
        },
    );
    let check = report.determinism.as_ref().expect("check requested");
    assert!(check.passed(), "diverged cells: {:?}", check.mismatched);
    let json = report.to_json();
    assert!(json.contains("\"determinism\":{\"checked\":true,\"passed\":true"));
}

#[test]
fn merged_section_equals_any_order_shard_fold() {
    let spec = smoke_grid_spec();
    let report = engine::run(
        &spec,
        &RunConfig {
            threads: 3,
            check_determinism: false,
        },
    );
    // Fold shards in three different orders; all must equal the report.
    let in_order = report
        .cells
        .iter()
        .fold(WorldStats::default(), |acc, c| acc.merged(&c.stats));
    let reversed = report
        .cells
        .iter()
        .rev()
        .fold(WorldStats::default(), |acc, c| acc.merged(&c.stats));
    let interleaved = report
        .cells
        .iter()
        .step_by(2)
        .chain(report.cells.iter().skip(1).step_by(2))
        .fold(WorldStats::default(), |acc, c| acc.merged(&c.stats));
    assert_eq!(report.merged, in_order);
    assert_eq!(report.merged, reversed);
    assert_eq!(report.merged, interleaved);
}
