//! Acceptance pin for the flight recorder: a seeded campaign cell replayed
//! under tracing is byte-identical, and corrupting one run (a different
//! seed) makes the diff report the first diverging record with node id,
//! virtual time and record kind.
#![cfg(feature = "trace")]

use campaign::{
    engine, run_cell_traced, CampaignSpec, FaultSpec, Protocol, RunConfig, ScenarioSpec,
    TopologySpec, TrafficSpec, TRACE_RING_CAPACITY,
};
use netsim::trace::first_divergence;
use netsim::{NodeId, SimDuration};

fn spec(name: &str, seeds: impl IntoIterator<Item = u64>) -> CampaignSpec {
    let scenario = ScenarioSpec::builder()
        .topology(TopologySpec::Line(3))
        .traffic(TrafficSpec::cbr(
            NodeId(0),
            NodeId(2),
            SimDuration::from_millis(500),
        ))
        .warmup(SimDuration::from_secs(5))
        .duration(SimDuration::from_secs(10))
        .build();
    CampaignSpec::new(name)
        .scenario("line3", scenario)
        .protocols([Protocol::MkitOlsr])
        .fault(FaultSpec::None)
        .seeds(seeds)
}

#[test]
fn traced_replay_of_a_seeded_cell_is_byte_identical() {
    let spec = spec("trace-pin", [7]);
    let cells = spec.cells();
    let (r1, t1) = run_cell_traced(&spec, &cells[0], TRACE_RING_CAPACITY);
    let (r2, t2) = run_cell_traced(&spec, &cells[0], TRACE_RING_CAPACITY);
    assert_eq!(r1.fingerprint(), r2.fingerprint());
    assert!(!t1.is_empty(), "a running cell must produce records");
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "same seed, same trace, byte for byte"
    );
    assert!(first_divergence(&t1, &t2).is_none());
}

#[test]
fn corrupted_run_reports_first_diverging_record() {
    // "Corrupt" one run by giving it a different seed: the earliest effect
    // is a shifted link-delay sample, which the diff pins to a concrete
    // record.
    let spec = spec("trace-diverge", [1, 2]);
    let cells = spec.cells();
    let (_, left) = run_cell_traced(&spec, &cells[0], TRACE_RING_CAPACITY);
    let (_, right) = run_cell_traced(&spec, &cells[1], TRACE_RING_CAPACITY);
    let d = first_divergence(&left, &right).expect("different seeds must diverge");
    let rec = d.left.or(d.right).expect("divergence carries a record");
    let msg = d.to_string();
    // The report names the node, the virtual time and the record kind.
    assert!(msg.contains(&format!("node {}", rec.node)), "{msg}");
    assert!(msg.contains(&format!("t={}us", rec.t_us)), "{msg}");
    assert!(msg.contains(rec.kind.as_str()), "{msg}");
}

#[test]
fn trace_does_not_perturb_the_simulation() {
    let spec = spec("trace-inert", [11]);
    let cells = spec.cells();
    let untraced = engine::run_cell(&spec, &cells[0]);
    let (traced, _) = run_cell_traced(&spec, &cells[0], TRACE_RING_CAPACITY);
    assert_eq!(
        untraced.fingerprint(),
        traced.fingerprint(),
        "attaching the recorder must not change the run"
    );
}

#[test]
fn deterministic_grid_passes_check_with_empty_details() {
    let spec = spec("trace-check", [3]);
    let report = engine::run(
        &spec,
        &RunConfig {
            threads: 2,
            check_determinism: true,
        },
    );
    let check = report.determinism.clone().expect("check ran");
    assert!(check.passed(), "details: {:?}", check.details);
    assert!(check.details.is_empty());
    assert!(report.to_json().contains("\"details\":[]"));
}
