//! Campaign results and the machine-readable `BENCH_campaign.json` report.
//!
//! The report is split into a **deterministic** section (per-cell and
//! merged statistics — byte-identical however many threads executed the
//! grid, the property `--check-determinism` and the engine tests enforce)
//! and a **timing** section (wall-clock, thread count, speedup) that is
//! legitimately nondeterministic and therefore excluded from every
//! determinism comparison.

use netsim::WorldStats;

/// The outcome of one executed campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Position in the campaign's deterministic cell ordering.
    pub index: usize,
    /// Protocol stack name.
    pub protocol: &'static str,
    /// Scenario label.
    pub scenario: String,
    /// Traffic-axis label (`"scenario"` when the campaign has no traffic
    /// axis and the cell carries only its scenario's built-in traffic).
    pub traffic: String,
    /// Phy-axis label (`"ideal"` when the campaign has no phy axis).
    pub phy: String,
    /// Fault-axis label.
    pub fault: String,
    /// World seed.
    pub seed: u64,
    /// Measured-window statistics (post-warm-up through end of run).
    pub stats: WorldStats,
    /// Wall-clock microseconds this cell took to dispatch on its worker
    /// thread. **Nondeterministic by nature** — never part of the
    /// determinism fingerprint or the byte-stable report section.
    pub dispatch_micros: u64,
}

impl CellResult {
    /// The cell's deterministic fingerprint: everything except wall-clock.
    ///
    /// Two executions of the same cell must produce byte-identical
    /// fingerprints regardless of which thread ran them or how long they
    /// took — this is exactly what `--check-determinism` compares.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.protocol,
            self.scenario,
            self.traffic,
            self.phy,
            self.fault,
            self.seed,
            stats_fingerprint(&self.stats)
        )
    }

    /// Short `protocol/scenario/traffic/fault/seed` coordinate label,
    /// with the phy coordinate spliced in only on a non-ideal channel —
    /// labels from pre-phy campaigns are unchanged.
    #[must_use]
    pub fn label(&self) -> String {
        let phy = if self.phy == "ideal" {
            String::new()
        } else {
            format!("/{}", self.phy)
        };
        format!(
            "{}/{}/{}{phy}/{}/s{}",
            self.protocol, self.scenario, self.traffic, self.fault, self.seed
        )
    }

    /// The cell's deterministic JSON object (no timing fields). The
    /// `"phy"` key appears only on a non-ideal channel, keeping reports
    /// from campaigns without a phy axis byte-identical to before the
    /// axis existed.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let phy = if self.phy == "ideal" {
            String::new()
        } else {
            format!(",\"phy\":{}", json_string(&self.phy))
        };
        format!(
            "{{\"index\":{},\"protocol\":{},\"scenario\":{},\"traffic\":{}{phy},\"fault\":{},\"seed\":{},\"stats\":{}}}",
            self.index,
            json_string(self.protocol),
            json_string(&self.scenario),
            json_string(&self.traffic),
            json_string(&self.fault),
            self.seed,
            stats_json(&self.stats),
        )
    }
}

/// Result of a `--check-determinism` pass: every cell was executed twice
/// (scheduled onto whatever threads were free) and the two fingerprints
/// were byte-compared.
#[derive(Debug, Clone, PartialEq)]
pub struct DeterminismCheck {
    /// Labels of cells whose re-run diverged (empty means the check passed).
    pub mismatched: Vec<String>,
    /// One diagnostic line per mismatched cell: the first differing stat
    /// field, plus (when the `trace` feature is on) the first diverging
    /// flight-recorder record from a traced replay of the cell.
    pub details: Vec<String>,
}

impl DeterminismCheck {
    /// Whether every cell replayed byte-identically.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatched.is_empty()
    }
}

/// Everything one campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-cell results in deterministic cell order.
    pub cells: Vec<CellResult>,
    /// All cells' measured windows merged with [`WorldStats::merge`] in
    /// cell order — exact percentiles over the concatenated latency
    /// multiset, not averaged per-cell quantiles.
    pub merged: WorldStats,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock microseconds for the whole campaign.
    pub wall_micros: u64,
    /// Sum of per-work-item dispatch times — including determinism-check
    /// re-runs, so the speedup always compares the *same* amount of work
    /// as `wall_micros` covers.
    pub serial_micros: u64,
    /// Determinism verification, when `--check-determinism` ran.
    pub determinism: Option<DeterminismCheck>,
}

impl CampaignReport {
    /// The wall-clock a 1-thread run of the same work list would need
    /// (modulo scheduling noise).
    #[must_use]
    pub fn serial_micros(&self) -> u64 {
        self.serial_micros
    }

    /// Parallel speedup over the serial estimate.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_micros == 0 {
            return 1.0;
        }
        self.serial_micros() as f64 / self.wall_micros as f64
    }

    /// The deterministic (byte-stable across thread counts) report
    /// section: per-cell and merged statistics only.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(CellResult::deterministic_json)
            .collect();
        format!(
            "{{\"name\":{},\"cells\":[{}],\"merged\":{}}}",
            json_string(&self.name),
            cells.join(","),
            stats_json(&self.merged),
        )
    }

    /// The full report: the deterministic `campaign` section plus the
    /// nondeterministic `timing` section (and the determinism verdict when
    /// the check ran). This is what `BENCH_campaign.json` holds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let timing = format!(
            "{{\"threads\":{},\"wall_ms\":{:.3},\"serial_ms\":{:.3},\"speedup\":{:.2},\"per_cell_ms\":[{}]}}",
            self.threads,
            self.wall_micros as f64 / 1000.0,
            self.serial_micros() as f64 / 1000.0,
            self.speedup(),
            self.cells
                .iter()
                .map(|c| format!("{:.3}", c.dispatch_micros as f64 / 1000.0))
                .collect::<Vec<_>>()
                .join(","),
        );
        let determinism = match &self.determinism {
            None => String::new(),
            Some(check) => format!(
                ",\"determinism\":{{\"checked\":true,\"passed\":{},\"mismatched\":[{}],\"details\":[{}]}}",
                check.passed(),
                check
                    .mismatched
                    .iter()
                    .map(|s| json_string(s))
                    .collect::<Vec<_>>()
                    .join(","),
                check
                    .details
                    .iter()
                    .map(|s| json_string(s))
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        };
        format!(
            "{{\"campaign\":{},\"timing\":{}{}}}",
            self.deterministic_json(),
            timing,
            determinism,
        )
    }
}

/// Renders the deterministic summary of a [`WorldStats`]: delivery,
/// overhead, exact latency percentiles and fault counters. Latency
/// percentiles come from the snapshot's full per-delivery series, so a
/// merged snapshot reports exact grid-wide quantiles. Phy counters are
/// appended only when the channel model actually transmitted or dropped
/// something, so ideal-channel reports keep their historical bytes.
#[must_use]
pub fn stats_json(s: &WorldStats) -> String {
    let phy = if s.phy_frames_tx > 0 || s.phy_queue_drops > 0 {
        format!(
            ",\"phy_frames_tx\":{},\"phy_queue_drops\":{},\"phy_airtime_us\":{},\
\"phy_queue_wait_p50_us\":{},\"phy_queue_wait_p95_us\":{},\"phy_utilization\":{:.6}",
            s.phy_frames_tx,
            s.phy_queue_drops,
            s.phy_airtime_us,
            s.p50_phy_queue_wait().as_micros(),
            s.p95_phy_queue_wait().as_micros(),
            s.phy_utilization(),
        )
    } else {
        String::new()
    };
    format!(
        "{{\"data_sent\":{},\"data_delivered\":{},\"delivery_ratio\":{:.6},\
\"data_hops\":{},\"data_dropped_ttl\":{},\"data_dropped_link\":{},\
\"data_dropped_buffer\":{},\"data_dropped_crash\":{},\"control_frames\":{},\"control_bytes\":{},\
\"control_received\":{},\"control_lost\":{},\"latency_mean_us\":{},\
\"latency_p50_us\":{},\"latency_p95_us\":{},\"faults_injected\":{},\
\"node_crashes\":{},\"node_reboots\":{},\"partitions_started\":{},\
\"partitions_healed\":{},\"link_flaps\":{}{phy}}}",
        s.data_sent,
        s.data_delivered,
        s.delivery_ratio(),
        s.data_hops,
        s.data_dropped_ttl,
        s.data_dropped_link,
        s.data_dropped_buffer,
        s.data_dropped_crash,
        s.control_frames,
        s.control_bytes,
        s.control_received,
        s.control_lost,
        s.mean_delivery_latency().as_micros(),
        s.p50_delivery_latency().as_micros(),
        s.p95_delivery_latency().as_micros(),
        s.faults_injected,
        s.node_crashes,
        s.node_reboots,
        s.partitions_started,
        s.partitions_healed,
        s.link_flaps,
    )
}

/// A canonical, order-stable dump of *every* [`WorldStats`] field — the
/// agent-counter map is sorted by name (`HashMap` iteration order is not
/// deterministic across instances) and the full latency series is
/// included, so any divergence at all flips the fingerprint.
fn stats_fingerprint(s: &WorldStats) -> String {
    let mut counters: Vec<(&str, u64)> = s
        .agent_counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    counters.sort_unstable();
    format!(
        "{:?}",
        (
            (
                s.data_sent,
                s.data_delivered,
                s.data_dropped_ttl,
                s.data_dropped_link,
                s.data_dropped_buffer,
                s.data_dropped_crash,
            ),
            (
                s.data_corrupted,
                s.data_duplicated,
                s.data_dup_delivered,
                s.data_reordered,
                s.data_hops,
            ),
            (s.delivery_latency_total, &s.delivery_latencies_us),
            (
                s.control_frames,
                s.control_bytes,
                s.control_received,
                s.control_lost,
            ),
            (
                s.faults_injected,
                s.node_crashes,
                s.node_reboots,
                s.battery_exhaustions,
                s.partitions_started,
                s.partitions_healed,
                s.link_flaps,
            ),
            (
                s.phy_queue_drops,
                s.phy_frames_tx,
                s.phy_airtime_us,
                &s.phy_queue_wait_us,
                s.sim_elapsed_us,
            ),
            counters,
        )
    )
}

/// Escapes a string as a JSON string literal (ASCII-safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(dispatch_micros: u64) -> CellResult {
        CellResult {
            index: 0,
            protocol: "mkit-olsr",
            scenario: "line5".into(),
            traffic: "scenario".into(),
            phy: "ideal".into(),
            fault: "none".into(),
            seed: 7,
            stats: WorldStats {
                data_sent: 10,
                data_delivered: 9,
                delivery_latencies_us: vec![5, 9, 30],
                ..WorldStats::default()
            },
            dispatch_micros,
        }
    }

    #[test]
    fn fingerprint_excludes_wall_clock_dispatch_micros() {
        // Same cell, wildly different wall-clock: the determinism
        // comparison must not see the difference…
        let fast = cell(12);
        let slow = cell(9_999_999);
        assert_eq!(fast.fingerprint(), slow.fingerprint());
        assert_eq!(fast.deterministic_json(), slow.deterministic_json());
        // …but any genuine stat divergence must be caught.
        let mut diverged = cell(12);
        diverged.stats.data_delivered = 8;
        assert_ne!(fast.fingerprint(), diverged.fingerprint());
    }

    #[test]
    fn json_escaping_and_shape() {
        let mut c = cell(3);
        c.scenario = "li\"ne\n5".into();
        let json = c.deterministic_json();
        assert!(json.contains("\"scenario\":\"li\\\"ne\\n5\""));
        assert!(json.contains("\"delivery_ratio\":0.900000"));
        assert!(json.contains("\"latency_p50_us\":9"));
        assert!(!json.contains("dispatch"), "timing never leaks: {json}");
    }

    #[test]
    fn phy_fields_appear_only_off_the_ideal_channel() {
        // Ideal cell: no "phy" key, no phy counters — the report bytes
        // predate the phy axis.
        let ideal = cell(3);
        let json = ideal.deterministic_json();
        assert!(!json.contains("\"phy"), "ideal cell leaks phy keys: {json}");
        assert_eq!(ideal.label(), "mkit-olsr/line5/scenario/none/s7");

        // Contended cell: the phy coordinate and counters surface.
        let mut contended = cell(3);
        contended.phy = "air256k".into();
        contended.stats.phy_frames_tx = 12;
        contended.stats.phy_queue_drops = 2;
        contended.stats.phy_airtime_us = 500_000;
        contended.stats.phy_queue_wait_us = vec![10, 20, 400];
        contended.stats.sim_elapsed_us = 1_000_000;
        let json = contended.deterministic_json();
        assert!(json.contains("\"phy\":\"air256k\""));
        assert!(json.contains("\"phy_frames_tx\":12"));
        assert!(json.contains("\"phy_queue_drops\":2"));
        assert!(json.contains("\"phy_utilization\":0.500000"));
        assert_eq!(
            contended.label(),
            "mkit-olsr/line5/scenario/air256k/none/s7"
        );
        assert_ne!(ideal.fingerprint(), contended.fingerprint());
    }

    #[test]
    fn report_speedup_uses_serial_estimate() {
        let report = CampaignReport {
            name: "t".into(),
            cells: vec![cell(100), cell(300)],
            merged: WorldStats::default(),
            threads: 2,
            wall_micros: 200,
            serial_micros: 400,
            determinism: None,
        };
        assert_eq!(report.serial_micros(), 400);
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"speedup\":2.00"));
        assert!(json.starts_with("{\"campaign\":{"));
    }
}
