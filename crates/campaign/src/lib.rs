//! Parallel experiment-campaign engine for the MANETKit reproduction.
//!
//! The paper's evaluation (§5–§6) is a grid of experiment cells —
//! protocol × topology × traffic × fault × seed — that the original
//! authors executed one at a time on a 5-node testbed. Here each cell is a
//! self-contained deterministic [`netsim::World`], which makes a campaign
//! embarrassingly parallel: this crate provides
//!
//! * [`spec`] — the declarative vocabulary: [`Protocol`] (including the
//!   closed-loop [`Protocol::Adaptive`] treatment arm driven by the
//!   `adapt` crate), [`TopologySpec`], [`ScenarioSpec`] (builder-style;
//!   the scenario vocabulary shared with the `bench` crate),
//!   [`TrafficSpec`] (also a first-class grid axis), [`FaultSpec`] and
//!   the [`CampaignSpec`] grid.
//! * [`engine`] — scoped work-stealing execution over OS threads
//!   ([`engine::run`]): workers claim cells off an atomic cursor, results
//!   land in deterministic cell order, and `check_determinism` re-runs
//!   every cell on whatever thread frees up and byte-compares the
//!   outcomes (wall-clock excluded).
//! * [`report`] — [`CampaignReport`] with per-cell and
//!   [`WorldStats::merge`](netsim::WorldStats::merge)d statistics and the
//!   machine-readable `BENCH_campaign.json` emitter, split into a
//!   byte-stable deterministic section and a timing section.
//!
//! # Example
//!
//! ```
//! use campaign::{
//!     engine, CampaignSpec, Protocol, RunConfig, ScenarioSpec, TopologySpec, TrafficSpec,
//! };
//! use netsim::{NodeId, SimDuration};
//!
//! let scenario = ScenarioSpec::builder()
//!     .topology(TopologySpec::Line(3))
//!     .traffic(TrafficSpec::cbr(NodeId(0), NodeId(2), SimDuration::from_millis(500)))
//!     .warmup(SimDuration::from_secs(5))
//!     .duration(SimDuration::from_secs(10))
//!     .build();
//! let spec = CampaignSpec::new("doc")
//!     .scenario("line3", scenario)
//!     .protocols([Protocol::MkitDymo])
//!     .seeds([1]);
//! let report = engine::run(&spec, &RunConfig { threads: 2, check_determinism: false });
//! assert_eq!(report.cells.len(), 1);
//! assert!(report.merged.data_sent > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod report;
pub mod spec;

pub use engine::{available_threads, run_cell, RunConfig};
#[cfg(feature = "trace")]
pub use engine::{run_cell_traced, TRACE_RING_CAPACITY};
pub use report::{CampaignReport, CellResult, DeterminismCheck};
pub use spec::{
    AgentFactory, CampaignSpec, Cell, FaultSpec, PhySpec, Protocol, ScenarioBuilder, ScenarioSpec,
    TopologySpec, TrafficSpec,
};
