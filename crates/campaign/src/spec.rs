//! The declarative campaign vocabulary: protocols, topologies, traffic,
//! scenarios, fault axes and the grid that multiplies them into cells.

use manetkit_baseline::{Dymoum, Olsrd, OlsrdConfig};
use netsim::fault::{FaultPlan, FrameChaos};
use netsim::mobility::{random_waypoint_field, RandomWaypoint};
use netsim::{
    Channel, LinkModel, NodeId, NodeOs, PhyModel, RoutingAgent, SimDuration, SimTime, Topology,
    World, WorldBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a routing agent for one node.
///
/// `Send + Sync` so a single factory can be shared by (or rebuilt on) any
/// campaign worker thread — the bound every parallel engine needs and the
/// reason this type lives here rather than in `bench`.
pub type AgentFactory = Box<dyn Fn() -> Box<dyn RoutingAgent> + Send + Sync>;

/// A routing-protocol stack a campaign cell can deploy fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Protocol {
    /// MANETKit componentised OLSR.
    MkitOlsr,
    /// MANETKit componentised DYMO.
    MkitDymo,
    /// MANETKit componentised AODV.
    MkitAodv,
    /// Monolithic Unik-olsrd analogue (baseline).
    Olsrd,
    /// Monolithic DYMOUM analogue (baseline).
    Dymoum,
    /// Agentless greedy geographic forwarding over a spatial topology:
    /// the world's data plane relays via positions (no per-node agent,
    /// no control traffic). The scale-testing stack — not part of
    /// [`ALL`](Self::ALL) because it is not a routing protocol under
    /// comparison.
    Geo,
    /// The closed-loop adaptive stack: nodes boot MANETKit OLSR and the
    /// `adapt` policy engine drives transactional OLSR↔DYMO↔AODV
    /// switches off windowed telemetry during the measured span. Not in
    /// [`ALL`](Self::ALL)/[`MANETKIT`](Self::MANETKIT) — it is the
    /// *treatment* arm pitted against those static baselines. Cells of
    /// this protocol are driven by the engine directly (the
    /// [`factory`](Self::factory) contract cannot carry the fleet
    /// handles the coordinator needs), so [`factory`](Self::factory)
    /// panics for it.
    Adaptive,
}

impl Protocol {
    /// Every protocol stack the campaign engine knows.
    pub const ALL: [Protocol; 5] = [
        Protocol::MkitOlsr,
        Protocol::MkitDymo,
        Protocol::MkitAodv,
        Protocol::Olsrd,
        Protocol::Dymoum,
    ];

    /// The MANETKit stacks only (the paper's framework side).
    pub const MANETKIT: [Protocol; 3] =
        [Protocol::MkitOlsr, Protocol::MkitDymo, Protocol::MkitAodv];

    /// Stable display name (also the JSON report key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Protocol::MkitOlsr => "mkit-olsr",
            Protocol::MkitDymo => "mkit-dymo",
            Protocol::MkitAodv => "mkit-aodv",
            Protocol::Olsrd => "olsrd",
            Protocol::Dymoum => "dymoum",
            Protocol::Geo => "geo",
            Protocol::Adaptive => "adaptive",
        }
    }

    /// Whether this stack runs without per-node agents (the world's own
    /// data plane does the forwarding). The engine skips agent
    /// installation and enables the matching world mode instead.
    #[must_use]
    pub fn is_agentless(self) -> bool {
        matches!(self, Protocol::Geo)
    }

    /// A thread-safe factory building one node's agent for this stack.
    ///
    /// # Panics
    ///
    /// Panics for [`Protocol::Adaptive`]: adaptive cells are installed by
    /// the engine through `adapt::install_fleet` (the coordinator needs
    /// every node's control handle, which a bare agent factory cannot
    /// return).
    #[must_use]
    pub fn factory(self) -> AgentFactory {
        match self {
            Protocol::MkitOlsr => Box::new(|| {
                let (node, _handle) = manetkit_olsr::node(Default::default());
                Box::new(node)
            }),
            Protocol::MkitDymo => Box::new(|| {
                let (node, _handle) = manetkit_dymo::node(Default::default());
                Box::new(node)
            }),
            Protocol::MkitAodv => Box::new(|| {
                let (node, _handle) = manetkit_aodv::node(Default::default());
                Box::new(node)
            }),
            Protocol::Olsrd => Box::new(|| Box::new(Olsrd::new(OlsrdConfig::default()))),
            Protocol::Dymoum => Box::new(|| Box::new(Dymoum::new())),
            Protocol::Geo => Box::new(|| Box::new(NullAgent)),
            Protocol::Adaptive => {
                panic!("adaptive cells are installed by the campaign engine, not a factory")
            }
        }
    }
}

/// The do-nothing agent behind agentless stacks: satisfies the factory
/// contract but the engine never installs it (forwarding happens in the
/// world's data plane).
struct NullAgent;

impl RoutingAgent for NullAgent {
    fn name(&self) -> &str {
        "geo"
    }
    fn start(&mut self, _os: &mut NodeOs) {}
    fn on_frame(&mut self, _os: &mut NodeOs, _from: packetbb::Address, _bytes: &[u8]) {}
    fn on_timer(&mut self, _os: &mut NodeOs, _token: u64) {}
    fn on_filter_event(&mut self, _os: &mut NodeOs, _event: netsim::FilterEvent) {}
}

/// Declarative topology — builds a concrete [`Topology`] per cell.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// A chain of `n` nodes (the paper's testbed shape).
    Line(usize),
    /// All-to-all connectivity over `n` nodes.
    Full(usize),
    /// A `rows` x `cols` lattice.
    Grid(usize, usize),
    /// `n` nodes scattered uniformly on a unit square, linked within
    /// `radius`; `seed` fixes the placement (not the world's RNG).
    RandomGeometric {
        /// Node count.
        n: usize,
        /// Connectivity radius on the unit square.
        radius: f64,
        /// Placement seed.
        seed: u64,
    },
    /// Like [`RandomGeometric`](Self::RandomGeometric) (same seeded
    /// placements) but backed by the grid-bucket spatial index: O(nearby)
    /// neighbour queries instead of an O(n²) matrix, the form that scales
    /// to 10k-node worlds and supports per-node moves and geo forwarding.
    Spatial {
        /// Node count.
        n: usize,
        /// Radio radius on the unit square.
        radius: f64,
        /// Placement seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Builds the concrete connectivity matrix.
    #[must_use]
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Line(n) => Topology::line(n),
            TopologySpec::Full(n) => Topology::full(n),
            TopologySpec::Grid(rows, cols) => Topology::grid(rows, cols),
            TopologySpec::RandomGeometric { n, radius, seed } => {
                Topology::random_geometric(n, radius, seed)
            }
            TopologySpec::Spatial { n, radius, seed } => Topology::random_spatial(n, radius, seed),
        }
    }

    /// Number of nodes the built topology will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::Line(n) | TopologySpec::Full(n) => n,
            TopologySpec::Grid(rows, cols) => rows * cols,
            TopologySpec::RandomGeometric { n, .. } | TopologySpec::Spatial { n, .. } => n,
        }
    }

    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Line(n) => format!("line{n}"),
            TopologySpec::Full(n) => format!("full{n}"),
            TopologySpec::Grid(rows, cols) => format!("grid{rows}x{cols}"),
            TopologySpec::RandomGeometric { n, radius, seed } => {
                format!("geo{n}-r{radius}-s{seed}")
            }
            TopologySpec::Spatial { n, radius, seed } => {
                format!("spatial{n}-r{radius}-s{seed}")
            }
        }
    }
}

/// One application traffic pattern of a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficSpec {
    /// Constant-bit-rate datagrams `src` → `dst` every `interval` for the
    /// scenario's whole measured span. The first packet is offset half an
    /// interval past warm-up so every send falls unambiguously inside one
    /// measurement window.
    Cbr {
        /// Originating node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Inter-packet gap.
        interval: SimDuration,
        /// Payload size in bytes.
        payload: usize,
    },
    /// `flows` CBR flows between seeded random distinct node pairs —
    /// the way to load a 10k-node world with a thousand flows without
    /// enumerating them. Pair selection is fixed by `seed`, not by the
    /// world seed, so the same scenario means the same flows across the
    /// whole seed axis.
    RandomFlows {
        /// Number of concurrent flows.
        flows: usize,
        /// Inter-packet gap per flow.
        interval: SimDuration,
        /// Payload size in bytes.
        payload: usize,
        /// Pair-selection seed.
        seed: u64,
    },
}

impl TrafficSpec {
    /// A CBR flow with the default 64-byte payload.
    #[must_use]
    pub fn cbr(src: NodeId, dst: NodeId, interval: SimDuration) -> Self {
        TrafficSpec::Cbr {
            src,
            dst,
            interval,
            payload: 64,
        }
    }

    /// `flows` seeded random-pair CBR flows with the given payload.
    #[must_use]
    pub fn random_flows(flows: usize, interval: SimDuration, payload: usize, seed: u64) -> Self {
        TrafficSpec::RandomFlows {
            flows,
            interval,
            payload,
            seed,
        }
    }

    /// Stable label for reports (also the traffic-axis cell coordinate).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TrafficSpec::Cbr {
                src, dst, interval, ..
            } => {
                format!("cbr{}-{}-{}ms", src.0, dst.0, interval.as_micros() / 1_000)
            }
            TrafficSpec::RandomFlows {
                flows,
                interval,
                seed,
                ..
            } => format!("flows{flows}-{}ms-s{seed}", interval.as_micros() / 1_000),
        }
    }

    /// Schedules this traffic pattern into a freshly built world, for a
    /// measured span of `[warmup, end)`: every flow's first send is
    /// offset half an interval past warm-up (plus a per-flow phase
    /// stagger for random flows) so each send falls unambiguously inside
    /// one measurement window.
    pub fn install(&self, world: &mut World, warmup: SimDuration, end: SimTime) {
        match *self {
            TrafficSpec::Cbr {
                src,
                dst,
                interval,
                payload,
            } => {
                schedule_cbr(
                    world,
                    src,
                    dst,
                    interval,
                    payload,
                    warmup,
                    SimDuration::ZERO,
                    end,
                );
            }
            TrafficSpec::RandomFlows {
                flows,
                interval,
                payload,
                seed,
            } => {
                let n = world.node_count();
                assert!(n >= 2, "random flows need at least two nodes");
                let mut rng = StdRng::seed_from_u64(seed);
                for f in 0..flows {
                    let src = NodeId(rng.gen_range(0..n));
                    let dst = loop {
                        let d = NodeId(rng.gen_range(0..n));
                        if d != src {
                            break d;
                        }
                    };
                    // Stagger flow phases across one interval so a
                    // thousand flows don't all fire on the same tick.
                    let phase = SimDuration::from_micros(
                        interval.as_micros() * (f as u64) / (flows as u64).max(1),
                    );
                    schedule_cbr(world, src, dst, interval, payload, warmup, phase, end);
                }
            }
        }
    }
}

/// Schedules one CBR flow: first send half an interval past warm-up (plus
/// `phase`), then every `interval` until `end`.
#[allow(clippy::too_many_arguments)]
fn schedule_cbr(
    world: &mut World,
    src: NodeId,
    dst: NodeId,
    interval: SimDuration,
    payload: usize,
    warmup: SimDuration,
    phase: SimDuration,
    end: SimTime,
) {
    let dst_addr = world.addr(dst);
    let mut at =
        SimTime::ZERO + warmup + SimDuration::from_micros(interval.as_micros() / 2) + phase;
    let mut k = 0u32;
    while at < end {
        let mut bytes = vec![0u8; payload.max(4)];
        bytes[..4].copy_from_slice(&k.to_be_bytes());
        world.send_datagram_at(at, src, dst_addr, bytes);
        at += interval;
        k += 1;
    }
}

/// A fault axis of the grid: how (and whether) a cell's run is disturbed.
///
/// Declarative so the same axis can be stamped with each cell's seed —
/// stochastic plan expansion (churn, chaos draws) stays per-seed
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultSpec {
    /// Undisturbed run.
    None,
    /// `node` crashes at `at` and reboots cold after `downtime`.
    CrashFor {
        /// The crashing node.
        node: NodeId,
        /// Crash instant.
        at: SimTime,
        /// Time until the cold reboot.
        downtime: SimDuration,
    },
    /// A named partition separates `groups` between `at` and `heal`.
    Partition {
        /// Partition start.
        at: SimTime,
        /// Heal instant.
        heal: SimTime,
        /// The mutually-unreachable node groups.
        groups: Vec<Vec<NodeId>>,
    },
    /// Stochastic frame chaos (corruption/duplication/reordering) for the
    /// whole run, drawn from the plan seed.
    Chaos(FrameChaos),
}

impl FaultSpec {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FaultSpec::None => "none".into(),
            FaultSpec::CrashFor { node, .. } => format!("crash-{node}"),
            FaultSpec::Partition { groups, .. } => format!("partition-{}way", groups.len()),
            FaultSpec::Chaos(_) => "chaos".into(),
        }
    }

    /// Materialises the fault plan for one cell, seeded by the cell seed.
    #[must_use]
    pub fn plan(&self, seed: u64) -> Option<FaultPlan> {
        match self {
            FaultSpec::None => None,
            FaultSpec::CrashFor { node, at, downtime } => Some(
                FaultPlan::builder(seed)
                    .crash_for(*at, *node, *downtime)
                    .build(),
            ),
            FaultSpec::Partition { at, heal, groups } => Some(
                FaultPlan::builder(seed)
                    .partition(*at, *heal, "campaign-cut", groups.clone())
                    .build(),
            ),
            FaultSpec::Chaos(chaos) => Some(FaultPlan::builder(seed).chaos(*chaos).build()),
        }
    }
}

/// The channel-model axis of the grid: which [`PhyModel`] every node's
/// radio uses in a cell. An empty axis behaves as a single ideal channel,
/// so campaigns predating the axis (and their committed artifacts) are
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhySpec {
    /// The channel model the cell's world installs.
    pub model: PhyModel,
}

impl PhySpec {
    /// The ideal channel: zero serialization delay, infinite capacity
    /// (the historical behaviour).
    #[must_use]
    pub fn ideal() -> Self {
        PhySpec {
            model: PhyModel::Ideal,
        }
    }

    /// A per-link constant-bandwidth channel (serialization delay and
    /// bounded transmit queues, no airtime sharing).
    #[must_use]
    pub fn constant_bandwidth(bits_per_sec: u64, queue_frames: usize) -> Self {
        PhySpec {
            model: PhyModel::ConstantBandwidth(Channel {
                bits_per_sec,
                queue_frames,
            }),
        }
    }

    /// A shared-airtime channel: concurrent transmitters in a spatial
    /// neighbourhood split the capacity max-min fairly.
    #[must_use]
    pub fn shared_airtime(bits_per_sec: u64, queue_frames: usize) -> Self {
        PhySpec {
            model: PhyModel::SharedAirtime(Channel {
                bits_per_sec,
                queue_frames,
            }),
        }
    }

    /// Stable label for reports (`"ideal"`, `"cbr256k"`, `"air256k"` …).
    #[must_use]
    pub fn label(&self) -> String {
        self.model.label()
    }
}

impl Default for PhySpec {
    fn default() -> Self {
        PhySpec::ideal()
    }
}

/// A complete experiment scenario: topology, link model, traffic and the
/// warm-up/measurement timeline. Built with [`ScenarioSpec::builder`] — the
/// one scenario vocabulary shared by campaign cells and the E-series
/// benches (no positional-argument constructors).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    topology: TopologySpec,
    link: LinkModel,
    traffic: Vec<TrafficSpec>,
    mobility: Option<RandomWaypoint>,
    warmup: SimDuration,
    duration: SimDuration,
}

impl ScenarioSpec {
    /// Starts building a scenario (default: 5-node line, default link
    /// model, no traffic, 30 s warm-up, 60 s measured span).
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec {
                topology: TopologySpec::Line(5),
                link: LinkModel::default(),
                traffic: Vec::new(),
                mobility: None,
                warmup: SimDuration::from_secs(30),
                duration: SimDuration::from_secs(60),
            },
        }
    }

    /// The scenario's topology.
    #[must_use]
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// Number of nodes in the scenario.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Warm-up span (excluded from measurement).
    #[must_use]
    pub fn warmup(&self) -> SimDuration {
        self.warmup
    }

    /// Measured span following warm-up.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// End of the run (warm-up plus measured span).
    #[must_use]
    pub fn end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }

    /// A [`WorldBuilder`] preconfigured with this scenario's topology and
    /// link model; callers add the seed and an optional fault plan.
    #[must_use]
    pub fn world_builder(&self) -> WorldBuilder {
        World::builder()
            .topology(self.topology.build())
            .link_model(self.link)
    }

    /// The scenario's random-waypoint mobility parameters, when set.
    #[must_use]
    pub fn mobility(&self) -> Option<&RandomWaypoint> {
        self.mobility.as_ref()
    }

    /// Schedules the scenario's mobility (per-node moves over the spatial
    /// grid) into a freshly built world. A no-op for static scenarios.
    pub fn install_mobility(&self, world: &mut World) {
        if let Some(params) = self.mobility {
            random_waypoint_field(params).schedule_into(world);
        }
    }

    /// The scenario's built-in traffic patterns.
    #[must_use]
    pub fn traffic(&self) -> &[TrafficSpec] {
        &self.traffic
    }

    /// Schedules the scenario's built-in traffic into a freshly built
    /// world (axis traffic from a [`CampaignSpec`] grid installs on top).
    pub fn install_traffic(&self, world: &mut World) {
        for t in &self.traffic {
            t.install(world, self.warmup, self.end());
        }
    }
}

/// Builder for [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Sets the topology.
    #[must_use]
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.spec.topology = topology;
        self
    }

    /// Sets the link delay/jitter/loss model.
    #[must_use]
    pub fn link_model(mut self, link: LinkModel) -> Self {
        self.spec.link = link;
        self
    }

    /// Adds a traffic pattern — the one entry point for all traffic
    /// shapes (build the value with [`TrafficSpec::cbr`],
    /// [`TrafficSpec::random_flows`] or the enum literals).
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficSpec) -> Self {
        self.spec.traffic.push(traffic);
        self
    }

    /// Adds a CBR flow `src` → `dst` with the given inter-packet gap and a
    /// 64-byte payload.
    #[deprecated(
        since = "0.2.0",
        note = "use traffic(TrafficSpec::cbr(src, dst, interval))"
    )]
    #[must_use]
    pub fn cbr(self, src: NodeId, dst: NodeId, interval: SimDuration) -> Self {
        self.traffic(TrafficSpec::cbr(src, dst, interval))
    }

    /// Adds a CBR flow with an explicit payload size.
    #[deprecated(since = "0.2.0", note = "use traffic(TrafficSpec::Cbr { .. })")]
    #[must_use]
    pub fn cbr_sized(
        self,
        src: NodeId,
        dst: NodeId,
        interval: SimDuration,
        payload: usize,
    ) -> Self {
        self.traffic(TrafficSpec::Cbr {
            src,
            dst,
            interval,
            payload,
        })
    }

    /// Adds `flows` CBR flows between seeded random distinct node pairs
    /// (see [`TrafficSpec::RandomFlows`]).
    #[deprecated(
        since = "0.2.0",
        note = "use traffic(TrafficSpec::random_flows(flows, interval, payload, seed))"
    )]
    #[must_use]
    pub fn random_flows(
        self,
        flows: usize,
        interval: SimDuration,
        payload: usize,
        seed: u64,
    ) -> Self {
        self.traffic(TrafficSpec::random_flows(flows, interval, payload, seed))
    }

    /// Attaches random-waypoint mobility and sets the topology to the
    /// walk's spatial starting placements: `params` fully determines both
    /// (same seed, same physical movement), so topology and movement
    /// cannot drift apart.
    #[must_use]
    pub fn mobility(mut self, params: RandomWaypoint) -> Self {
        self.spec.topology = TopologySpec::Spatial {
            n: params.nodes,
            radius: params.radius,
            seed: params.seed,
        };
        self.spec.mobility = Some(params);
        self
    }

    /// Sets the warm-up span (excluded from measurement).
    #[must_use]
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.spec.warmup = warmup;
        self
    }

    /// Sets the measured span following warm-up.
    #[must_use]
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.spec.duration = duration;
        self
    }

    /// Finishes the scenario.
    #[must_use]
    pub fn build(self) -> ScenarioSpec {
        self.spec
    }
}

/// One cell of a campaign grid: the cross product coordinates plus the
/// cell's deterministic position in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the deterministic cell ordering (also the report index).
    pub index: usize,
    /// Protocol stack deployed on every node.
    pub protocol: Protocol,
    /// Index into [`CampaignSpec::scenarios`].
    pub scenario: usize,
    /// Index into [`CampaignSpec::traffics`] (0 when the traffic axis is
    /// empty: the cell runs the scenario's built-in traffic only).
    pub traffic: usize,
    /// Index into [`CampaignSpec::phys`] (0 when the phy axis is empty:
    /// the cell runs on the ideal channel).
    pub phy: usize,
    /// Index into [`CampaignSpec::faults`].
    pub fault: usize,
    /// World seed (also stamps the fault plan).
    pub seed: u64,
}

/// A declarative grid of experiment cells:
/// scenarios × traffics × phys × protocols × faults × seeds, in that
/// nesting order. An empty traffic axis means every cell runs its
/// scenario's built-in traffic; a populated one installs each labelled
/// [`TrafficSpec`] *on top* of the scenario's built-in traffic, making
/// traffic shape a first-class grid coordinate. An empty phy axis means
/// every cell runs on the ideal channel.
///
/// The grid is *data*; execution lives in [`crate::engine`]. Cell order is
/// deterministic and independent of how many threads later execute it.
#[derive(Debug)]
pub struct CampaignSpec {
    /// Campaign name (report header).
    pub name: String,
    /// Labelled scenarios (outermost axis).
    pub scenarios: Vec<(String, ScenarioSpec)>,
    /// Labelled traffic patterns (empty: scenario traffic only).
    pub traffics: Vec<(String, TrafficSpec)>,
    /// Channel models (empty: ideal channel only).
    pub phys: Vec<PhySpec>,
    /// Protocol stacks.
    pub protocols: Vec<Protocol>,
    /// Fault axes.
    pub faults: Vec<FaultSpec>,
    /// World seeds (innermost axis).
    pub seeds: Vec<u64>,
}

impl CampaignSpec {
    /// Starts a campaign grid with the given name and no axes.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            scenarios: Vec::new(),
            traffics: Vec::new(),
            phys: Vec::new(),
            protocols: Vec::new(),
            faults: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Adds a labelled scenario.
    #[must_use]
    pub fn scenario(mut self, label: impl Into<String>, spec: ScenarioSpec) -> Self {
        self.scenarios.push((label.into(), spec));
        self
    }

    /// Adds a labelled traffic pattern to the traffic axis.
    #[must_use]
    pub fn traffic(mut self, label: impl Into<String>, spec: TrafficSpec) -> Self {
        self.traffics.push((label.into(), spec));
        self
    }

    /// Adds a channel model to the phy axis.
    #[must_use]
    pub fn phy(mut self, phy: PhySpec) -> Self {
        self.phys.push(phy);
        self
    }

    /// Adds protocol stacks to the grid.
    #[must_use]
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Adds a fault axis.
    #[must_use]
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds world seeds.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Enumerates the grid in its deterministic order:
    /// scenario → traffic → phy → protocol → fault → seed. An empty fault
    /// axis behaves as a single [`FaultSpec::None`]; an empty traffic axis
    /// as a single scenario-traffic-only coordinate; an empty phy axis as
    /// a single ideal channel.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let traffic_count = self.traffics.len().max(1);
        let phy_count = self.phys.len().max(1);
        let fault_count = self.faults.len().max(1);
        let mut cells = Vec::new();
        for scenario in 0..self.scenarios.len() {
            for traffic in 0..traffic_count {
                for phy in 0..phy_count {
                    for &protocol in &self.protocols {
                        for fault in 0..fault_count {
                            for &seed in &self.seeds {
                                cells.push(Cell {
                                    index: cells.len(),
                                    protocol,
                                    scenario,
                                    traffic,
                                    phy,
                                    fault,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The fault spec for a cell (the implicit `None` when no axis is set).
    #[must_use]
    pub fn fault_spec(&self, cell: &Cell) -> FaultSpec {
        self.faults
            .get(cell.fault)
            .cloned()
            .unwrap_or(FaultSpec::None)
    }

    /// The axis traffic a cell installs on top of its scenario's built-in
    /// traffic; `None` when the traffic axis is empty.
    #[must_use]
    pub fn traffic_spec(&self, cell: &Cell) -> Option<&TrafficSpec> {
        self.traffics.get(cell.traffic).map(|(_, t)| t)
    }

    /// The cell's traffic-axis label (`"scenario"` when the axis is empty
    /// — the cell carries only its scenario's built-in traffic).
    #[must_use]
    pub fn traffic_label(&self, cell: &Cell) -> String {
        self.traffics
            .get(cell.traffic)
            .map_or_else(|| "scenario".to_string(), |(label, _)| label.clone())
    }

    /// The channel model for a cell (the implicit ideal channel when no
    /// phy axis is set).
    #[must_use]
    pub fn phy_spec(&self, cell: &Cell) -> PhySpec {
        self.phys.get(cell.phy).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_deterministic_and_ordered() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .scenario("b", ScenarioSpec::builder().build())
            .protocols([Protocol::MkitOlsr, Protocol::Dymoum])
            .fault(FaultSpec::None)
            .seeds([1, 2]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        // Scenario is the outermost axis, seed the innermost.
        assert_eq!(cells[0].scenario, 0);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[4].scenario, 1);
        assert_eq!(spec.cells(), cells, "re-enumeration is stable");
    }

    #[test]
    fn empty_fault_axis_means_one_undisturbed_cell_per_point() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .protocols([Protocol::MkitAodv])
            .seeds([9]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(spec.fault_spec(&cells[0]), FaultSpec::None);
    }

    #[test]
    fn traffic_axis_multiplies_the_grid_between_scenario_and_protocol() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .traffic(
                "slow",
                TrafficSpec::cbr(NodeId(0), NodeId(4), SimDuration::from_secs(1)),
            )
            .traffic(
                "fast",
                TrafficSpec::cbr(NodeId(0), NodeId(4), SimDuration::from_millis(100)),
            )
            .protocols([Protocol::MkitOlsr, Protocol::Adaptive])
            .seeds([1]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].traffic, 0);
        assert_eq!(cells[1].traffic, 0);
        assert_eq!(cells[2].traffic, 1);
        assert_eq!(spec.traffic_label(&cells[0]), "slow");
        assert_eq!(spec.traffic_label(&cells[2]), "fast");
        assert!(spec.traffic_spec(&cells[3]).is_some());
    }

    #[test]
    fn phy_axis_multiplies_the_grid_between_traffic_and_protocol() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .phy(PhySpec::ideal())
            .phy(PhySpec::shared_airtime(256_000, 16))
            .protocols([Protocol::MkitOlsr])
            .seeds([1, 2]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4, "1 scenario x 2 phys x 1 protocol x 2 seeds");
        assert_eq!(cells[0].phy, 0);
        assert_eq!(cells[1].phy, 0);
        assert_eq!(cells[2].phy, 1);
        assert_eq!(spec.phy_spec(&cells[0]).label(), "ideal");
        assert_eq!(spec.phy_spec(&cells[2]).label(), "air256k");
    }

    #[test]
    fn empty_phy_axis_means_ideal_channel() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .protocols([Protocol::MkitOlsr])
            .seeds([1]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(spec.phy_spec(&cells[0]), PhySpec::ideal());
        assert!(spec.phy_spec(&cells[0]).model.is_ideal());
    }

    #[test]
    fn empty_traffic_axis_is_one_scenario_labelled_pass() {
        let spec = CampaignSpec::new("t")
            .scenario("a", ScenarioSpec::builder().build())
            .protocols([Protocol::MkitOlsr])
            .seeds([1]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(spec.traffic_label(&cells[0]), "scenario");
        assert!(spec.traffic_spec(&cells[0]).is_none());
    }

    #[test]
    fn factories_are_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>(_: &T) {}
        for p in Protocol::ALL {
            let f = p.factory();
            assert_sync(&f);
            let agent = f();
            assert!(!agent.name().is_empty());
        }
    }

    #[test]
    fn scenario_traffic_lands_inside_the_measured_span() {
        let spec = ScenarioSpec::builder()
            .topology(TopologySpec::Full(2))
            .traffic(TrafficSpec::cbr(
                NodeId(0),
                NodeId(1),
                SimDuration::from_millis(250),
            ))
            .warmup(SimDuration::from_secs(1))
            .duration(SimDuration::from_secs(2))
            .build();
        let mut world = spec.world_builder().seed(1).build();
        let dst = world.addr(NodeId(1));
        world
            .os_mut(NodeId(0))
            .route_table_mut()
            .add_host_route(dst, dst, 1);
        spec.install_traffic(&mut world);
        let mut win = world.stats_window();
        world.run_until(SimTime::ZERO + spec.warmup());
        win.skip(&world);
        world.run_until(spec.end() + SimDuration::from_secs(1));
        let measured = win.advance(&world);
        // 2 s at 4 pkt/s, all within the window.
        assert_eq!(measured.data_sent, 8);
        assert_eq!(measured.data_delivered, 8);
    }
}
