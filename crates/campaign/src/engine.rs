//! The parallel campaign executor.
//!
//! Every cell of a [`CampaignSpec`] is a self-contained deterministic
//! discrete-event simulation — a built [`netsim::World`] is `Send` — so a
//! campaign is embarrassingly parallel. The engine puts the deterministic
//! cell list behind an atomic cursor and lets `threads` scoped OS workers
//! *steal* the next unclaimed cell as they finish their last one
//! (self-scheduling: no static partitioning, so one slow cell never idles
//! the other workers). Results land in per-cell slots, so the report is in
//! deterministic cell order no matter which worker finished first — a
//! 1-thread and a 16-thread run of the same grid produce byte-identical
//! deterministic report sections.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use netsim::SimDuration;

use crate::report::{CampaignReport, CellResult, DeterminismCheck};
use crate::spec::{CampaignSpec, Cell, Protocol};

/// How a campaign is executed.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker OS threads (clamped to at least 1).
    pub threads: usize,
    /// Run every cell twice — scheduled independently, so the two
    /// executions usually land on different threads — and byte-compare
    /// the deterministic fingerprints. Wall-clock (`dispatch_micros`) is
    /// excluded from the comparison by construction.
    pub check_determinism: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: available_threads(),
            check_determinism: false,
        }
    }
}

/// The host's available parallelism (1 when unknown).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Per-node flight-recorder ring capacity used when the engine replays a
/// mismatched cell under tracing (ample for the smoke-scale cells the
/// determinism checker re-runs).
#[cfg(feature = "trace")]
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Executes one cell: build the world, deploy the protocol fleet-wide,
/// install traffic, run warm-up (discarded) plus the measured span, and
/// return the measured window in canonical (merge-ready) form.
#[must_use]
pub fn run_cell(spec: &CampaignSpec, cell: &Cell) -> CellResult {
    execute_cell(spec, cell, None).0
}

/// [`run_cell`] with the flight recorder attached: every node records into
/// a ring of `capacity` records, and the run's merged trace is returned
/// alongside the result. Attaching the recorder does not perturb the
/// simulation's random streams, so a traced replay of a seeded cell is the
/// same run.
#[cfg(feature = "trace")]
#[must_use]
pub fn run_cell_traced(
    spec: &CampaignSpec,
    cell: &Cell,
    capacity: usize,
) -> (CellResult, netsim::trace::Trace) {
    let (result, world) = execute_cell(spec, cell, Some(capacity));
    (result, world.trace())
}

fn execute_cell(
    spec: &CampaignSpec,
    cell: &Cell,
    trace_capacity: Option<usize>,
) -> (CellResult, netsim::World) {
    let started = Instant::now();
    let (scenario_label, scenario) = &spec.scenarios[cell.scenario];
    let fault = spec.fault_spec(cell);
    let phy = spec.phy_spec(cell);
    let mut builder = scenario.world_builder().seed(cell.seed).phy(phy.model);
    if cell.protocol.is_agentless() {
        builder = builder.geo_routing(true);
    }
    if let Some(plan) = fault.plan(cell.seed) {
        builder = builder.fault_plan(plan);
    }
    #[cfg(feature = "trace")]
    if let Some(capacity) = trace_capacity {
        builder = builder.trace(capacity);
    }
    #[cfg(not(feature = "trace"))]
    let _ = trace_capacity;
    let mut world = builder.build();
    let adaptive = cell.protocol == Protocol::Adaptive;
    let mut fleet = None;
    if adaptive {
        fleet = Some(adapt::install_fleet(&mut world, adapt::Stack::Olsr));
    } else if !cell.protocol.is_agentless() {
        let factory = cell.protocol.factory();
        let nodes: Vec<_> = world.node_ids().collect();
        for node in nodes {
            world.install_agent(node, factory());
        }
    }
    scenario.install_mobility(&mut world);
    scenario.install_traffic(&mut world);
    if let Some(traffic) = spec.traffic_spec(cell) {
        traffic.install(&mut world, scenario.warmup(), scenario.end());
    }

    let mut window = world.stats_window();
    world.run_for(scenario.warmup());
    window.skip(&world); // warm-up is not measured
    let end = scenario.end() + SimDuration::from_secs(1);
    if let Some(fleet) = fleet {
        // The closed loop starts after warm-up, so its telemetry windows
        // never see the convergence transient as a fault signal.
        let mut engine = adapt::AdaptiveEngine::new(&world, fleet, adapt::AdaptConfig::default());
        engine.run_until(&mut world, end);
    } else {
        world.run_until(end);
    }
    let stats = window.advance(&world).canonical();

    let result = CellResult {
        index: cell.index,
        protocol: cell.protocol.name(),
        scenario: scenario_label.clone(),
        traffic: spec.traffic_label(cell),
        phy: phy.label(),
        fault: fault.label(),
        seed: cell.seed,
        stats,
        dispatch_micros: started.elapsed().as_micros() as u64,
    };
    (result, world)
}

/// Runs the whole grid under `config` and assembles the report.
///
/// # Panics
///
/// Panics when the grid is empty or a worker thread panics.
#[must_use]
pub fn run(spec: &CampaignSpec, config: &RunConfig) -> CampaignReport {
    let cells = spec.cells();
    assert!(!cells.is_empty(), "campaign grid has no cells");
    let threads = config.threads.max(1);
    let started = Instant::now();

    // Work items: each cell once, or twice for the determinism check. The
    // second pass is appended *reversed* so the re-run of a given cell is
    // claimed by whichever worker frees up then — almost always a
    // different thread from the first execution.
    let mut work: Vec<(usize, &Cell)> = cells.iter().map(|c| (0, c)).collect();
    if config.check_determinism {
        work.extend(cells.iter().rev().map(|c| (1, c)));
    }

    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<[Option<CellResult>; 2]>> =
        cells.iter().map(|_| Mutex::new([None, None])).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(work.len()) {
            scope.spawn(|| loop {
                let next = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(pass, cell)) = work.get(next) else {
                    return;
                };
                let result = run_cell(spec, cell);
                results[cell.index].lock().expect("result slot poisoned")[pass] = Some(result);
            });
        }
    });
    let wall_micros = started.elapsed().as_micros() as u64;

    let mut firsts = Vec::with_capacity(cells.len());
    let mut mismatched = Vec::new();
    let mut details = Vec::new();
    let mut serial_micros = 0u64;
    for (slot, _cell) in results.into_iter().zip(cells.iter()) {
        let [first, second] = slot.into_inner().expect("result slot poisoned");
        let first = first.expect("every cell was executed");
        serial_micros += first.dispatch_micros;
        if config.check_determinism {
            let second = second.expect("determinism pass executed every cell");
            serial_micros += second.dispatch_micros;
            if first.fingerprint() != second.fingerprint() {
                // Name *what* diverged (the earliest differing stat field)…
                let mut detail = match first.stats.first_difference(&second.stats) {
                    Some((field, a, b)) => format!(
                        "{}: first differing stat `{field}` ({a} vs {b})",
                        first.label()
                    ),
                    None => format!(
                        "{}: fingerprints differ outside the stats fields",
                        first.label()
                    ),
                };
                // …then replay the cell twice under the flight recorder to
                // show *where*: the first diverging record with node,
                // virtual time and record kind.
                #[cfg(feature = "trace")]
                {
                    let (_, left) = run_cell_traced(spec, _cell, TRACE_RING_CAPACITY);
                    let (_, right) = run_cell_traced(spec, _cell, TRACE_RING_CAPACITY);
                    match netsim::trace::first_divergence(&left, &right) {
                        Some(d) => detail.push_str(&format!("; traced replay: {d}")),
                        None => {
                            detail.push_str("; traced replay did not reproduce the divergence");
                        }
                    }
                }
                mismatched.push(first.label());
                details.push(detail);
            }
        }
        firsts.push(first);
    }

    let merged = firsts
        .iter()
        .fold(netsim::WorldStats::default(), |acc, c| acc.merged(&c.stats));

    CampaignReport {
        name: spec.name.clone(),
        cells: firsts,
        merged,
        threads,
        wall_micros,
        serial_micros,
        determinism: config.check_determinism.then_some(DeterminismCheck {
            mismatched,
            details,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultSpec, Protocol, ScenarioSpec, TopologySpec, TrafficSpec};
    use netsim::{NodeId, SimDuration};

    fn tiny_spec(name: &str) -> CampaignSpec {
        let scenario = ScenarioSpec::builder()
            .topology(TopologySpec::Line(3))
            .traffic(TrafficSpec::cbr(
                NodeId(0),
                NodeId(2),
                SimDuration::from_millis(500),
            ))
            .warmup(SimDuration::from_secs(5))
            .duration(SimDuration::from_secs(10))
            .build();
        CampaignSpec::new(name)
            .scenario("line3", scenario)
            .protocols([Protocol::MkitOlsr, Protocol::MkitDymo])
            .fault(FaultSpec::None)
            .seeds([1, 2])
    }

    #[test]
    fn parallel_run_matches_serial_run_byte_for_byte() {
        let spec = tiny_spec("engine-test");
        let serial = run(
            &spec,
            &RunConfig {
                threads: 1,
                check_determinism: false,
            },
        );
        let parallel = run(
            &spec,
            &RunConfig {
                threads: 4,
                check_determinism: false,
            },
        );
        assert_eq!(
            serial.deterministic_json(),
            parallel.deterministic_json(),
            "thread count must not leak into the deterministic report"
        );
        assert_eq!(serial.cells.len(), 4);
        assert!(serial.merged.data_sent > 0, "campaign must move traffic");
    }

    #[test]
    fn determinism_check_passes_on_a_deterministic_grid() {
        let spec = tiny_spec("det-test");
        let report = run(
            &spec,
            &RunConfig {
                threads: 4,
                check_determinism: true,
            },
        );
        let check = report.determinism.expect("check ran");
        assert!(check.passed(), "mismatches: {:?}", check.mismatched);
    }

    #[test]
    fn geo_cells_run_agentless_over_mobile_spatial_worlds() {
        use netsim::mobility::RandomWaypoint;
        let scenario = ScenarioSpec::builder()
            .mobility(RandomWaypoint {
                nodes: 40,
                radius: 0.3,
                speed: 0.05,
                step: SimDuration::from_secs(1),
                duration: SimDuration::from_secs(15),
                pause: SimDuration::ZERO,
                seed: 3,
            })
            .traffic(TrafficSpec::random_flows(
                8,
                SimDuration::from_millis(500),
                32,
                17,
            ))
            .warmup(SimDuration::from_secs(5))
            .duration(SimDuration::from_secs(10))
            .build();
        let spec = CampaignSpec::new("geo-test")
            .scenario("rw40", scenario)
            .protocols([Protocol::Geo])
            .seeds([1, 2]);
        let report = run(
            &spec,
            &RunConfig {
                threads: 2,
                check_determinism: true,
            },
        );
        let check = report.determinism.expect("check ran");
        assert!(check.passed(), "mismatches: {:?}", check.mismatched);
        assert!(report.merged.data_sent > 0, "flows must inject traffic");
        assert!(
            report.merged.data_delivered > 0,
            "geo forwarding must deliver some packets on a dense walk"
        );
        assert_eq!(report.merged.control_frames, 0, "agentless: no control");
    }

    #[test]
    fn adaptive_cells_run_the_closed_loop_and_traffic_axis_multiplies_the_grid() {
        let scenario = ScenarioSpec::builder()
            .topology(TopologySpec::Line(3))
            .warmup(SimDuration::from_secs(10))
            .duration(SimDuration::from_secs(20))
            .build();
        let spec = CampaignSpec::new("adaptive-test")
            .scenario("line3", scenario)
            .traffic(
                "cbr-2hop",
                TrafficSpec::cbr(NodeId(0), NodeId(2), SimDuration::from_millis(500)),
            )
            .traffic(
                "cbr-1hop",
                TrafficSpec::cbr(NodeId(0), NodeId(1), SimDuration::from_millis(500)),
            )
            .protocols([Protocol::MkitOlsr, Protocol::Adaptive])
            .seeds([1]);
        assert_eq!(
            spec.cells().len(),
            4,
            "1 scenario x 2 traffics x 2 protocols"
        );
        let report = run(
            &spec,
            &RunConfig {
                threads: 2,
                check_determinism: true,
            },
        );
        let check = report.determinism.expect("check ran");
        assert!(check.passed(), "mismatches: {:?}", check.mismatched);
        for cell in &report.cells {
            assert!(
                cell.stats.delivery_ratio() > 0.9,
                "{}: healthy line must deliver ({:.3})",
                cell.label(),
                cell.stats.delivery_ratio()
            );
            if cell.protocol == "adaptive" {
                assert!(cell.stats.agent_counter("adapt.ticks") > 0);
                assert_eq!(
                    cell.stats.agent_counter("adapt.switches"),
                    0,
                    "{}: a healthy world never switches",
                    cell.label()
                );
            }
        }
        let labels: Vec<_> = report.cells.iter().map(|c| c.traffic.clone()).collect();
        assert_eq!(labels, ["cbr-2hop", "cbr-2hop", "cbr-1hop", "cbr-1hop"]);
    }

    #[test]
    fn merged_stats_equal_fold_of_cells() {
        let spec = tiny_spec("merge-test");
        let report = run(
            &spec,
            &RunConfig {
                threads: 2,
                check_determinism: false,
            },
        );
        let refold = report
            .cells
            .iter()
            .rev() // any order: merge is order-insensitive
            .fold(netsim::WorldStats::default(), |acc, c| acc.merged(&c.stats));
        assert_eq!(report.merged, refold);
    }
}
