//! End-to-end DYMO tests: on-demand discovery on the paper's 5-node line,
//! packet buffering and re-injection, route errors, lifetimes, and both
//! §5.2 variants.

use manetkit::prelude::*;
use manetkit_dymo::variants::{flooding, multipath};
use manetkit_dymo::{DymoDeployment, DymoParams, DYMO_CF};
use netsim::{LinkState, NodeId, SimDuration, Topology, World};

fn dymo_world(topology: Topology, seed: u64) -> (World, Vec<NodeHandle>) {
    let n = topology.len();
    let mut world = World::builder().topology(topology).seed(seed).build();
    let mut handles = Vec::new();
    for i in 0..n {
        let (node, handle) = manetkit_dymo::node(DymoDeployment::default());
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    (world, handles)
}

#[test]
fn five_node_line_discovery_and_delivery() {
    let (mut world, _handles) = dymo_world(Topology::line(5), 1);
    world.run_for(SimDuration::from_secs(3));
    let far = world.addr(NodeId(4));
    world.send_datagram(NodeId(0), far, b"end-to-end".to_vec());
    world.run_for(SimDuration::from_secs(3));
    let s = world.stats();
    assert_eq!(s.data_delivered, 1, "{s:?}");
    assert!(s.agent_counter("route_discovery") >= 1);
    assert!(s.agent_counter("rrep_received") >= 1);
    // The reverse route was learned from path accumulation: node 4 can
    // reach node 0 without a fresh discovery.
    let back = world.addr(NodeId(0));
    world.send_datagram(NodeId(4), back, b"reply".to_vec());
    world.run_for(SimDuration::from_secs(2));
    let s2 = world.stats();
    assert_eq!(s2.data_delivered, 2);
    assert_eq!(
        s2.agent_counter("route_discovery"),
        s.agent_counter("route_discovery"),
        "no second discovery needed"
    );
}

#[test]
fn packets_buffer_during_discovery_then_flush() {
    let (mut world, _handles) = dymo_world(Topology::line(3), 2);
    world.run_for(SimDuration::from_secs(2));
    let far = world.addr(NodeId(2));
    // Burst of 5 packets before any route exists.
    for i in 0..5u8 {
        world.send_datagram(NodeId(0), far, vec![i]);
    }
    world.run_for(SimDuration::from_secs(3));
    let s = world.stats();
    assert_eq!(
        s.data_delivered, 5,
        "all buffered packets re-injected: {s:?}"
    );
    assert_eq!(
        s.agent_counter("route_discovery"),
        1,
        "a single discovery serves the burst"
    );
}

#[test]
fn discovery_to_unreachable_destination_gives_up() {
    let (mut world, _handles) = dymo_world(Topology::line(2), 3);
    world.run_for(SimDuration::from_secs(1));
    let ghost = packetbb::Address::v4([10, 9, 9, 9]);
    world.send_datagram(NodeId(0), ghost, b"void".to_vec());
    world.run_for(SimDuration::from_secs(20));
    let s = world.stats();
    assert_eq!(s.data_delivered, 0);
    assert_eq!(s.agent_counter("route_discovery_failed"), 1);
    assert!(
        s.agent_counter("rreq_retry") >= 2,
        "binary exponential retries happened: {s:?}"
    );
    assert_eq!(
        s.data_dropped_buffer, 1,
        "the buffered packet was discarded on give-up"
    );
}

#[test]
fn link_break_triggers_rerr_and_rediscovery() {
    let (mut world, _handles) = dymo_world(Topology::line(4), 4);
    world.run_for(SimDuration::from_secs(2));
    let far = world.addr(NodeId(3));
    world.send_datagram(NodeId(0), far, b"a".to_vec());
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(world.stats().data_delivered, 1);

    // Break the middle link; keep traffic flowing so the break is noticed.
    world.set_link(NodeId(1), NodeId(2), LinkState::Down);
    world.send_datagram(NodeId(0), far, b"b".to_vec());
    world.run_for(SimDuration::from_secs(10));
    let s = world.stats();
    assert!(
        s.agent_counter("rerr_sent") >= 1,
        "a route error must be reported: {s:?}"
    );
    // The network is partitioned, so packet b is never delivered.
    assert_eq!(s.data_delivered, 1);
}

#[test]
fn routes_expire_without_traffic() {
    let (mut world, _handles) = dymo_world(Topology::line(3), 5);
    world.run_for(SimDuration::from_secs(1));
    let far = world.addr(NodeId(2));
    world.send_datagram(NodeId(0), far, b"x".to_vec());
    world.run_for(SimDuration::from_secs(2));
    assert!(world.os(NodeId(0)).route_table().lookup(far).is_some());
    // Route lifetime is 5 s; stay idle past it.
    world.run_for(SimDuration::from_secs(12));
    assert!(
        world.os(NodeId(0)).route_table().lookup(far).is_none(),
        "idle route must expire from the kernel table"
    );
    assert!(world.stats().agent_counter("route_expired") >= 1);
}

#[test]
fn traffic_keeps_routes_alive() {
    let (mut world, _handles) = dymo_world(Topology::line(3), 6);
    world.run_for(SimDuration::from_secs(1));
    let far = world.addr(NodeId(2));
    // Steady traffic for 15 s (lifetime is 5 s).
    for k in 0..15 {
        world.send_datagram(NodeId(0), far, vec![k]);
        world.run_for(SimDuration::from_secs(1));
    }
    let s = world.stats();
    assert_eq!(s.data_delivered, 15);
    assert_eq!(
        s.agent_counter("route_discovery"),
        1,
        "refreshed route never re-discovered: {s:?}"
    );
    assert!(s.agent_counter("route_refreshed") > 0);
}

#[test]
fn multipath_variant_fails_over_without_rediscovery() {
    // Diamond with a tail: 0 - {1,2} - 3. Two link-disjoint paths 0->3.
    let mut topo = Topology::empty(4);
    topo.set_link(NodeId(0), NodeId(1), LinkState::Up);
    topo.set_link(NodeId(0), NodeId(2), LinkState::Up);
    topo.set_link(NodeId(1), NodeId(3), LinkState::Up);
    topo.set_link(NodeId(2), NodeId(3), LinkState::Up);
    let (mut world, handles) = dymo_world(topo, 7);
    world.run_for(SimDuration::from_secs(2));

    // Enable multipath everywhere.
    for h in &handles {
        for op in multipath::enable_ops() {
            h.apply(op);
        }
    }
    world.run_for(SimDuration::from_secs(1));
    for h in &handles {
        assert!(
            h.status().last_error.is_none(),
            "{:?}",
            h.status().last_error
        );
    }

    let far = world.addr(NodeId(3));
    world.send_datagram(NodeId(0), far, b"probe".to_vec());
    world.run_for(SimDuration::from_millis(500));
    let s = world.stats();
    assert_eq!(s.data_delivered, 1);
    assert!(
        s.agent_counter("multipath_alt_learned") >= 1,
        "duplicate RREQs mined for alternatives: {s:?}"
    );

    // Break the primary's first link while routes are fresh (well inside
    // the 5 s lifetime). The first post-break packet is lost — its failed
    // transmission is what reveals the break — and failover repairs the
    // route without a new RREQ flood, so the next packet flows.
    let primary_hop = world
        .os(NodeId(0))
        .route_table()
        .lookup(far)
        .unwrap()
        .next_hop;
    let primary_node = world.node_of(primary_hop).unwrap();
    let discoveries_before = s.agent_counter("route_discovery");
    world.set_link(NodeId(0), primary_node, LinkState::Down);
    world.send_datagram(NodeId(0), far, b"after-break".to_vec());
    world.run_for(SimDuration::from_millis(500));
    world.send_datagram(NodeId(0), far, b"after-failover".to_vec());
    world.run_for(SimDuration::from_millis(500));
    let s2 = world.stats();
    assert!(
        s2.agent_counter("multipath_failover") >= 1,
        "failover must use the stored alternative: {s2:?}"
    );
    assert_eq!(
        s2.agent_counter("route_discovery"),
        discoveries_before,
        "no re-flood needed after failover: {s2:?}"
    );
    assert_eq!(s2.data_delivered, 2, "traffic keeps flowing: {s2:?}");
}

#[test]
fn optimised_flooding_cuts_rreq_relays_in_dense_networks() {
    use manetkit_olsr::{mpr_cf, MprConfig};

    let topo = Topology::random_geometric(25, 0.42, 13);
    assert!(topo.is_connected());
    let run = |optimised: bool| {
        let n = topo.len();
        let mut world = World::builder().topology(topo.clone()).seed(13).build();
        let mut handles = Vec::new();
        for i in 0..n {
            let (node, handle) = manetkit_dymo::node(DymoDeployment::default());
            world.install_agent(NodeId(i), Box::new(node));
            handles.push(handle);
        }
        if optimised {
            for h in &handles {
                for op in flooding::enable_ops(Some(mpr_cf(MprConfig::default()))) {
                    h.apply(op);
                }
            }
        }
        // Let neighbourhood/MPR state settle.
        world.run_for(SimDuration::from_secs(10));
        for h in &handles {
            assert!(
                h.status().last_error.is_none(),
                "{:?}",
                h.status().last_error
            );
        }
        world.reset_stats();
        // Several discoveries from scattered sources.
        for (src, dst) in [(0usize, 24usize), (5, 20), (10, 3), (17, 8)] {
            let dst_addr = world.addr(NodeId(dst));
            world.send_datagram(NodeId(src), dst_addr, b"d".to_vec());
            world.run_for(SimDuration::from_secs(5));
        }
        let s = world.stats();
        (s.agent_counter("rreq_relayed"), s.data_delivered)
    };
    let (blind_relays, blind_delivered) = run(false);
    let (mpr_relays, mpr_delivered) = run(true);
    assert!(blind_delivered >= 3, "blind flooding delivers");
    assert!(mpr_delivered >= 3, "optimised flooding still delivers");
    assert!(
        mpr_relays < blind_relays,
        "MPR gating must reduce RREQ relays: {mpr_relays} vs {blind_relays}"
    );
}

#[test]
fn dymo_and_olsr_coexist_sharing_mpr() {
    // The leaner co-deployment of §5.2: OLSR (MPR + OLSR CFs) together with
    // DYMO gated on the *same* MPR instance — no Neighbour Detection CF.
    let mut world = World::builder()
        .topology(Topology::line(4))
        .seed(17)
        .build();
    let mut handles = Vec::new();
    for i in 0..4 {
        let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
        let dep = node.deployment_mut();
        manetkit_olsr::deploy(dep, Default::default()).unwrap();
        manetkit_dymo::deploy_core(dep, DymoParams::default()).unwrap();
        let handle = node.handle();
        // Gate DYMO's flooding on the shared MPR CF (no replacement CF).
        for op in flooding::enable_ops(None) {
            handle.apply(op);
        }
        world.install_agent(NodeId(i), Box::new(node));
        handles.push(handle);
    }
    world.run_for(SimDuration::from_secs(30));
    for h in &handles {
        let st = h.status();
        assert!(st.last_error.is_none(), "{:?}", st.last_error);
        assert!(st.protocols.contains(&"mpr".to_string()));
        assert!(st.protocols.contains(&"olsr".to_string()));
        assert!(st.protocols.contains(&DYMO_CF.to_string()));
    }
    // OLSR proactively installed routes; data flows without discovery.
    let far = world.addr(NodeId(3));
    world.send_datagram(NodeId(0), far, b"shared".to_vec());
    world.run_for(SimDuration::from_secs(2));
    let s = world.stats();
    assert_eq!(s.data_delivered, 1);
    assert_eq!(
        s.agent_counter("route_discovery"),
        0,
        "proactive routes pre-empt reactive discovery"
    );
}
