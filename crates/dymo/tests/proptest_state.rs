//! Property-based tests of the DYMO route table's update discipline: the
//! stored sequence number never regresses, hop counts never worsen at equal
//! seq, and broken routes never serve traffic.

use manetkit_dymo::state::seq_newer;
use manetkit_dymo::DymoState;
use netsim::{SimDuration, SimTime};
use packetbb::Address;
use proptest::prelude::*;

fn addr(n: u8) -> Address {
    Address::v4([10, 0, 0, n])
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Offer {
        dst: u8,
        via: u8,
        seq: u16,
        hops: u8,
    },
    BreakVia {
        via: u8,
    },
    Refresh {
        dst: u8,
    },
    Advance {
        secs: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (2u8..6, 6u8..10, any::<u16>(), 1u8..16).prop_map(|(dst, via, seq, hops)| Op::Offer {
            dst,
            via,
            seq,
            hops
        }),
        1 => (6u8..10).prop_map(|via| Op::BreakVia { via }),
        1 => (2u8..6).prop_map(|dst| Op::Refresh { dst }),
        1 => (0u8..8).prop_map(|secs| Op::Advance { secs }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sequence_numbers_never_regress(ops in proptest::collection::vec(arb_op(), 1..64)) {
        let mut s = DymoState::default();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Offer { dst, via, seq, hops } => {
                    let before = s.routes.get(&addr(dst)).map(|r| (r.seq, r.broken));
                    s.offer_route(addr(dst), addr(via), seq, hops, now);
                    let after = s.routes[&addr(dst)];
                    if let Some((old_seq, broken)) = before {
                        // Unless the old route was broken (replaceable), the
                        // stored seq must never move backwards.
                        if !broken {
                            prop_assert!(
                                !seq_newer(old_seq, after.seq),
                                "seq regressed: {old_seq} -> {}",
                                after.seq
                            );
                        }
                    }
                }
                Op::BreakVia { via } => {
                    s.break_routes_via(addr(via));
                }
                Op::Refresh { dst } => s.refresh_route(addr(dst), now),
                Op::Advance { secs } => {
                    now += SimDuration::from_secs(u64::from(secs));
                    s.expire(now);
                }
            }
            // Global invariants after every step.
            for (dst, r) in &s.routes {
                // A live route is never broken, by definition of live_route.
                if let Some(live) = s.live_route(*dst, now) {
                    prop_assert!(!live.broken);
                    prop_assert!(live.expiry > now);
                    prop_assert_eq!(live.next_hop, r.next_hop);
                }
            }
        }
    }

    #[test]
    fn equal_seq_offers_never_worsen_hops(
        seq in any::<u16>(),
        hops in proptest::collection::vec(1u8..16, 1..12),
    ) {
        let mut s = DymoState::default();
        let now = SimTime::ZERO;
        let mut best = u8::MAX;
        for (i, h) in hops.iter().enumerate() {
            s.offer_route(addr(2), addr((6 + (i % 4)) as u8), seq, *h, now);
            best = best.min(*h);
            prop_assert_eq!(s.routes[&addr(2)].hop_count, best);
        }
    }

    #[test]
    fn broken_routes_never_serve(ops in proptest::collection::vec(arb_op(), 1..48)) {
        let mut s = DymoState::default();
        let now = SimTime::ZERO;
        for op in ops {
            if let Op::Offer { dst, via, seq, hops } = op {
                s.offer_route(addr(dst), addr(via), seq, hops, now);
            }
        }
        // Break everything.
        for via in 6u8..10 {
            s.break_routes_via(addr(via));
        }
        for dst in 2u8..6 {
            prop_assert!(s.live_route(addr(dst), now).is_none());
        }
    }
}
