//! DYMO for MANETKit: the paper's second case study (§5.2).
//!
//! The composition matches Fig. 6: one reactive `ManetProtocol` instance
//! atop the System CF, using the reusable Neighbour Detection CF for link
//! breaks and the System CF's *NetLink* plug-in for the packet-filter
//! events that drive the reactive machinery:
//!
//! * `NO_ROUTE` — a locally originated packet had no route: buffer it and
//!   start a route discovery (RREQ flood with path accumulation);
//! * `ROUTE_UPDATE` — traffic used a route: extend its lifetime;
//! * `SEND_ROUTE_ERR` — forwarding failed: emit a route error;
//! * on successful discovery DYMO emits `ROUTE_FOUND` back to the System
//!   CF, which re-injects the buffered packets.
//!
//! Variants (§5.2) are derived by runtime reconfiguration:
//! [`variants::multipath`] (replacement S component and RE/RERR handlers
//! computing link-disjoint paths) and [`variants::flooding`] (the
//! Neighbour Detection CF swapped for the richer MPR CF, with RREQ
//! relaying gated on relay selection).
//!
//! # Example
//!
//! ```
//! use manetkit::prelude::*;
//! use netsim::{NodeId, SimDuration, Topology, World};
//!
//! let mut world = World::builder().topology(Topology::line(3)).seed(2).build();
//! for i in 0..3 {
//!     let (node, _handle) = manetkit_dymo::node(Default::default());
//!     world.install_agent(NodeId(i), Box::new(node));
//! }
//! world.run_for(SimDuration::from_secs(3));
//! // Send to the far end: DYMO discovers the route on demand and the
//! // buffered datagram is delivered.
//! let far = world.addr(NodeId(2));
//! world.send_datagram(NodeId(0), far, b"hello".to_vec());
//! world.run_for(SimDuration::from_secs(2));
//! assert_eq!(world.stats().data_delivered, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod handlers;
pub mod messages;
pub mod state;

/// Runtime-derivable protocol variants.
pub mod variants {
    pub mod flooding;
    pub mod gossip;
    pub mod multipath;
}

use manetkit::event::types;
use manetkit::neighbour::{hello_registration, neighbour_detection_cf, NeighbourConfig};
use manetkit::node::{Deployment, ManetNode, NodeHandle};
use manetkit::prelude::ConcurrencyModel;
use manetkit::protocol::{ManetProtocolCf, StateSlot};
use manetkit::registry::EventTuple;
use manetkit::system::SystemCf;
use packetbb::registry::msg_type;

pub use handlers::{
    learn_from_path, DymoStateAccess, ReHandler, RerrHandler, RouteDiscoveryHandler,
    RouteLifetimeHandler, SweepHandler, DYMO_SWEEP_TIMER,
};
pub use messages::{PathHop, ReKind, RouteElement, RouteError};
pub use state::{DymoParams, DymoRoute, DymoState};

/// The name under which the DYMO CF registers.
pub const DYMO_CF: &str = "dymo";

/// Joint configuration for a DYMO deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DymoDeployment {
    /// Protocol parameters.
    pub params: DymoParams,
    /// Neighbour detection configuration.
    pub neighbour: NeighbourConfig,
}

/// The DYMO CF's event tuple.
#[must_use]
pub fn dymo_tuple() -> EventTuple {
    EventTuple::new()
        .requires(types::re_in())
        .requires(types::rerr_in())
        .requires(types::no_route())
        .requires(types::route_update())
        .requires(types::send_route_err())
        .requires(types::tx_failed())
        .requires(types::nhood_change())
        .provides(types::re_out())
        .provides(types::rerr_out())
        .provides(types::route_found())
}

/// Builds the DYMO CF (standard: blind RREQ flooding, single-path routes).
#[must_use]
pub fn dymo_cf(params: DymoParams) -> ManetProtocolCf {
    let state = DymoState {
        params,
        ..DymoState::default()
    };
    ManetProtocolCf::builder(DYMO_CF)
        .reactive()
        .tuple(dymo_tuple())
        .state(StateSlot::new(state))
        .startup_timer(params.sweep, handlers::dymo_sweep_timer())
        .handler(Box::new(RouteDiscoveryHandler::<DymoState>::default()))
        .handler(Box::new(ReHandler::<DymoState>::default()))
        .handler(Box::new(RerrHandler::<DymoState>::default()))
        .handler(Box::new(RouteLifetimeHandler::<DymoState>::default()))
        .handler(Box::new(SweepHandler::<DymoState>::default()))
        .build()
}

/// Registers the message types DYMO needs with a System CF and enables the
/// NetLink plug-in.
pub fn register_messages(system: &mut SystemCf) {
    system.register_in_out(msg_type::RREQ, types::re_in(), types::re_out());
    system.register_in_out(msg_type::RREP, types::re_in(), types::re_out());
    system.register_in_out(msg_type::RERR, types::rerr_in(), types::rerr_out());
    system.enable_netlink();
}

/// Installs DYMO plus the Neighbour Detection CF into a deployment
/// (offline).
///
/// # Errors
///
/// Propagates integrity violations (e.g. another reactive protocol is
/// already deployed).
pub fn deploy(dep: &mut Deployment, config: DymoDeployment) -> Result<(), manetkit::DeployError> {
    register_messages(dep.system_mut());
    dep.system_mut().register_message(hello_registration());
    dep.add_protocol_offline(neighbour_detection_cf(config.neighbour))?;
    dep.add_protocol_offline(dymo_cf(config.params))?;
    Ok(())
}

/// Installs only the DYMO CF (the caller provides neighbourhood sensing —
/// used by the optimised-flooding variant and co-deployments with OLSR).
///
/// # Errors
///
/// Propagates integrity violations.
pub fn deploy_core(dep: &mut Deployment, params: DymoParams) -> Result<(), manetkit::DeployError> {
    register_messages(dep.system_mut());
    dep.add_protocol_offline(dymo_cf(params))
}

/// Builds a ready-to-install node running DYMO, plus its control handle.
#[must_use]
pub fn node(config: DymoDeployment) -> (ManetNode, NodeHandle) {
    let mut node = ManetNode::new(ConcurrencyModel::SingleThreaded);
    deploy(node.deployment_mut(), config).expect("fresh deployment accepts DYMO");
    let handle = node.handle();
    (node, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cf_composition() {
        let cf = dymo_cf(DymoParams::default());
        assert_eq!(cf.name(), DYMO_CF);
        assert!(cf.is_reactive());
        let t = cf.tuple();
        assert!(t.is_required(&types::no_route()));
        assert!(t.is_provided(&types::route_found()));
        let names = cf.plugin_names();
        for expected in [
            "route-discovery-handler",
            "re-handler",
            "rerr-handler",
            "route-lifetime-handler",
            "sweep-handler",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn two_reactive_protocols_rejected() {
        let mut dep = Deployment::new(ConcurrencyModel::SingleThreaded);
        dep.add_protocol_offline(dymo_cf(DymoParams::default()))
            .unwrap();
        let mut second = dymo_cf(DymoParams::default());
        second.set_tuple(EventTuple::new());
        // Renaming is not enough: reactivity is the integrity dimension.
        let err = dep.add_protocol_offline(second).unwrap_err();
        assert!(err.to_string().contains("already"), "{err}");
    }
}
