//! Gossip (probabilistic) flooding for DYMO — the epidemic alternative the
//! paper's related-work survey lists among switchable flooding styles
//! (Haas/Halpern/Li, INFOCOM 2002; Bani-Yassein & Ould-Khaoua).
//!
//! A fresh RREQ is re-broadcast with probability `p` instead of always
//! (blind) or by relay-set membership (MPR). The decision is a
//! deterministic hash of `(originator, seq, local address)`, so simulation
//! runs stay reproducible while different nodes decide independently.
//!
//! Like the other variants, gossip is enacted by replacing the RE handler
//! of the *running* DYMO CF.

use manetkit::event::{Event, EventType};
use manetkit::node::ReconfigOp;
use manetkit::protocol::{EventHandler, ProtoCtx, StateSlot};
use packetbb::Address;

use crate::handlers::ReHandler;
use crate::messages::{ReKind, RouteElement};
use crate::state::DymoState;
use crate::DYMO_CF;

/// Deterministic per-(flood, node) coin flip.
#[must_use]
pub fn gossip_decision(orig: Address, seq: u16, local: Address, p: f64) -> bool {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    for b in orig.octets().iter().chain(local.octets()) {
        x ^= u64::from(*b);
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
    }
    x ^= u64::from(seq);
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    (x as f64 / u64::MAX as f64) < p
}

/// The gossiping RE handler: delegates to the standard logic with relaying
/// allowed or suppressed according to the coin flip.
pub struct GossipReHandler {
    p: f64,
    relay: ReHandler<DymoState>,
    suppress: ReHandler<DymoState>,
}

impl GossipReHandler {
    /// A handler relaying fresh RREQs with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        GossipReHandler {
            p,
            relay: ReHandler::default(),
            suppress: ReHandler::with_relay_gate(|_, _| false),
        }
    }
}

impl EventHandler for GossipReHandler {
    fn name(&self) -> &str {
        "re-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![manetkit::event::types::re_in()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let relay = match event.message().and_then(|m| RouteElement::from_message(m)) {
            Some(re) if re.kind == ReKind::Rreq => {
                let orig = re.originator();
                gossip_decision(orig.addr, orig.seq, ctx.local_addr(), self.p)
            }
            // RREPs and malformed input take the standard path.
            _ => true,
        };
        if relay {
            self.relay.handle(event, state, ctx);
        } else {
            ctx.os().bump("gossip_suppressed");
            self.suppress.handle(event, state, ctx);
        }
    }
}

/// Reconfiguration enacting gossip flooding with probability `p`.
#[must_use]
pub fn enable_ops(p: f64) -> Vec<ReconfigOp> {
    vec![ReconfigOp::Mutate {
        protocol: DYMO_CF.to_string(),
        op: Box::new(move |cf| {
            cf.replace_handler("re-handler", Box::new(GossipReHandler::new(p)))
                .expect("re-handler present");
        }),
    }]
}

/// Reverts to blind flooding.
#[must_use]
pub fn disable_ops() -> Vec<ReconfigOp> {
    vec![ReconfigOp::Mutate {
        protocol: DYMO_CF.to_string(),
        op: Box::new(|cf| {
            cf.replace_handler("re-handler", Box::new(ReHandler::<DymoState>::default()))
                .expect("re-handler present");
        }),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::v4([10, 0, 0, n])
    }

    #[test]
    fn decisions_are_deterministic_and_calibrated() {
        // Same inputs, same answer.
        assert_eq!(
            gossip_decision(addr(1), 7, addr(2), 0.6),
            gossip_decision(addr(1), 7, addr(2), 0.6)
        );
        // Empirical rate over many floods approaches p.
        for p in [0.0, 0.3, 0.7, 1.0] {
            let mut hits = 0u32;
            let total = 4_000u32;
            for seq in 0..total {
                if gossip_decision(addr(1), seq as u16, addr((seq % 200) as u8), p) {
                    hits += 1;
                }
            }
            let rate = f64::from(hits) / f64::from(total);
            assert!((rate - p).abs() < 0.05, "rate {rate:.3} too far from p {p}");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = GossipReHandler::new(1.5);
    }
}
