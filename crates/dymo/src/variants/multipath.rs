//! Multipath DYMO (§5.2, after Gálvez & Ruiz): compute several
//! link-disjoint paths in a single route discovery, trading a little
//! discovery latency for far fewer re-floods under link churn.
//!
//! Enacted exactly as the paper describes, by replacing three components of
//! the running DYMO CF:
//!
//! 1. the **S** component — [`MultipathState`] embeds the standard
//!    [`DymoState`] and adds a path list per destination (the state
//!    transfer keeps all learned routes);
//! 2. the **RE handler** — duplicate RREQs are no longer discarded but
//!    mined for link-disjoint alternative paths (atomic handler execution
//!    makes this safe, as the paper notes);
//! 3. the **RERR handler** — on breakage it fails over to an alternative
//!    path when one exists and only sends a route error otherwise.

use std::collections::BTreeMap;

use manetkit::event::{types, Event, EventType, Payload, RouteCtl};
use manetkit::node::ReconfigOp;
use manetkit::protocol::{EventHandler, ProtoCtx, StateSlot};
use netsim::SimTime;
use packetbb::Address;

use crate::handlers::{
    DymoStateAccess, ReHandler, RerrHandler, RouteDiscoveryHandler, RouteLifetimeHandler,
    SweepHandler,
};
use crate::messages::{PathHop, ReKind, RouteElement, RouteError};
use crate::state::DymoState;
use crate::DYMO_CF;

/// One alternative path to a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltPath {
    /// First hop of the alternative (distinct next hops ⇒ link-disjoint
    /// first links).
    pub next_hop: Address,
    /// Hop count along this path.
    pub hop_count: u8,
    /// Sequence number the path was learned under.
    pub seq: u16,
}

/// The multipath S component: the standard state plus per-destination
/// alternative paths.
#[derive(Debug, Default)]
pub struct MultipathState {
    /// The embedded standard DYMO state (primary routes live here).
    pub base: DymoState,
    /// Alternative paths per destination, distinct from the primary's next
    /// hop.
    pub alternatives: BTreeMap<Address, Vec<AltPath>>,
}

impl DymoStateAccess for MultipathState {
    fn dymo_mut(&mut self) -> &mut DymoState {
        &mut self.base
    }
    fn dymo(&self) -> &DymoState {
        &self.base
    }
}

impl MultipathState {
    /// Converts carried-over standard state (the paper's S-component
    /// replacement keeps the route table).
    #[must_use]
    pub fn from_standard(base: DymoState) -> Self {
        MultipathState {
            base,
            alternatives: BTreeMap::new(),
        }
    }

    /// Offers an alternative path; kept when its first hop differs from the
    /// primary route's and from already-known alternatives.
    pub fn offer_alternative(&mut self, dst: Address, alt: AltPath) -> bool {
        let primary_hop = self.base.routes.get(&dst).map(|r| r.next_hop);
        if primary_hop == Some(alt.next_hop) {
            return false;
        }
        let alts = self.alternatives.entry(dst).or_default();
        if alts.iter().any(|a| a.next_hop == alt.next_hop) {
            return false;
        }
        alts.push(alt);
        alts.sort_by_key(|a| a.hop_count);
        true
    }

    /// Takes the best alternative path to `dst`, if any.
    pub fn take_alternative(&mut self, dst: Address) -> Option<AltPath> {
        let alts = self.alternatives.get_mut(&dst)?;
        if alts.is_empty() {
            return None;
        }
        Some(alts.remove(0))
    }

    /// Drops alternatives whose first hop is `via` (link break cleanup).
    pub fn purge_via(&mut self, via: Address) {
        for alts in self.alternatives.values_mut() {
            alts.retain(|a| a.next_hop != via);
        }
    }
}

/// Multipath RE handler: processes duplicate RREQs for link-disjoint
/// paths instead of discarding them.
pub struct MultipathReHandler;

impl EventHandler for MultipathReHandler {
    fn name(&self) -> &str {
        "re-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::re_in()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let Some(msg) = event.message() else { return };
        let Some(from) = event.meta.from else { return };
        let Some(re) = RouteElement::from_message(msg) else {
            return;
        };
        let local = ctx.local_addr();
        let orig = re.originator();
        if orig.addr == local {
            return;
        }
        let now = ctx.now();
        let s = state.get_mut::<MultipathState>();

        if re.kind == ReKind::Rreq && s.base.duplicates.contains_key(&(orig.addr, orig.seq)) {
            // Duplicate RREQ: mine it for link-disjoint paths rather than
            // discarding (the defining multipath behaviour).
            let hops = re.path.len() as u8;
            let disjoint = s.offer_alternative(
                orig.addr,
                AltPath {
                    next_hop: from,
                    hop_count: hops,
                    seq: orig.seq,
                },
            );
            if disjoint {
                ctx.os().bump("multipath_alt_learned");
                if re.target == local {
                    // As the sought destination, answer each disjoint copy
                    // with an extra RREP so the originator learns the
                    // alternative path too (Gálvez & Ruiz's link-disjoint
                    // reply strategy). Reuse the sequence number of the
                    // primary reply so the paths rank as equals.
                    let rrep = RouteElement::rrep(
                        PathHop {
                            addr: local,
                            seq: s.base.own_seq,
                        },
                        orig.addr,
                        s.base.params.hop_limit,
                    );
                    ctx.os().bump("multipath_extra_rrep");
                    ctx.emit(Event::message_out(types::re_out(), rrep.to_message()).to(from));
                }
            }
            return;
        }

        // Fresh element: delegate to the standard logic (learning, reply,
        // relay) via an inner standard handler over the embedded state.
        StandardDelegate.handle(event, state, ctx);

        // Mine the path tail for alternatives to every on-path node as
        // well: any hop reachable via `from` with a different first hop
        // than the primary is an alternative.
        let s = state.get_mut::<MultipathState>();
        for (i, hop) in re.path.iter().enumerate() {
            if hop.addr == local {
                continue;
            }
            let hop_count = (re.path.len() - i) as u8;
            if s.base.routes.get(&hop.addr).map(|r| r.next_hop) != Some(from) {
                let _ = s.offer_alternative(
                    hop.addr,
                    AltPath {
                        next_hop: from,
                        hop_count,
                        seq: hop.seq,
                    },
                );
            }
        }
        let _ = now;
    }
}

/// Zero-size adapter running the standard RE logic over [`MultipathState`].
struct StandardDelegate;

impl StandardDelegate {
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let mut inner: ReHandler<MultipathState> = ReHandler::default();
        EventHandler::handle(&mut inner, event, state, ctx);
    }
}

/// Multipath RERR handler: fails over to an alternative path before
/// resorting to a route error.
pub struct MultipathRerrHandler;

impl MultipathRerrHandler {
    /// Attempts failover for every route broken via `via`; returns the
    /// destinations that could *not* be repaired (with their seqs).
    fn failover_via(
        s: &mut MultipathState,
        via: Address,
        now: SimTime,
        ctx: &mut ProtoCtx<'_>,
    ) -> Vec<(Address, u16)> {
        let broken = s.base.break_routes_via(via);
        s.purge_via(via);
        let mut unrepaired = Vec::new();
        for (dst, seq) in broken {
            if let Some(alt) = s.take_alternative(dst) {
                s.base
                    .offer_route(dst, alt.next_hop, alt.seq.max(seq), alt.hop_count, now);
                ctx.os().route_table_mut().add_host_route(
                    dst,
                    alt.next_hop,
                    u32::from(alt.hop_count),
                );
                ctx.os().bump("multipath_failover");
            } else {
                ctx.os().route_table_mut().remove_host_route(dst);
                unrepaired.push((dst, seq));
            }
        }
        unrepaired
    }

    fn emit_rerr(s: &mut MultipathState, unreachable: Vec<(Address, u16)>, ctx: &mut ProtoCtx<'_>) {
        if unreachable.is_empty() {
            return;
        }
        let seq = s.base.next_seq();
        let rerr = RouteError {
            reporter: ctx.local_addr(),
            unreachable,
            hop_limit: 2,
        };
        ctx.os().bump("rerr_sent");
        ctx.emit(Event::message_out(types::rerr_out(), rerr.to_message(seq)));
    }
}

impl EventHandler for MultipathRerrHandler {
    fn name(&self) -> &str {
        "rerr-handler"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![
            types::rerr_in(),
            types::send_route_err(),
            types::tx_failed(),
            types::nhood_change(),
        ]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, ctx: &mut ProtoCtx<'_>) {
        let now = ctx.now();
        let s = state.get_mut::<MultipathState>();
        if event.ty == types::rerr_in() {
            let Some(msg) = event.message() else { return };
            let Some(from) = event.meta.from else { return };
            let Some(rerr) = RouteError::from_message(msg) else {
                return;
            };
            let mut unrepaired = Vec::new();
            for (dst, seq) in &rerr.unreachable {
                let via_sender = s
                    .base
                    .routes
                    .get(dst)
                    .is_some_and(|r| r.next_hop == from && !r.broken);
                if !via_sender {
                    continue;
                }
                if let Some(r) = s.base.routes.get_mut(dst) {
                    r.broken = true;
                }
                if let Some(alt) = s.take_alternative(*dst) {
                    s.base
                        .offer_route(*dst, alt.next_hop, alt.seq.max(*seq), alt.hop_count, now);
                    ctx.os().route_table_mut().add_host_route(
                        *dst,
                        alt.next_hop,
                        u32::from(alt.hop_count),
                    );
                    ctx.os().bump("multipath_failover");
                } else {
                    ctx.os().route_table_mut().remove_host_route(*dst);
                    unrepaired.push((*dst, *seq));
                }
            }
            if !unrepaired.is_empty() && rerr.hop_limit > 1 {
                Self::emit_rerr(s, unrepaired, ctx);
            }
            return;
        }
        match event.route_ctl() {
            Some(RouteCtl::ForwardFailure { dst, .. }) => {
                let seq = s.base.routes.get(dst).map_or(0, |r| r.seq);
                let via = s.base.routes.get(dst).map(|r| r.next_hop);
                if let Some(r) = s.base.routes.get_mut(dst) {
                    r.broken = true;
                }
                if let Some(alt) = s.take_alternative(*dst) {
                    s.base
                        .offer_route(*dst, alt.next_hop, alt.seq.max(seq), alt.hop_count, now);
                    ctx.os().route_table_mut().add_host_route(
                        *dst,
                        alt.next_hop,
                        u32::from(alt.hop_count),
                    );
                    ctx.os().bump("multipath_failover");
                } else {
                    ctx.os().route_table_mut().remove_host_route(*dst);
                    Self::emit_rerr(s, vec![(*dst, seq)], ctx);
                }
                let _ = via;
            }
            Some(RouteCtl::TxFailed { neighbour }) => {
                let unrepaired = Self::failover_via(s, *neighbour, now, ctx);
                Self::emit_rerr(s, unrepaired, ctx);
            }
            _ => {
                if let Payload::Neighbourhood(nh) = &event.payload {
                    for lost in nh.lost.clone() {
                        let unrepaired = Self::failover_via(s, lost, now, ctx);
                        Self::emit_rerr(s, unrepaired, ctx);
                    }
                }
            }
        }
    }
}

/// Reconfiguration operations enacting multipath DYMO on a running
/// deployment: S-component replacement (with state transfer) plus RE/RERR
/// handler swaps. Exactly the three replacements of §5.2.
#[must_use]
pub fn enable_ops() -> Vec<ReconfigOp> {
    vec![ReconfigOp::Mutate {
        protocol: DYMO_CF.to_string(),
        op: Box::new(|cf| {
            cf.map_state(|slot| {
                let base = slot
                    .into_inner::<DymoState>()
                    .unwrap_or_else(|_| panic!("standard DYMO state expected"));
                manetkit::protocol::StateSlot::new(MultipathState::from_standard(base))
            });
            cf.replace_handler("re-handler", Box::new(MultipathReHandler))
                .expect("re-handler present");
            cf.replace_handler("rerr-handler", Box::new(MultipathRerrHandler))
                .expect("rerr-handler present");
            // The generic helpers must now read through MultipathState.
            cf.replace_handler(
                "route-discovery-handler",
                Box::new(RouteDiscoveryHandler::<MultipathState>::default()),
            )
            .expect("route-discovery-handler present");
            cf.replace_handler(
                "route-lifetime-handler",
                Box::new(RouteLifetimeHandler::<MultipathState>::default()),
            )
            .expect("route-lifetime-handler present");
            cf.replace_handler(
                "sweep-handler",
                Box::new(SweepHandler::<MultipathState>::default()),
            )
            .expect("sweep-handler present");
        }),
    }]
}

/// Reverts to standard single-path DYMO (alternatives are dropped, the
/// primary route table is carried back).
#[must_use]
pub fn disable_ops() -> Vec<ReconfigOp> {
    vec![ReconfigOp::Mutate {
        protocol: DYMO_CF.to_string(),
        op: Box::new(|cf| {
            cf.map_state(|slot| {
                let multi = slot
                    .into_inner::<MultipathState>()
                    .unwrap_or_else(|_| panic!("multipath DYMO state expected"));
                manetkit::protocol::StateSlot::new(multi.base)
            });
            cf.replace_handler("re-handler", Box::new(ReHandler::<DymoState>::default()))
                .expect("re-handler present");
            cf.replace_handler(
                "rerr-handler",
                Box::new(RerrHandler::<DymoState>::default()),
            )
            .expect("rerr-handler present");
            cf.replace_handler(
                "route-discovery-handler",
                Box::new(RouteDiscoveryHandler::<DymoState>::default()),
            )
            .expect("route-discovery-handler present");
            cf.replace_handler(
                "route-lifetime-handler",
                Box::new(RouteLifetimeHandler::<DymoState>::default()),
            )
            .expect("route-lifetime-handler present");
            cf.replace_handler(
                "sweep-handler",
                Box::new(SweepHandler::<DymoState>::default()),
            )
            .expect("sweep-handler present");
        }),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    fn addr(n: u8) -> Address {
        Address::v4([10, 0, 0, n])
    }

    #[test]
    fn alternatives_must_be_link_disjoint() {
        let mut s = MultipathState::default();
        s.base.offer_route(addr(9), addr(2), 1, 3, SimTime::ZERO);
        // Same next hop as primary: rejected.
        assert!(!s.offer_alternative(
            addr(9),
            AltPath {
                next_hop: addr(2),
                hop_count: 4,
                seq: 1
            }
        ));
        // Different next hop: accepted once.
        let alt = AltPath {
            next_hop: addr(3),
            hop_count: 4,
            seq: 1,
        };
        assert!(s.offer_alternative(addr(9), alt));
        assert!(!s.offer_alternative(addr(9), alt), "no duplicates");
    }

    #[test]
    fn take_alternative_prefers_shorter() {
        let mut s = MultipathState::default();
        s.base.offer_route(addr(9), addr(2), 1, 3, SimTime::ZERO);
        s.offer_alternative(
            addr(9),
            AltPath {
                next_hop: addr(4),
                hop_count: 6,
                seq: 1,
            },
        );
        s.offer_alternative(
            addr(9),
            AltPath {
                next_hop: addr(3),
                hop_count: 4,
                seq: 1,
            },
        );
        assert_eq!(s.take_alternative(addr(9)).unwrap().next_hop, addr(3));
        assert_eq!(s.take_alternative(addr(9)).unwrap().next_hop, addr(4));
        assert!(s.take_alternative(addr(9)).is_none());
    }

    #[test]
    fn purge_drops_paths_via_broken_neighbour() {
        let mut s = MultipathState::default();
        s.offer_alternative(
            addr(9),
            AltPath {
                next_hop: addr(3),
                hop_count: 4,
                seq: 1,
            },
        );
        s.purge_via(addr(3));
        assert!(s.take_alternative(addr(9)).is_none());
    }

    #[test]
    fn state_transfer_round_trip() {
        let mut base = DymoState::default();
        base.offer_route(addr(9), addr(2), 7, 3, SimTime::ZERO);
        let multi = MultipathState::from_standard(base);
        assert!(multi.base.routes.contains_key(&addr(9)));
        assert_eq!(multi.dymo().routes[&addr(9)].seq, 7);
    }
}
