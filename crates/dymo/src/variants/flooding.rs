//! Optimised flooding for DYMO (§5.2): RREQ dissemination over multipoint
//! relays instead of blind flooding.
//!
//! The paper swaps the Neighbour Detection CF for the MPR ManetProtocol
//! instance (shareable with a co-deployed OLSR) and lets relay selection
//! curb RREQ re-broadcasts. The MPR CF lives in the `manetkit-olsr` crate;
//! to keep this crate independent, [`enable_ops`] takes the replacement CF
//! as a parameter — callers pass `manetkit_olsr::mpr_cf(...)`, or nothing
//! when an MPR instance is already deployed (the sharing case).
//!
//! Mechanically, the DYMO RE handler is replaced by one whose relay gate
//! only re-broadcasts a fresh RREQ when the sending neighbour selected this
//! node as a relay. Selector knowledge arrives through the MPR CF's
//! `MPR_CHANGE` events, cached by an extra `selector-tracker` handler in a
//! replacement S component.

use std::collections::BTreeSet;

use manetkit::event::{types, Event, EventType, Payload};
use manetkit::node::ReconfigOp;
use manetkit::protocol::{EventHandler, ManetProtocolCf, ProtoCtx, StateSlot};
use packetbb::Address;

use crate::handlers::{
    DymoStateAccess, ReHandler, RerrHandler, RouteDiscoveryHandler, RouteLifetimeHandler,
    SweepHandler,
};
use crate::state::DymoState;
use crate::DYMO_CF;

/// S component of the optimised-flooding variant: the standard state plus
/// the cached relay-selector set.
#[derive(Debug, Default)]
pub struct MprGatedState {
    /// The embedded standard DYMO state.
    pub base: DymoState,
    /// Neighbours that currently select this node as their relay.
    pub selectors: BTreeSet<Address>,
}

impl DymoStateAccess for MprGatedState {
    fn dymo_mut(&mut self) -> &mut DymoState {
        &mut self.base
    }
    fn dymo(&self) -> &DymoState {
        &self.base
    }
}

/// Caches the MPR CF's selector announcements.
pub struct SelectorTracker;

impl EventHandler for SelectorTracker {
    fn name(&self) -> &str {
        "selector-tracker"
    }
    fn subscriptions(&self) -> Vec<EventType> {
        vec![types::mpr_change()]
    }
    fn handle(&mut self, event: &Event, state: &mut StateSlot, _ctx: &mut ProtoCtx<'_>) {
        if let Payload::Mpr(mpr) = &event.payload {
            let s = state.get_mut::<MprGatedState>();
            s.selectors = mpr.selectors.iter().copied().collect();
        }
    }
}

/// The MPR-gated RE handler: a standard [`ReHandler`] whose relay gate
/// consults the selector cache.
#[must_use]
pub fn gated_re_handler() -> ReHandler<MprGatedState> {
    ReHandler::with_relay_gate(|state: &MprGatedState, from| state.selectors.contains(&from))
}

/// Reconfiguration operations enacting optimised flooding.
///
/// `mpr_replacement` is the MPR CF to install in place of the Neighbour
/// Detection CF (pass `None` when an MPR instance is already deployed —
/// e.g. shared with OLSR — in which case only the DYMO-side swap happens).
#[must_use]
pub fn enable_ops(mpr_replacement: Option<ManetProtocolCf>) -> Vec<ReconfigOp> {
    let mut ops = Vec::new();
    if let Some(mpr) = mpr_replacement {
        ops.push(ReconfigOp::RemoveProtocol {
            name: manetkit::neighbour::NEIGHBOUR_CF.to_string(),
        });
        ops.push(ReconfigOp::AddProtocol(mpr));
    }
    ops.push(ReconfigOp::Mutate {
        protocol: DYMO_CF.to_string(),
        op: Box::new(|cf| {
            cf.map_state(|slot| {
                let base = slot
                    .into_inner::<DymoState>()
                    .unwrap_or_else(|_| panic!("standard DYMO state expected"));
                StateSlot::new(MprGatedState {
                    base,
                    selectors: BTreeSet::new(),
                })
            });
            cf.replace_handler("re-handler", Box::new(gated_re_handler()))
                .expect("re-handler present");
            let _ = cf.remove_handler("selector-tracker");
            cf.add_handler(Box::new(SelectorTracker))
                .expect("no duplicate tracker");
            cf.replace_handler(
                "route-discovery-handler",
                Box::new(RouteDiscoveryHandler::<MprGatedState>::default()),
            )
            .expect("route-discovery-handler present");
            cf.replace_handler(
                "rerr-handler",
                Box::new(RerrHandler::<MprGatedState>::default()),
            )
            .expect("rerr-handler present");
            cf.replace_handler(
                "route-lifetime-handler",
                Box::new(RouteLifetimeHandler::<MprGatedState>::default()),
            )
            .expect("route-lifetime-handler present");
            cf.replace_handler(
                "sweep-handler",
                Box::new(SweepHandler::<MprGatedState>::default()),
            )
            .expect("sweep-handler present");
            // Subscribe the CF to MPR_CHANGE.
            let tuple = cf.tuple().clone().requires(types::mpr_change());
            cf.set_tuple(tuple);
        }),
    });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use manetkit::event::MprChange;
    use netsim::{NodeId, NodeOs};
    use std::sync::Arc;

    fn addr(n: u8) -> Address {
        Address::v4([10, 0, 0, n])
    }

    #[test]
    fn selector_tracker_updates_cache() {
        let mut state = StateSlot::new(MprGatedState::default());
        let mut os = NodeOs::standalone(NodeId(0), addr(1));
        let mut ctx = ProtoCtx::new(&mut os, "dymo");
        let mut tracker = SelectorTracker;
        let ev = Event {
            ty: types::mpr_change(),
            payload: Payload::Mpr(Arc::new(MprChange {
                mprs: vec![addr(2)],
                selectors: vec![addr(3), addr(4)],
            })),
            meta: Default::default(),
        };
        tracker.handle(&ev, &mut state, &mut ctx);
        let s = state.get::<MprGatedState>();
        assert!(s.selectors.contains(&addr(3)));
        assert!(!s.selectors.contains(&addr(2)));
    }

    #[test]
    fn gate_blocks_non_selectors() {
        let mut s = MprGatedState::default();
        s.selectors.insert(addr(3));
        let gate = |state: &MprGatedState, from: Address| state.selectors.contains(&from);
        assert!(gate(&s, addr(3)));
        assert!(!gate(&s, addr(5)));
    }
}
